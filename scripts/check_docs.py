#!/usr/bin/env python
"""Execute every fenced ``python`` code block in the docs.

Stdlib-only CI gate: extracts fenced ```python blocks from ``README.md`` and
``docs/*.md`` and runs each one as its own subprocess with ``PYTHONPATH=src``,
so a renamed API or a stale example breaks the build instead of the reader.

Blocks whose info string carries ``no-run`` (e.g. ```python no-run) are
syntax-checked with :func:`compile` but not executed — for illustrative
fragments that need external state.

Usage: python scripts/check_docs.py [files...]   (defaults to README + docs/)
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_SOURCES = [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
PER_BLOCK_TIMEOUT = 120.0


def extract_blocks(path: Path):
    """Yield ``(start_line, info_string, source)`` for each fenced python block."""
    lines = path.read_text(encoding="utf-8").splitlines()
    in_block = False
    info = ""
    start = 0
    body: list[str] = []
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block:
            if stripped.startswith("```"):
                info = stripped[3:].strip().lower()
                in_block = True
                start = number + 1
                body = []
        elif stripped == "```":
            in_block = False
            if info.split()[:1] == ["python"]:
                yield start, info, "\n".join(body) + "\n"
        else:
            body.append(line)
    if in_block:
        raise SystemExit(f"{path}: unterminated code fence opened before EOF")


def run_block(path: Path, start: int, info: str, source: str) -> str | None:
    """Run one block; return an error description or None on success."""
    label = f"{path.relative_to(REPO_ROOT)}:{start}"
    try:
        compile(source, label, "exec")
    except SyntaxError as error:
        return f"{label}: syntax error: {error}"
    if "no-run" in info.split():
        return None
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else src
    try:
        result = subprocess.run(
            [sys.executable, "-c", source],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=PER_BLOCK_TIMEOUT,
        )
    except subprocess.TimeoutExpired:
        return f"{label}: timed out after {PER_BLOCK_TIMEOUT:.0f}s"
    if result.returncode != 0:
        tail = (result.stderr or result.stdout).strip().splitlines()[-12:]
        return f"{label}: exit {result.returncode}\n    " + "\n    ".join(tail)
    return None


def main(argv: list[str]) -> int:
    sources = [Path(arg).resolve() for arg in argv] or DEFAULT_SOURCES
    checked = 0
    failures: list[str] = []
    for path in sources:
        if not path.exists():
            failures.append(f"{path}: no such file")
            continue
        for start, info, source in extract_blocks(path):
            checked += 1
            error = run_block(path, start, info, source)
            status = "FAIL" if error else "ok"
            print(f"[{status}] {path.relative_to(REPO_ROOT)}:{start}")
            if error:
                failures.append(error)
    print(f"{checked} python block(s) checked, {len(failures)} failure(s)")
    for failure in failures:
        print(f"  {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
