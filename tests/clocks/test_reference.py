"""Tests for the reference (omniscient observer) clock."""

from repro.clocks.reference import ReferenceClock
from repro.simulation.event_loop import EventLoop


def test_reference_clock_tracks_loop_time():
    loop = EventLoop(start_time=2.0)
    clock = ReferenceClock(loop)
    assert clock.now() == 2.0
    loop.schedule_at(9.0, lambda: None)
    loop.run()
    assert clock.now() == 9.0
