"""Tests for the TrueTime interval clock."""

import numpy as np
import pytest

from repro.clocks.local import LocalClock
from repro.clocks.truetime import TrueTimeClock, TrueTimeInterval
from repro.distributions.parametric import GaussianDistribution
from repro.simulation.event_loop import EventLoop


def test_interval_orders_and_width():
    interval = TrueTimeInterval(1.0, 3.0)
    assert interval.midpoint == 2.0
    assert interval.width == 2.0


def test_invalid_interval_rejected():
    with pytest.raises(ValueError):
        TrueTimeInterval(3.0, 1.0)


def test_overlap_and_definitely_before():
    a = TrueTimeInterval(0.0, 2.0)
    b = TrueTimeInterval(1.5, 3.0)
    c = TrueTimeInterval(2.5, 4.0)
    assert a.overlaps(b)
    assert b.overlaps(a)
    assert not a.overlaps(c)
    assert a.definitely_before(c)
    assert not a.definitely_before(b)


def test_touching_intervals_overlap():
    a = TrueTimeInterval(0.0, 1.0)
    b = TrueTimeInterval(1.0, 2.0)
    assert a.overlaps(b)
    assert not a.definitely_before(b)


def test_clock_interval_uses_sigma_multiplier():
    loop = EventLoop(start_time=10.0)
    clock = LocalClock(loop, GaussianDistribution(0.0, 2.0), np.random.default_rng(0))
    truetime = TrueTimeClock(clock, sigma_multiplier=3.0)
    interval = truetime.now_interval()
    assert interval.width == pytest.approx(12.0)


def test_interval_for_existing_reading_is_centered_on_reported():
    loop = EventLoop(start_time=10.0)
    clock = LocalClock(loop, GaussianDistribution(0.0, 1.0), np.random.default_rng(0))
    truetime = TrueTimeClock(clock, sigma_multiplier=2.0)
    reading = clock.read()
    interval = truetime.interval_for(reading)
    assert interval.midpoint == pytest.approx(reading.reported)
    assert interval.width == pytest.approx(4.0)


def test_non_positive_multiplier_rejected():
    loop = EventLoop()
    clock = LocalClock(loop, GaussianDistribution(0.0, 1.0), np.random.default_rng(0))
    with pytest.raises(ValueError):
        TrueTimeClock(clock, sigma_multiplier=0.0)
