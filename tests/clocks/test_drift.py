"""Tests for clock drift models."""

import pytest

from repro.clocks.drift import ConstantDrift, NoDrift, RandomWalkDrift


def test_no_drift_is_zero_everywhere():
    drift = NoDrift()
    assert drift.offset_at(0.0) == 0.0
    assert drift.offset_at(1e6) == 0.0


def test_constant_drift_grows_linearly():
    drift = ConstantDrift(rate_ppm=10.0)
    assert drift.offset_at(0.0) == pytest.approx(0.0)
    assert drift.offset_at(1.0) == pytest.approx(10e-6)
    assert drift.offset_at(100.0) == pytest.approx(1e-3)


def test_constant_drift_respects_start_time():
    drift = ConstantDrift(rate_ppm=10.0, start_time=50.0)
    assert drift.offset_at(50.0) == pytest.approx(0.0)
    assert drift.offset_at(60.0) == pytest.approx(100e-6)


def test_constant_drift_rate_property_round_trips():
    assert ConstantDrift(rate_ppm=25.0).rate_ppm == pytest.approx(25.0)


def test_random_walk_is_deterministic_for_seed():
    a = RandomWalkDrift(step_std=1e-6, step_interval=1.0, seed=3)
    b = RandomWalkDrift(step_std=1e-6, step_interval=1.0, seed=3)
    times = [0.5, 1.7, 10.3, 100.1]
    assert [a.offset_at(t) for t in times] == [b.offset_at(t) for t in times]


def test_random_walk_query_order_does_not_matter():
    a = RandomWalkDrift(step_std=1e-6, seed=5)
    b = RandomWalkDrift(step_std=1e-6, seed=5)
    forward = [a.offset_at(t) for t in (1.0, 50.0)]
    backward = [b.offset_at(t) for t in (50.0, 1.0)][::-1]
    assert forward == pytest.approx(backward)


def test_random_walk_is_zero_at_or_before_time_zero():
    drift = RandomWalkDrift(step_std=1e-6, seed=1)
    assert drift.offset_at(0.0) == 0.0
    assert drift.offset_at(-5.0) == 0.0


def test_random_walk_reset_clears_state():
    drift = RandomWalkDrift(step_std=1e-6, seed=1)
    value = drift.offset_at(10.0)
    drift.reset()
    assert drift.offset_at(10.0) == pytest.approx(value)


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        RandomWalkDrift(step_std=-1.0)
    with pytest.raises(ValueError):
        RandomWalkDrift(step_std=1.0, step_interval=0.0)
