"""Tests for the local clock model."""

import numpy as np
import pytest

from repro.clocks.drift import ConstantDrift
from repro.clocks.local import LocalClock
from repro.distributions.parametric import GaussianDistribution
from repro.simulation.event_loop import EventLoop


def make_clock(loop, mean=0.0, std=1.0, **kwargs):
    return LocalClock(loop, GaussianDistribution(mean, std), np.random.default_rng(0), **kwargs)


def test_reading_reports_true_time_plus_error():
    loop = EventLoop(start_time=100.0)
    clock = make_clock(loop, mean=5.0, std=0.0)
    reading = clock.read()
    assert reading.true_time == 100.0
    assert reading.reported == pytest.approx(105.0)
    assert reading.error == pytest.approx(5.0)


def test_fresh_offset_sampled_every_read_by_default():
    loop = EventLoop()
    clock = make_clock(loop, std=1.0)
    offsets = {clock.read().offset for _ in range(10)}
    assert len(offsets) > 1


def test_fixed_offset_mode_holds_one_draw():
    loop = EventLoop()
    clock = make_clock(loop, std=1.0, resample_every_read=False)
    offsets = {clock.read().offset for _ in range(10)}
    assert len(offsets) == 1


def test_drift_accumulates_with_true_time():
    loop = EventLoop()
    clock = make_clock(loop, std=0.0, drift=ConstantDrift(rate_ppm=1000.0))
    loop.schedule_at(10.0, lambda: None)
    loop.run()
    reading = clock.read()
    assert reading.drift == pytest.approx(10.0 * 1000e-6)
    assert reading.reported == pytest.approx(10.0 + 0.01)


def test_read_jitter_adds_noise():
    loop = EventLoop()
    clock = make_clock(loop, std=0.0, read_jitter_std=0.5)
    jitters = [clock.read().jitter for _ in range(20)]
    assert any(abs(j) > 0 for j in jitters)


def test_negative_jitter_std_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        make_clock(loop, read_jitter_std=-1.0)


def test_read_count_increments():
    loop = EventLoop()
    clock = make_clock(loop)
    for _ in range(3):
        clock.read()
    assert clock.reads == 3


def test_now_returns_reported_timestamp():
    loop = EventLoop(start_time=50.0)
    clock = make_clock(loop, mean=0.0, std=0.0)
    assert clock.now() == pytest.approx(50.0)


def test_sampled_errors_follow_distribution_statistics():
    loop = EventLoop()
    clock = make_clock(loop, mean=2.0, std=3.0)
    errors = np.array([clock.read().offset for _ in range(4000)])
    assert errors.mean() == pytest.approx(2.0, abs=0.2)
    assert errors.std() == pytest.approx(3.0, abs=0.2)
