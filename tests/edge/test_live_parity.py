"""Loopback parity: the frozen workload through real sockets must merge
bitwise-identically to ``SimBackend`` — the edge cannot reorder traffic."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.config import TommyConfig
from repro.edge.client import EdgeClient, replay_workload
from repro.edge.server import EdgeServer
from repro.obs import Telemetry
from repro.runtime.base import ClusterWorkload
from repro.runtime.live import LiveClusterSpec, LiveDispatcher
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario


def _workload(num_clients: int = 12, num_shards: int = 3) -> ClusterWorkload:
    scenario = build_cluster_scenario(
        num_clients=num_clients, messages_per_client=4, seed=13
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=num_shards, config=TommyConfig(seed=13)
    )


@pytest.mark.parametrize("runtime", ["sim", "procs"])
def test_loopback_socket_parity(runtime):
    workload = _workload()
    reference = SimBackend().run(workload).fingerprint()

    async def run():
        spec = LiveClusterSpec.from_workload(workload)
        dispatcher = LiveDispatcher(
            spec, runtime=runtime, num_workers=2 if runtime == "procs" else None
        )
        async with EdgeServer(dispatcher, max_inflight=8) as server:
            admitted = await replay_workload(
                "127.0.0.1", server.port, workload, connections=3
            )
            outcome = await server.finish()
        return admitted, outcome

    admitted, outcome = asyncio.run(run())
    assert admitted == len(workload.messages)
    assert outcome.backend == f"live-{runtime}"
    assert outcome.message_count == len(workload.messages)
    assert outcome.fingerprint() == reference
    assert outcome.details["late_arrivals"] == 0


def test_firehose_single_connection_parity():
    """Pipelined firehose through a tiny intake bound: backpressure engages
    and the merged order is still bitwise equal to the one-shot replay."""
    workload = _workload(num_clients=8, num_shards=2)
    reference = SimBackend().run(workload).fingerprint()

    async def run():
        telemetry = Telemetry()
        spec = LiveClusterSpec.from_workload(workload)
        dispatcher = LiveDispatcher(spec, runtime="sim", telemetry=telemetry)
        async with EdgeServer(dispatcher, max_inflight=4, telemetry=telemetry) as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="hose")
            acks = await client.stream(workload.messages_by_true_time())
            await client.close()
            outcome = await server.finish()
        return acks, outcome, server, telemetry

    acks, outcome, server, telemetry = asyncio.run(run())
    assert all(ack["admitted"] for ack in acks)
    assert outcome.fingerprint() == reference
    assert server.intake_depth_peak <= 4


def test_retransmitted_frames_do_not_change_the_merge():
    """Exactly-once through the socket: resending every frame (duplicate
    delivery) is acked as rejected and leaves the merged order untouched."""
    workload = _workload(num_clients=6, num_shards=2)
    reference = SimBackend().run(workload).fingerprint()

    async def run():
        spec = LiveClusterSpec.from_workload(workload)
        dispatcher = LiveDispatcher(spec, runtime="sim")
        async with EdgeServer(dispatcher, max_inflight=8) as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="dup")
            duplicates = 0
            for message in workload.messages_by_true_time():
                first = await client.send_message(message)
                second = await client.send_message(message)  # network duplicate
                assert first["admitted"] is True
                duplicates += 0 if second["admitted"] else 1
            await client.close()
            outcome = await server.finish()
        return duplicates, outcome

    duplicates, outcome = asyncio.run(run())
    assert duplicates == len(workload.messages)
    assert outcome.message_count == len(workload.messages)
    assert outcome.fingerprint() == reference
