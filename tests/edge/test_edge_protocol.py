"""Frame-protocol edge cases: framing, truncation, versioning, payloads."""

from __future__ import annotations

import struct

import pytest

from repro.edge import protocol
from repro.edge.protocol import Frame, FrameDecoder, ProtocolError
from repro.network.message import Heartbeat, TimestampedMessage


def test_roundtrip_single_frame():
    data = protocol.encode_frame(protocol.HELLO, {"version": 1, "source": "c0"})
    frames = FrameDecoder().feed(data)
    assert frames == [Frame(type=protocol.HELLO, payload={"version": 1, "source": "c0"})]


def test_roundtrip_coalesced_frames():
    data = protocol.encode_frame(protocol.HELLO, {"version": 1}) + protocol.encode_frame(
        protocol.CLOSE
    )
    frames = FrameDecoder().feed(data)
    assert [frame.type for frame in frames] == [protocol.HELLO, protocol.CLOSE]
    assert frames[1].payload == {}


def test_truncated_frame_waits_for_more_bytes():
    data = protocol.encode_frame(protocol.MSG, {"client": "a"})
    decoder = FrameDecoder()
    # drip-feed every prefix: no frame until the last byte lands
    for cut in range(1, len(data)):
        assert decoder.feed(data[cut - 1 : cut]) == []
        assert decoder.pending_bytes == cut
    frames = decoder.feed(data[-1:])
    assert len(frames) == 1
    assert frames[0].payload == {"client": "a"}
    assert decoder.pending_bytes == 0


def test_oversized_length_prefix_is_typed_error():
    decoder = FrameDecoder(max_frame_bytes=64)
    with pytest.raises(ProtocolError) as excinfo:
        decoder.feed(struct.pack(">I", 1 << 30) + b"x")
    assert excinfo.value.code == protocol.ERR_OVERSIZED_FRAME
    # poisoned: the stream cannot be resynchronised
    with pytest.raises(ProtocolError):
        decoder.feed(b"more")


def test_zero_length_frame_is_malformed():
    with pytest.raises(ProtocolError) as excinfo:
        FrameDecoder().feed(struct.pack(">I", 0))
    assert excinfo.value.code == protocol.ERR_MALFORMED_FRAME


def test_bad_json_payload_is_malformed():
    body = bytes([protocol.MSG]) + b"{not json"
    with pytest.raises(ProtocolError) as excinfo:
        FrameDecoder().feed(struct.pack(">I", len(body)) + body)
    assert excinfo.value.code == protocol.ERR_MALFORMED_FRAME


def test_non_object_payload_is_malformed():
    body = bytes([protocol.MSG]) + b"[1,2,3]"
    with pytest.raises(ProtocolError) as excinfo:
        FrameDecoder().feed(struct.pack(">I", len(body)) + body)
    assert excinfo.value.code == protocol.ERR_MALFORMED_FRAME


def test_message_payload_roundtrip_preserves_identity():
    message = TimestampedMessage(
        client_id="client-3",
        timestamp=10.5,
        true_time=10.25,
        payload={"order": 7},
        message_id=4242,
        sequence_number=9,
    )
    rebuilt, vtime = protocol.parse_message(protocol.message_payload(message))
    # the wire id is the exactly-once token AND the fingerprint identity
    assert rebuilt.key == message.key
    assert rebuilt.message_id == 4242
    assert rebuilt.timestamp == message.timestamp
    assert rebuilt.true_time == message.true_time
    assert rebuilt.sequence_number == 9
    assert rebuilt.payload == {"order": 7}
    assert vtime == 10.25


def test_heartbeat_payload_roundtrip():
    heartbeat = Heartbeat(client_id="c", timestamp=3.0, true_time=2.5, sequence_number=4)
    rebuilt, vtime = protocol.parse_heartbeat(protocol.heartbeat_payload(heartbeat))
    assert rebuilt == heartbeat
    assert vtime == 2.5


def test_missing_message_field_is_bad_payload():
    payload = protocol.message_payload(
        TimestampedMessage(client_id="c", timestamp=1.0, true_time=1.0)
    )
    del payload["vtime"]
    with pytest.raises(ProtocolError) as excinfo:
        protocol.parse_message(payload)
    assert excinfo.value.code == protocol.ERR_BAD_PAYLOAD


def test_unparseable_message_field_is_bad_payload():
    payload = protocol.message_payload(
        TimestampedMessage(client_id="c", timestamp=1.0, true_time=1.0)
    )
    payload["ts"] = "not-a-number"
    with pytest.raises(ProtocolError) as excinfo:
        protocol.parse_message(payload)
    assert excinfo.value.code == protocol.ERR_BAD_PAYLOAD


def test_encode_rejects_oversized_body():
    with pytest.raises(ProtocolError) as excinfo:
        protocol.encode_frame(protocol.MSG, {"data": "x" * protocol.MAX_FRAME_BYTES})
    assert excinfo.value.code == protocol.ERR_OVERSIZED_FRAME
