"""Socket-level edge behaviour: handshake rejections, dedup acks,
disconnect policy, and bounded-queue backpressure."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.edge import protocol
from repro.edge.client import EdgeClient, EdgeError
from repro.edge.server import EdgeServer
from repro.network.message import TimestampedMessage
from repro.obs import Telemetry
from repro.runtime.live import LiveClusterSpec, LiveDispatcher

CLIENTS = {f"client-{index}": GaussianDistribution(0.0, 0.01) for index in range(4)}


def make_server(telemetry=None, max_inflight=64, **dispatcher_kwargs) -> EdgeServer:
    spec = LiveClusterSpec(
        client_distributions=dict(CLIENTS),
        num_shards=2,
        config=TommyConfig(seed=5),
        heartbeat_slack=1e-3,
    )
    dispatcher = LiveDispatcher(spec, runtime="sim", telemetry=telemetry, **dispatcher_kwargs)
    return EdgeServer(dispatcher, max_inflight=max_inflight, telemetry=telemetry)


def message(client: str, vtime: float, message_id: int, seq: int = 0) -> TimestampedMessage:
    return TimestampedMessage(
        client_id=client,
        timestamp=vtime,
        true_time=vtime,
        message_id=message_id,
        sequence_number=seq,
    )


def test_unknown_protocol_version_rejected_with_typed_error():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect(
                "127.0.0.1", server.port, handshake=False
            )
            with pytest.raises(EdgeError) as excinfo:
                await client.hello(version=99)
            assert excinfo.value.code == protocol.ERR_UNSUPPORTED_VERSION
            await client.abort()
            # the server survives the rejection and serves the next client
            survivor = await EdgeClient.connect("127.0.0.1", server.port, source="ok")
            await survivor.close()

    asyncio.run(run())


def test_duplicate_hello_rejected():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="dup")
            with pytest.raises(EdgeError) as excinfo:
                await client.hello(source="dup")
            assert excinfo.value.code == protocol.ERR_DUPLICATE_HELLO
            await client.abort()

    asyncio.run(run())


def test_message_before_hello_rejected():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, handshake=False)
            with pytest.raises(EdgeError) as excinfo:
                await client.send_message(message("client-0", 1.0, message_id=1))
            assert excinfo.value.code == protocol.ERR_HELLO_REQUIRED
            await client.abort()

    asyncio.run(run())


def test_unknown_frame_type_rejected():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="c")
            client.write_frame(0x42, {})
            await client.drain()
            with pytest.raises(EdgeError) as excinfo:
                await client.read_frame()
            assert excinfo.value.code == protocol.ERR_UNKNOWN_TYPE
            await client.abort()

    asyncio.run(run())


def test_oversized_length_prefix_rejected_not_hung():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="big")
            client.write_bytes(struct.pack(">I", 1 << 30) + b"junk")
            await client.drain()
            with pytest.raises(EdgeError) as excinfo:
                await client.read_frame()
            assert excinfo.value.code == protocol.ERR_OVERSIZED_FRAME
            await client.abort()

    asyncio.run(run())


def test_unknown_client_rejected():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="c")
            with pytest.raises(EdgeError) as excinfo:
                await client.send_message(message("intruder", 1.0, message_id=1))
            assert excinfo.value.code == protocol.ERR_UNKNOWN_CLIENT
            await client.abort()

    asyncio.run(run())


def test_duplicate_message_id_acked_as_rejected():
    async def run():
        telemetry = Telemetry()
        async with make_server(telemetry=telemetry) as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="c")
            first = await client.send_message(message("client-0", 1.0, message_id=77))
            second = await client.send_message(message("client-0", 1.0, message_id=77))
            assert first["admitted"] is True
            assert second["admitted"] is False
            await client.close()
            outcome = await server.finish()
        assert outcome.message_count == 1
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["edge.duplicates_rejected"] == 1

    asyncio.run(run())


def test_disconnect_mid_stream_still_sequences_admitted_messages():
    """Documented policy: admission is a promise — an acked message is
    sequenced even if its connection dies before CLOSE."""

    async def run():
        async with make_server() as server:
            dying = await EdgeClient.connect("127.0.0.1", server.port, source="dying")
            ack = await dying.send_message(message("client-0", 1.0, message_id=1, seq=1))
            assert ack["admitted"] is True
            await dying.abort()  # no CLOSE frame: mid-stream death

            steady = await EdgeClient.connect("127.0.0.1", server.port, source="steady")
            await steady.send_message(message("client-1", 2.0, message_id=2, seq=1))
            await steady.send_message(message("client-1", 3.0, message_id=3, seq=2))
            await steady.close()
            outcome = await server.finish()
        # all three admitted messages made it into the merged order
        merged = [m.key for batch in outcome.merge.result.batches for m in batch.messages]
        assert sorted(merged) == [("client-0", 1), ("client-1", 2), ("client-1", 3)]

    asyncio.run(run())


def test_disconnect_releases_watermark_hold():
    async def run():
        async with make_server() as server:
            silent = await EdgeClient.connect("127.0.0.1", server.port, source="silent")
            assert server.dispatcher.open_sources == 1
            await silent.abort()
            # the handler notices EOF and releases the source
            for _ in range(50):
                if server.dispatcher.open_sources == 0:
                    break
                await asyncio.sleep(0.02)
            assert server.dispatcher.open_sources == 0
            await server.finish()

    asyncio.run(run())


def test_firehose_backpressure_bounds_queue_depth():
    """A pipelined burst far larger than --max-inflight never pushes the
    intake queue past its bound (the gauge high-water mark proves it)."""

    async def run():
        telemetry = Telemetry()
        max_inflight = 4
        async with make_server(telemetry=telemetry, max_inflight=max_inflight) as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="hose")
            burst = [
                message("client-0", vtime=float(index), message_id=1000 + index, seq=index + 1)
                for index in range(200)
            ]
            acks = await client.stream(burst)
            assert all(ack["admitted"] for ack in acks)
            await client.close()
            outcome = await server.finish()

        assert outcome.message_count == 200
        assert server.intake_depth_peak <= max_inflight
        snapshot = telemetry.registry.snapshot()
        assert snapshot["gauges"]["edge.intake_depth_peak"] <= max_inflight
        # the burst actually hit the bound (otherwise this test proves nothing)
        assert snapshot["counters"]["edge.backpressure_stalls"] > 0

    asyncio.run(run())


def test_heartbeat_advances_watermark_and_acks():
    async def run():
        async with make_server() as server:
            client = await EdgeClient.connect("127.0.0.1", server.port, source="hb")
            from repro.network.message import Heartbeat

            ack = await client.send_heartbeat(
                Heartbeat(client_id="client-0", timestamp=5.0, true_time=5.0)
            )
            assert ack["vtime"] == 5.0
            await client.close()
            await server.finish()

    asyncio.run(run())
