"""Integration tests spanning multiple subsystems.

These tests exercise the full pipeline the paper's Figure 1 sketches: clients
with imperfect clocks learn their offset distributions from synchronization
probes, send timestamped messages over a jittery network, the sequencer
orders them probabilistically, and a downstream application consumes the
batches.
"""

import numpy as np
import pytest

from repro.apps.orderbook import LimitOrderBook, Order, OrderSide
from repro.apps.replicated_log import ReplicatedLog
from repro.clocks.local import LocalClock
from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.core.sequencer import TommySequencer
from repro.core.total_order import FairTotalOrder
from repro.distributions.parametric import GaussianDistribution
from repro.metrics.ras import rank_agreement_score
from repro.network.link import ConstantDelay, UniformJitterDelay
from repro.network.transport import Transport
from repro.sequencers.truetime import TrueTimeSequencer
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource
from repro.sync.protocol import SyncProtocol
from repro.workloads.arrivals import BurstArrivals, UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


def test_learned_distributions_feed_tommy_end_to_end():
    """Probe -> learn f_theta -> register at sequencer -> fair ordering."""
    loop = EventLoop()
    source = RandomSource(5)
    protocol = SyncProtocol(loop, probes_per_round=32)

    true_distributions = {
        "c0": GaussianDistribution(0.000, 0.0004),
        "c1": GaussianDistribution(0.002, 0.0008),
        "c2": GaussianDistribution(-0.001, 0.0006),
    }
    clocks = {}
    for client_id, distribution in true_distributions.items():
        clock = LocalClock(loop, distribution, source.stream(f"clock:{client_id}"))
        clocks[client_id] = clock
        protocol.add_client(
            client_id,
            clock,
            forward_delay=ConstantDelay(0.0002),
            backward_delay=ConstantDelay(0.0002),
            rng=source.stream(f"probe:{client_id}"),
        )
    protocol.run_rounds(20)
    learned = {cid: est.distribution for cid, est in protocol.estimates().items()}
    assert set(learned) == set(true_distributions)
    for client_id, estimate in learned.items():
        assert estimate.mean == pytest.approx(true_distributions[client_id].mean, abs=5e-4)

    # generate a workload whose gaps are comparable to the clock error
    scenario = build_scenario(
        ScenarioConfig(
            num_clients=3,
            arrivals=UniformGapArrivals(messages_per_client=6, gap=0.002),
            distribution_factory=lambda index, rng: true_distributions[f"c{index}"],
            seed=11,
        )
    )
    # rename scenario clients to match the learned distribution keys
    messages = [
        message.__class__(
            client_id=f"c{int(message.client_id.split('-')[1])}",
            timestamp=message.timestamp,
            true_time=message.true_time,
            payload=message.payload,
            sequence_number=message.sequence_number,
        )
        for message in scenario.messages
    ]
    tommy = TommySequencer(learned, TommyConfig(threshold=0.7))
    result = tommy.sequence(messages)
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.score > 0
    assert breakdown.incorrect_pairs < breakdown.correct_pairs


def test_online_pipeline_feeds_replicated_log_without_gaps():
    loop = EventLoop()
    source = RandomSource(8)
    transport = Transport(loop, rng_factory=source.stream)
    distributions = {f"c{k}": GaussianDistribution(0.0, 0.0003) for k in range(4)}
    clients = []
    for client_id, distribution in distributions.items():
        clock = LocalClock(loop, distribution, source.stream(f"clock:{client_id}"))
        clients.append(
            transport.add_client(
                client_id,
                clock,
                delay_model=UniformJitterDelay(0.001, 0.001),
                heartbeat_interval=0.002,
            )
        )
    sequencer = OnlineTommySequencer(
        loop, distributions, TommyConfig(p_safe=0.99, completeness_mode="heartbeat")
    )
    transport.sequencer.on_arrival(sequencer.receive)
    for index, client in enumerate(clients):
        loop.schedule_at(0.001 + 0.004 * index, client.send, {"op": index})
        client.start_heartbeats()
    loop.run(until=2.0)
    sequencer.flush()

    log = ReplicatedLog()
    for emitted in sequencer.emitted_batches:
        log.apply(emitted.batch, applied_at=emitted.emitted_at)
    assert log.applied_message_count == 4
    assert log.next_rank == len(sequencer.emitted_batches)


def test_exchange_fairness_improves_with_tommy_over_truetime():
    """Burst of competing buy orders: the fair sequencer should award the
    trade to the truly-first order more often than an indifferent baseline."""
    rng = np.random.default_rng(3)
    trials = 40
    tommy_correct = 0
    truetime_decided = 0
    for trial in range(trials):
        scenario = build_scenario(
            ScenarioConfig(
                num_clients=6,
                arrivals=BurstArrivals(event_time=0.0, reaction_median=300e-6, reaction_sigma=0.5),
                distribution_factory=lambda i, r: GaussianDistribution(0.0, 150e-6),
                seed=100 + trial,
            )
        )
        messages = list(scenario.messages)
        truly_first = min(messages, key=lambda m: m.true_time)

        tommy_result = TommySequencer(scenario.client_distributions, TommyConfig(threshold=0.6)).sequence(messages)
        total = FairTotalOrder(np.random.default_rng(trial))
        tommy_order = total.totalize(tommy_result)

        book = LimitOrderBook()
        book.submit(Order(client_id="market-maker", side=OrderSide.SELL, price=100.0, quantity=1))
        for message in tommy_order:
            book.submit(Order(client_id=message.client_id, side=OrderSide.BUY, price=100.0, quantity=1))
        winner = book.trades[0].buy_client
        if winner == truly_first.client_id:
            tommy_correct += 1

        truetime_result = TrueTimeSequencer(scenario.client_distributions).sequence(messages)
        if truetime_result.batch_count > 1:
            truetime_decided += 1

    # Tommy awards the trade to the truly-first client far more often than chance (1/6)
    assert tommy_correct / trials > 0.3
    # while TrueTime, with overlapping +-3 sigma intervals, rarely separates anyone
    assert truetime_decided / trials < 0.5
