"""Fault primitives, schedule composition, and the steppable drift model."""

import pytest

from repro.chaos.faults import (
    ClockStep,
    DelaySpike,
    FaultSchedule,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
    ShardCrash,
    SyncBlackout,
)
from repro.clocks.drift import ConstantDrift, SteppedDrift


def test_fault_window_is_half_open():
    fault = MessageLoss(start=1.0, duration=2.0, probability=0.5)
    assert not fault.active_at(0.999)
    assert fault.active_at(1.0)
    assert fault.active_at(2.999)
    assert not fault.active_at(3.0)


def test_client_scoping_empty_means_everyone():
    fault = DelaySpike(start=0.0, duration=1.0, extra_delay=0.01)
    assert fault.applies_to("anyone")
    scoped = DelaySpike(start=0.0, duration=1.0, clients=("a", "b"), extra_delay=0.01)
    assert scoped.applies_to("a")
    assert not scoped.applies_to("c")


@pytest.mark.parametrize(
    "bad",
    [
        lambda: MessageLoss(start=-1.0, duration=1.0),
        lambda: MessageLoss(start=0.0, duration=-1.0),
        lambda: MessageLoss(start=0.0, duration=1.0, probability=1.5),
        lambda: MessageDuplication(start=0.0, duration=1.0, copies=0),
        lambda: MessageReorder(start=0.0, duration=1.0, jitter=0.0),
        lambda: DelaySpike(start=0.0, duration=1.0, extra_delay=0.0),
        lambda: LinkPartition(start=0.0, duration=1.0, mode="sideways"),
        lambda: LinkPartition(start=0.0, duration=0.0),
        lambda: ClockStep(start=0.0, step=0.0),
        lambda: SyncBlackout(start=0.0, duration=0.0),
        lambda: ShardCrash(start=0.0, shard=-1),
        lambda: ShardCrash(start=0.0, shard=0, rejoin_after=0.0),
    ],
)
def test_primitive_validation(bad):
    with pytest.raises(ValueError):
        bad()


def test_schedule_orders_by_start_and_reports_horizon():
    schedule = FaultSchedule(
        [
            MessageLoss(start=5.0, duration=1.0, probability=0.1),
            ShardCrash(start=1.0, shard=0, rejoin_after=9.0),
            ClockStep(start=3.0, clients=("a",), step=0.5),
        ]
    )
    assert [fault.kind for fault in schedule] == ["crash", "clock_step", "loss"]
    assert schedule.horizon == 10.0  # crash at 1 + rejoin after 9
    assert len(schedule.channel_faults) == 1
    assert len(schedule.clock_faults) == 1
    assert len(schedule.shard_faults) == 1
    assert len(schedule.describe()) == 3


def test_schedule_rejects_non_faults():
    with pytest.raises(TypeError):
        FaultSchedule(["not a fault"])


def test_stepped_drift_composes_base_and_steps():
    drift = SteppedDrift(ConstantDrift(rate_ppm=10.0))
    drift.add_step(5.0, 0.25)
    drift.add_step(2.0, -0.1)
    base = 1e-5
    assert drift.offset_at(1.0) == pytest.approx(base * 1.0)
    assert drift.offset_at(3.0) == pytest.approx(base * 3.0 - 0.1)
    assert drift.offset_at(6.0) == pytest.approx(base * 6.0 - 0.1 + 0.25)
    # query order cannot change anything: offsets are pure functions of time
    assert drift.offset_at(1.0) == pytest.approx(base * 1.0)
    assert drift.steps == [(2.0, -0.1), (5.0, 0.25)]


def test_stepped_drift_reset_keeps_steps():
    drift = SteppedDrift()
    drift.add_step(1.0, 0.5)
    drift.reset()
    assert drift.offset_at(2.0) == 0.5
