"""ChaosController behaviour at the channel, clock and probe hooks."""

import numpy as np
import pytest

from repro.chaos.controller import ChaosController
from repro.chaos.faults import (
    ClockStep,
    DelaySpike,
    FaultSchedule,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    SyncBlackout,
)
from repro.clocks.drift import SteppedDrift
from repro.network.channel import UnorderedChannel
from repro.network.link import ConstantDelay
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop


def message(client="a", timestamp=0.0):
    return TimestampedMessage(client_id=client, timestamp=timestamp, true_time=timestamp)


def channel_with(loop, hook, delay=0.01):
    delivered = []
    channel = UnorderedChannel(
        loop,
        "chan:test",
        ConstantDelay(delay),
        np.random.default_rng(0),
        delivered.append,
    )
    channel.set_fault_hook(hook)
    return channel, delivered


def test_partition_hold_floors_delivery_at_heal_time():
    loop = EventLoop()
    schedule = FaultSchedule([LinkPartition(start=0.0, duration=1.0, mode="hold")])
    controller = ChaosController(loop, schedule)
    channel, delivered = channel_with(loop, controller.channel_hook("a"))
    channel.send(message())
    loop.run()
    assert delivered and loop.now >= 1.0
    assert controller.stats.messages_held == 1


def test_partition_drop_loses_traffic_and_heals():
    loop = EventLoop()
    schedule = FaultSchedule([LinkPartition(start=0.0, duration=1.0, mode="drop")])
    controller = ChaosController(loop, schedule)
    channel, delivered = channel_with(loop, controller.channel_hook("a"))
    channel.send(message())
    loop.run(until=2.0)
    assert delivered == []
    assert channel.fault_dropped == 1
    # after heal the link behaves normally again
    channel.send(message(timestamp=2.0))
    loop.run()
    assert len(delivered) == 1
    assert controller.stats.messages_dropped == 1


def test_partition_scoped_to_other_client_is_transparent():
    loop = EventLoop()
    schedule = FaultSchedule(
        [LinkPartition(start=0.0, duration=1.0, clients=("b",), mode="drop")]
    )
    controller = ChaosController(loop, schedule)
    channel, delivered = channel_with(loop, controller.channel_hook("a"))
    channel.send(message())
    loop.run()
    assert len(delivered) == 1


def test_loss_and_duplication_are_seed_deterministic():
    def run(seed):
        loop = EventLoop()
        schedule = FaultSchedule(
            [
                MessageLoss(start=0.0, duration=10.0, probability=0.4),
                MessageDuplication(start=0.0, duration=10.0, probability=0.4),
            ]
        )
        controller = ChaosController(loop, schedule, seed=seed)
        channel, delivered = channel_with(loop, controller.channel_hook("a"))
        for index in range(50):
            channel.send(message(timestamp=float(index)))
        loop.run()
        return len(delivered), controller.stats.messages_dropped, controller.stats.messages_duplicated

    assert run(7) == run(7)
    assert run(7) != run(8)
    delivered, dropped, duplicated = run(7)
    assert dropped > 0 and duplicated > 0
    assert delivered == 50 - dropped + duplicated


def test_delay_spike_adds_exactly_the_extra_delay():
    loop = EventLoop()
    schedule = FaultSchedule([DelaySpike(start=0.0, duration=1.0, extra_delay=0.5)])
    controller = ChaosController(loop, schedule)
    channel, delivered = channel_with(loop, controller.channel_hook("a"), delay=0.01)
    channel.send(message())
    loop.run()
    assert delivered
    assert loop.now == pytest.approx(0.51)


def test_no_active_fault_means_no_decision_and_identical_rng_use():
    loop = EventLoop()
    controller = ChaosController(loop, FaultSchedule([DelaySpike(start=5.0, duration=1.0, extra_delay=1.0)]))
    hooked, hooked_delivered = channel_with(loop, controller.channel_hook("a"))
    bare, bare_delivered = channel_with(loop, None)
    hooked.send(message())
    bare.send(message())
    loop.run()
    assert len(hooked_delivered) == len(bare_delivered) == 1


def test_clock_steps_install_at_arm_time():
    loop = EventLoop()
    drift = SteppedDrift()
    schedule = FaultSchedule([ClockStep(start=2.0, clients=("a",), step=0.125)])
    controller = ChaosController(loop, schedule)
    controller.register_clock("a", drift)
    controller.arm()
    assert drift.offset_at(1.0) == 0.0
    assert drift.offset_at(2.5) == 0.125
    assert controller.stats.clock_steps == 1
    with pytest.raises(ValueError):
        controller.arm()  # double-arm would double-install the steps


def test_clock_step_without_registered_clock_raises():
    loop = EventLoop()
    controller = ChaosController(
        loop, FaultSchedule([ClockStep(start=0.0, clients=("ghost",), step=0.1)])
    )
    with pytest.raises(KeyError):
        controller.arm()


def test_probe_blackout_window():
    loop = EventLoop()
    schedule = FaultSchedule([SyncBlackout(start=1.0, duration=1.0, clients=("a",))])
    controller = ChaosController(loop, schedule)
    assert controller.probe_allowed("a", 0.5)
    assert not controller.probe_allowed("a", 1.5)
    assert controller.probe_allowed("b", 1.5)
    assert controller.probe_allowed("a", 2.5)
    assert controller.stats.probes_suppressed == 1
