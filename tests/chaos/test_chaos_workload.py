"""The packaged chaos workload: determinism and per-fault invariants."""

import pytest

from repro.experiments.chaos_sweep import run_chaos_sweep
from repro.workloads.chaos import (
    FAULT_NAMES,
    ChaosSettings,
    run_chaos_scenario,
    standard_fault_schedule,
)

SMALL = ChaosSettings(num_clients=8, num_shards=2, messages_per_client=3, seed=11)


def test_same_seed_same_report():
    first = run_chaos_scenario(fault="crash", settings=SMALL).as_row()
    second = run_chaos_scenario(fault="crash", settings=SMALL).as_row()
    assert first == second


def test_different_seed_different_report():
    other = ChaosSettings(num_clients=8, num_shards=2, messages_per_client=3, seed=12)
    assert (
        run_chaos_scenario(fault="loss", intensity=4.0, settings=SMALL).as_row()
        != run_chaos_scenario(fault="loss", intensity=4.0, settings=other).as_row()
    )


def test_control_run_is_clean():
    report = run_chaos_scenario(fault="none", settings=SMALL)
    assert report.messages_lost == 0
    assert report.messages_duplicated == 0
    assert report.failovers == 0
    assert report.exactly_once
    assert report.streaming_parity


@pytest.mark.parametrize("fault", [name for name in FAULT_NAMES if name != "none"])
def test_every_fault_keeps_exactly_once_and_streaming_parity(fault):
    report = run_chaos_scenario(fault=fault, intensity=2.0, settings=SMALL)
    assert report.exactly_once
    assert report.streaming_parity
    assert report.messages_delivered == report.messages_sent - report.messages_lost


def test_loss_fault_actually_loses_messages():
    report = run_chaos_scenario(fault="loss", intensity=4.0, settings=SMALL)
    assert report.messages_lost > 0
    # lost messages are excluded from scoring, not silently forgiven
    assert report.messages_delivered < report.messages_sent


def test_duplication_is_absorbed_by_exactly_once_intake():
    report = run_chaos_scenario(fault="duplication", intensity=3.0, settings=SMALL)
    assert report.messages_duplicated > 0
    assert report.duplicates_suppressed == report.messages_duplicated
    assert report.exactly_once
    assert report.messages_lost == 0


def test_crash_fault_fails_over_and_rejoins():
    report = run_chaos_scenario(fault="crash", settings=SMALL)
    assert report.failovers >= 1
    assert report.rejoins >= 1
    assert report.exactly_once
    assert report.streaming_parity
    assert report.messages_lost == 0


def test_blackout_suppresses_probes_and_refreshes():
    noisy = run_chaos_scenario(fault="blackout", intensity=2.0, settings=SMALL)
    control = run_chaos_scenario(fault="none", settings=SMALL)
    assert noisy.probes_suppressed > 0
    assert noisy.distribution_refreshes < control.distribution_refreshes


def test_schedule_builder_rejects_unknown_and_crash_on_one_shard():
    with pytest.raises(ValueError):
        standard_fault_schedule("gremlins", 1.0, 1.0, ("a",), SMALL)
    single = ChaosSettings(num_clients=4, num_shards=1, seed=0)
    with pytest.raises(ValueError):
        standard_fault_schedule("crash", 1.0, 1.0, ("a",), single)


def test_sweep_rows_carry_ras_delta_and_skip_crash_on_one_shard():
    rows = run_chaos_sweep(
        faults=("none", "loss", "crash"),
        intensities=(2.0,),
        shard_counts=(1,),
        num_clients=6,
        messages_per_client=2,
        seed=5,
    )
    assert [row["fault"] for row in rows] == ["none", "loss"]  # crash skipped at 1 shard
    assert rows[0]["ras_delta"] == 0.0
    assert all("ras_delta" in row for row in rows)


def test_sweep_rejects_unknown_fault():
    with pytest.raises(ValueError):
        run_chaos_sweep(faults=("loss", "gremlins"))
