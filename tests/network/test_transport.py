"""Tests for the client-to-sequencer transport."""

import numpy as np
import pytest

from repro.clocks.local import LocalClock
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import ConstantDelay
from repro.network.message import Heartbeat, TimestampedMessage
from repro.network.transport import Transport
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource


def build_transport(num_clients=2, delay=0.001, heartbeat_interval=None, clock_std=0.0):
    loop = EventLoop()
    source = RandomSource(0)
    transport = Transport(loop, rng_factory=source.stream)
    clients = []
    for index in range(num_clients):
        client_id = f"c{index}"
        clock = LocalClock(
            loop, GaussianDistribution(0.0, max(clock_std, 1e-12)), source.stream(f"clock:{client_id}")
        )
        clients.append(
            transport.add_client(
                client_id,
                clock,
                delay_model=ConstantDelay(delay),
                heartbeat_interval=heartbeat_interval,
            )
        )
    return loop, transport, clients


def test_messages_arrive_at_sequencer_with_delay():
    loop, transport, clients = build_transport(delay=0.002)
    loop.schedule_at(0.01, clients[0].send, "payload")
    loop.run()
    messages = transport.sequencer.messages()
    assert len(messages) == 1
    assert messages[0].client_id == "c0"
    assert messages[0].payload == "payload"
    assert loop.now == pytest.approx(0.012)


def test_sent_message_records_ground_truth():
    loop, transport, clients = build_transport()
    loop.schedule_at(0.5, clients[0].send)
    loop.run()
    sent = clients[0].sent_messages[0]
    assert sent.true_time == pytest.approx(0.5)
    assert sent.sequence_number == 1


def test_arrival_callback_invoked_with_arrival_time():
    loop, transport, clients = build_transport(delay=0.001)
    arrivals = []
    transport.sequencer.on_arrival(lambda item, when: arrivals.append((item, when)))
    loop.schedule_at(0.1, clients[1].send)
    loop.run()
    assert len(arrivals) == 1
    item, when = arrivals[0]
    assert isinstance(item, TimestampedMessage)
    assert when == pytest.approx(0.101)


def test_heartbeats_flow_periodically_and_stop():
    loop, transport, clients = build_transport(heartbeat_interval=0.01)
    clients[0].start_heartbeats()
    loop.run(until=0.055)
    heartbeats = [item for item in transport.sequencer.arrivals if isinstance(item, Heartbeat)]
    assert len(heartbeats) >= 4
    clients[0].stop_heartbeats()
    count = clients[0].heartbeats_sent
    loop.schedule_at(1.0, lambda: None)
    loop.run()
    assert clients[0].heartbeats_sent == count


def test_heartbeat_requires_configured_interval():
    loop, transport, clients = build_transport(heartbeat_interval=None)
    with pytest.raises(ValueError):
        clients[0].start_heartbeats()


def test_duplicate_client_id_rejected():
    loop, transport, clients = build_transport(num_clients=1)
    clock = LocalClock(loop, GaussianDistribution(0.0, 1e-9), np.random.default_rng(9))
    with pytest.raises(ValueError):
        transport.add_client("c0", clock)


def test_channel_for_returns_the_clients_channel():
    loop, transport, clients = build_transport()
    loop.schedule_at(0.01, clients[0].send)
    loop.run()
    assert transport.channel_for("c0").sent == 1
    assert transport.channel_for("c1").sent == 0


def test_sequence_numbers_shared_between_messages_and_heartbeats():
    loop, transport, clients = build_transport(heartbeat_interval=0.01)
    loop.schedule_at(0.005, clients[0].send)
    loop.schedule_at(0.006, clients[0].send_heartbeat)
    loop.run()
    arrivals = transport.sequencer.arrivals
    sequence_numbers = [item.sequence_number for item in arrivals]
    assert sorted(sequence_numbers) == [1, 2]
