"""Tests for one-way delay models."""

import numpy as np
import pytest

from repro.network.link import ConstantDelay, GammaDelay, LogNormalDelay, UniformJitterDelay


def test_constant_delay_is_deterministic(rng):
    model = ConstantDelay(0.003)
    assert model.mean == 0.003
    assert all(model.sample(rng) == 0.003 for _ in range(5))


def test_constant_delay_rejects_negative():
    with pytest.raises(ValueError):
        ConstantDelay(-1.0)


def test_uniform_jitter_bounds_and_mean(rng):
    model = UniformJitterDelay(base=0.001, jitter=0.002)
    samples = np.array([model.sample(rng) for _ in range(2000)])
    assert samples.min() >= 0.001
    assert samples.max() <= 0.003
    assert samples.mean() == pytest.approx(model.mean, rel=0.05)


def test_uniform_jitter_zero_jitter_is_constant(rng):
    model = UniformJitterDelay(base=0.001, jitter=0.0)
    assert model.sample(rng) == 0.001


def test_lognormal_floor_is_respected(rng):
    model = LogNormalDelay(median=0.001, sigma=0.5, floor=0.0005)
    samples = np.array([model.sample(rng) for _ in range(2000)])
    assert samples.min() >= 0.0005
    assert samples.mean() == pytest.approx(model.mean, rel=0.1)


def test_lognormal_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        LogNormalDelay(median=0.0, sigma=0.5)
    with pytest.raises(ValueError):
        LogNormalDelay(median=0.001, sigma=-1.0)
    with pytest.raises(ValueError):
        LogNormalDelay(median=0.001, sigma=0.5, floor=-0.1)


def test_gamma_delay_mean(rng):
    model = GammaDelay(shape=2.0, scale=0.0005, floor=0.001)
    samples = np.array([model.sample(rng) for _ in range(4000)])
    assert samples.min() >= 0.001
    assert samples.mean() == pytest.approx(model.mean, rel=0.1)


def test_gamma_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        GammaDelay(shape=0.0, scale=1.0)
    with pytest.raises(ValueError):
        GammaDelay(shape=1.0, scale=0.0)
    with pytest.raises(ValueError):
        GammaDelay(shape=1.0, scale=1.0, floor=-1.0)
