"""Tests for message, heartbeat and batch data types."""

import pytest

from repro.network.message import Heartbeat, SequencedBatch, TimestampedMessage


def test_message_ids_are_unique():
    a = TimestampedMessage(client_id="x", timestamp=1.0)
    b = TimestampedMessage(client_id="x", timestamp=1.0)
    assert a.message_id != b.message_id
    assert a.key != b.key


def test_message_key_includes_client():
    message = TimestampedMessage(client_id="alice", timestamp=2.0)
    assert message.key == ("alice", message.message_id)


def test_empty_client_id_rejected():
    with pytest.raises(ValueError):
        TimestampedMessage(client_id="", timestamp=1.0)


def test_with_timestamp_preserves_identity():
    original = TimestampedMessage(client_id="a", timestamp=5.0, true_time=4.9, payload={"x": 1})
    tampered = original.with_timestamp(1.0)
    assert tampered.timestamp == 1.0
    assert tampered.message_id == original.message_id
    assert tampered.true_time == original.true_time
    assert tampered.payload == original.payload


def test_heartbeat_carries_client_and_timestamp():
    hb = Heartbeat(client_id="a", timestamp=3.0, sequence_number=7)
    assert hb.client_id == "a"
    assert hb.sequence_number == 7


def test_batch_requires_messages_and_valid_rank():
    message = TimestampedMessage(client_id="a", timestamp=1.0)
    with pytest.raises(ValueError):
        SequencedBatch(rank=-1, messages=(message,))
    with pytest.raises(ValueError):
        SequencedBatch(rank=0, messages=())


def test_batch_size_and_clients():
    messages = (
        TimestampedMessage(client_id="b", timestamp=1.0),
        TimestampedMessage(client_id="a", timestamp=2.0),
        TimestampedMessage(client_id="a", timestamp=3.0),
    )
    batch = SequencedBatch(rank=0, messages=messages)
    assert batch.size == 3
    assert batch.clients == ("a", "b")
