"""Tests for ordered and unordered channels."""

import numpy as np
import pytest

from repro.network.channel import OrderedChannel, UnorderedChannel
from repro.network.link import ConstantDelay, UniformJitterDelay
from repro.simulation.event_loop import EventLoop
from repro.simulation.trace import TraceRecorder


def test_unordered_channel_delivers_after_delay():
    loop = EventLoop()
    received = []
    channel = UnorderedChannel(
        loop, "chan", ConstantDelay(0.5), np.random.default_rng(0), received.append
    )
    channel.send("hello")
    loop.run()
    assert received == ["hello"]
    assert loop.now == pytest.approx(0.5)
    assert channel.sent == 1
    assert channel.delivered == 1


def test_unordered_channel_can_reorder():
    loop = EventLoop()
    received = []
    # large jitter relative to send spacing forces occasional reordering
    channel = UnorderedChannel(
        loop, "chan", UniformJitterDelay(0.0, 1.0), np.random.default_rng(2), received.append
    )
    for index in range(30):
        loop.schedule_at(index * 0.01, channel.send, index)
    loop.run()
    assert sorted(received) == list(range(30))
    assert received != list(range(30))


def test_ordered_channel_preserves_fifo_despite_jitter():
    loop = EventLoop()
    received = []
    channel = OrderedChannel(
        loop, "chan", UniformJitterDelay(0.0, 1.0), np.random.default_rng(2), received.append
    )
    for index in range(30):
        loop.schedule_at(index * 0.01, channel.send, index)
    loop.run()
    assert received == list(range(30))


def test_drop_probability_drops_messages():
    loop = EventLoop()
    received = []
    channel = UnorderedChannel(
        loop,
        "chan",
        ConstantDelay(0.0),
        np.random.default_rng(7),
        received.append,
        drop_probability=0.5,
    )
    for index in range(200):
        channel.send(index)
    loop.run()
    assert channel.dropped > 0
    assert channel.delivered + channel.dropped == 200
    assert len(received) == channel.delivered


def test_invalid_drop_probability_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        UnorderedChannel(
            loop, "chan", ConstantDelay(0.0), np.random.default_rng(0), lambda item: None, drop_probability=1.0
        )


def test_trace_records_deliveries_and_drops():
    loop = EventLoop()
    trace = TraceRecorder()
    channel = UnorderedChannel(
        loop,
        "chan",
        ConstantDelay(0.0),
        np.random.default_rng(3),
        lambda item: None,
        trace=trace,
        drop_probability=0.3,
    )
    for index in range(50):
        channel.send(index)
    loop.run()
    assert len(trace.events(kind="deliver")) == channel.delivered
    assert len(trace.events(kind="drop")) == channel.dropped
