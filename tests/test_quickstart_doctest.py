"""The package-docstring quickstart must keep working as advertised."""

import doctest

import repro


def test_quickstart_docstring_examples_pass():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted >= 1, "the quickstart example disappeared from the docstring"
    assert results.failed == 0
