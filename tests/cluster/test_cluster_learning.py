"""Cluster-wide live learning: per-shard refresh + merger re-pricing."""

import numpy as np
import pytest

from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop
from repro.workloads.learned import synthesize_probe


def build_cluster(num_clients=8, num_shards=2):
    loop = EventLoop()
    distributions = {
        f"client-{i:02d}": GaussianDistribution(0.0, 5.0) for i in range(num_clients)
    }
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=num_shards,
        config=TommyConfig(p_safe=0.99, completeness_mode="none", convolution_points=512),
    )
    return loop, cluster


def test_update_client_distribution_reaches_owner_shard_and_merger():
    loop, cluster = build_cluster()
    client = "client-03"
    refreshed = EmpiricalDistribution.from_samples(
        np.random.default_rng(0).normal(0.0, 0.01, 200), bins=64
    )
    cluster.update_client_distribution(client, refreshed)
    owner = cluster.router.assign(client)
    assert cluster.sequencer_of(owner).model.distribution_for(client) is refreshed
    assert cluster.merger.model.distribution_for(client) is refreshed
    assert cluster.learning_stats()["distribution_refreshes"] == 1
    assert cluster.learning_stats()["per_shard_refreshes"][owner] == 1
    with pytest.raises(KeyError):
        cluster.update_client_distribution("ghost", refreshed)


def test_attached_refresh_loop_feeds_the_cluster():
    loop, cluster = build_cluster()
    refresh = cluster.attach_learning(refresh_every=8, min_observations=4)
    assert cluster.refresh_loop is refresh
    rng = np.random.default_rng(1)
    for _ in range(8):
        cluster.observe_probe(synthesize_probe("client-01", float(rng.normal(0, 0.01)), 0.001))
    stats = cluster.learning_stats()
    assert stats["refreshes"] == 1
    assert stats["distribution_refreshes"] == 1
    # the learned (tight) estimate replaced the wide prior on the owner shard
    owner = cluster.router.assign("client-01")
    learned = cluster.sequencer_of(owner).model.distribution_for("client-01")
    assert isinstance(learned, EmpiricalDistribution)
    assert learned.std < 1.0


def test_observe_probe_requires_attached_loop():
    loop, cluster = build_cluster()
    with pytest.raises(ValueError):
        cluster.observe_probe(synthesize_probe("client-00", 0.0, 0.001))


def test_refreshed_cluster_sequences_and_merges():
    """End to end: refresh distributions, stream messages, merge shards."""
    loop, cluster = build_cluster(num_clients=6, num_shards=2)
    cluster.attach_learning(refresh_every=8, min_observations=4)
    rng = np.random.default_rng(2)
    clients = sorted(f"client-{i:02d}" for i in range(6))
    for client in clients:
        for _ in range(8):
            cluster.observe_probe(
                synthesize_probe(client, float(rng.normal(0.0, 0.05)), 0.001)
            )
    t = 0.0
    for k in range(30):
        t += float(rng.exponential(0.05))
        client = clients[int(rng.integers(6))]
        loop.schedule_at(
            t,
            cluster.receive,
            TimestampedMessage(
                client_id=client,
                timestamp=t + float(rng.normal(0.0, 0.05)),
                true_time=t,
                message_id=930_000 + k,
            ),
        )
    loop.run(until=t + 20.0)
    cluster.flush()
    result = cluster.result()
    assert sum(batch.size for batch in result.batches) == 30
    assert result.metadata["learning"]["refreshes"] == 6
    # every shard sequenced with learned (empirical) distributions: the
    # engines price pairs through tables, never scalar fallbacks
    assert cluster.engine_stats().scalar_evaluations == 0
    assert cluster.engine_stats().table_evaluations > 0


def test_direct_model_registration_does_not_serve_stale_merge_tables():
    """Regression: refreshing a client through ``merger.model.register_client``
    (the pre-learning registration path) must invalidate the merger's cached
    difference-CDF tables, not silently re-serve the old distribution."""
    from repro.network.message import SequencedBatch

    loop, cluster = build_cluster(num_clients=4, num_shards=2)
    merger = cluster.merger
    rng = np.random.default_rng(3)
    for client in ("client-00", "client-01"):
        merger.model.register_client(
            client, EmpiricalDistribution.from_samples(rng.normal(0.0, 0.2, 200), bins=64)
        )
    batch_a = SequencedBatch(
        rank=0,
        messages=(TimestampedMessage("client-00", 10.0, message_id=940_001),),
    )
    batch_b = SequencedBatch(
        rank=0,
        messages=(TimestampedMessage("client-01", 10.05, message_id=940_002),),
    )
    before = merger.batch_precedence(batch_a, batch_b)
    # refresh through the model directly (bypassing merger.register_client)
    merger.model.register_client(
        "client-00",
        EmpiricalDistribution.from_samples(rng.normal(2.0, 0.1, 200), bins=64),
    )
    after = merger.batch_precedence(batch_a, batch_b)
    # eps = reported - true, so client-00's timestamps now run two units
    # ahead of true time: message a was truly generated ~2 units before b
    # and the refreshed table must price that as near certainty
    assert after != before
    assert after > 0.9
