"""Tests for sharding policies and the shard router."""

import pytest

from repro.cluster.router import (
    HashSharding,
    LoadAwareSharding,
    RegionAffineSharding,
    ShardRouter,
    stable_shard_hash,
)


def test_stable_hash_is_process_independent():
    # frozen values: routing must not change across runs or Python versions
    assert stable_shard_hash("client-0000") == stable_shard_hash("client-0000")
    assert stable_shard_hash("client-0000") != stable_shard_hash("client-0001")


def test_hash_sharding_is_sticky_and_in_range():
    router = ShardRouter(4, HashSharding())
    clients = [f"client-{index:04d}" for index in range(100)]
    first = {client: router.assign(client) for client in clients}
    assert all(0 <= shard < 4 for shard in first.values())
    # idempotent
    assert {client: router.assign(client) for client in clients} == first
    # roughly uniform: every shard gets someone
    assert all(load > 0 for load in router.loads)
    assert sum(router.loads) == 100


def test_region_affine_sharding_colocates_regions():
    region_of = {f"c{i}": ("us-east" if i % 2 else "eu-west") for i in range(10)}
    router = ShardRouter(2, RegionAffineSharding(region_of))
    shards_by_region = {}
    for client, region in region_of.items():
        shards_by_region.setdefault(region, set()).add(router.assign(client))
    assert all(len(shards) == 1 for shards in shards_by_region.values())
    assert shards_by_region["us-east"] != shards_by_region["eu-west"]


def test_region_affine_unknown_client_falls_back_to_hash():
    policy = RegionAffineSharding({"a": "r0"})
    assert policy.assign("stranger", 4, [0, 0, 0, 0]) == stable_shard_hash("stranger") % 4


def test_load_aware_sharding_balances_exactly():
    router = ShardRouter(3, LoadAwareSharding())
    for index in range(9):
        router.assign(f"client-{index}")
    assert router.loads == [3, 3, 3]


def test_reassign_updates_loads_and_counts():
    router = ShardRouter(2, LoadAwareSharding())
    router.assign("a")
    router.assign("b")
    assert router.loads == [1, 1]
    router.reassign("a", 1)
    assert router.loads == [0, 2]
    assert router.shard_of("a") == 1
    assert router.reassignments == 1
    # no-op reassign does not count
    router.reassign("a", 1)
    assert router.reassignments == 1


def test_drain_moves_everyone_to_least_loaded_survivors():
    router = ShardRouter(3, LoadAwareSharding())
    for index in range(6):
        router.assign(f"client-{index}")
    before = router.clients_of(0)
    moved = router.drain(0)
    assert sorted(moved) == before
    assert router.clients_of(0) == []
    assert sorted(router.loads) == [0, 3, 3]
    assert all(shard in (1, 2) for shard in moved.values())


def test_drain_requires_a_survivor():
    router = ShardRouter(1)
    router.assign("a")
    with pytest.raises(ValueError):
        router.drain(0)


def test_router_rejects_bad_shard_indices():
    router = ShardRouter(2)
    router.assign("a")
    with pytest.raises(ValueError):
        router.clients_of(5)
    with pytest.raises(ValueError):
        router.reassign("a", -1)
    with pytest.raises(KeyError):
        router.reassign("unrouted", 0)
    with pytest.raises(ValueError):
        ShardRouter(0)


def test_region_map_reports_round_robin_region_sharing():
    # 5 regions over 3 shards: round-robin dealing puts two regions each on
    # shards 0 and 1 — consumers must not assume region-pure shards
    region_of = {f"client-{i}": f"region-{i % 5}" for i in range(10)}
    policy = RegionAffineSharding(region_of)
    assert policy.region_map(3) == {
        0: ("region-0", "region-3"),
        1: ("region-1", "region-4"),
        2: ("region-2",),
    }
    router = ShardRouter(3, policy)
    assert router.region_map() == {
        0: ("region-0", "region-3"),
        1: ("region-1", "region-4"),
        2: ("region-2",),
    }


def test_region_map_with_more_shards_than_regions_leaves_empty_shards():
    policy = RegionAffineSharding({"a": "eu", "b": "us"})
    router = ShardRouter(4, policy)
    assert router.region_map() == {0: ("eu",), 1: ("us",), 2: (), 3: ()}


def test_region_map_without_region_policy_is_empty_per_shard():
    router = ShardRouter(3, HashSharding())
    assert router.region_map() == {0: (), 1: (), 2: ()}
