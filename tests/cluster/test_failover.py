"""Heartbeat-driven shard failover: detection, reassignment, replay."""

import pytest

from repro.cluster import ClusterTransport, LoadAwareSharding, ShardedSequencer
from repro.clocks.local import LocalClock
from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import UniformJitterDelay
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource


def build_cluster(loop, num_clients=8, num_shards=2, heartbeat_interval=0.05):
    distributions = {f"c{i:02d}": GaussianDistribution(0.0, 0.0005) for i in range(num_clients)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=num_shards,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=0.01),
        heartbeat_interval=heartbeat_interval,
        heartbeat_timeout=0.12,
    )
    return cluster, distributions


def test_monitor_detects_silent_shard_and_drains_it():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    assert cluster.alive_shards == [0, 1]
    loop.schedule_at(0.3, cluster.fail_shard, 0)
    loop.run(until=1.0)
    assert cluster.alive_shards == [1]
    assert len(cluster.failover_events) == 1
    event = cluster.failover_events[0]
    assert event.shard == 0
    assert event.clients_moved == 4
    # detection happens within heartbeat_timeout + one monitor period
    assert 0.3 < event.detected_at <= 0.3 + 0.12 + 0.05 + 1e-9
    assert cluster.router.clients_of(0) == []


def test_pending_messages_are_replayed_to_survivors():
    loop = EventLoop()
    # large max_network_delay keeps arrivals pending until after the crash
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.0005) for i in range(4)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=10.0),
        heartbeat_interval=0.05,
        heartbeat_timeout=0.12,
    )
    victims = cluster.router.clients_of(0)
    for index, client_id in enumerate(victims):
        message = TimestampedMessage(client_id=client_id, timestamp=0.01 * (index + 1), true_time=0.01 * (index + 1))
        loop.schedule_at(0.01 * (index + 1), cluster.receive, message)
    loop.schedule_at(0.1, cluster.fail_shard, 0)
    loop.run(until=1.0)

    event = cluster.failover_events[0]
    assert event.messages_replayed == len(victims)
    survivor = cluster.sequencer_of(1)
    pending_clients = {message.client_id for message in survivor.pending_messages}
    assert set(victims) <= pending_clients
    # the dead shard emits nothing more and its pending is not double-counted
    cluster.flush()
    result = cluster.result()
    keys = [message.key for batch in result.batches for message in batch.messages]
    assert len(keys) == len(set(keys)) == len(victims)


def test_messages_arriving_during_outage_are_backlogged_then_replayed():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    victims = cluster.router.clients_of(0)
    cluster.fail_shard(0)  # crashed but not yet detected (monitor hasn't run)
    message = TimestampedMessage(client_id=victims[0], timestamp=0.001, true_time=0.001)
    cluster.receive(message, arrival_time=0.0)
    assert cluster.shards[0].backlog == [message]
    assert cluster.sequencer_of(0).pending_messages == []
    loop.run(until=1.0)  # monitor fires, failover replays the backlog
    assert cluster.shards[0].backlog == []
    assert cluster.failover_events[0].messages_replayed == 1
    cluster.flush()
    assert cluster.result().message_count == 1


def test_post_failover_traffic_routes_to_new_owner():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    victims = cluster.router.clients_of(0)
    cluster.force_failover(0)
    message = TimestampedMessage(client_id=victims[0], timestamp=0.5, true_time=0.5)
    # delivered at the dead shard's endpoint (stale channel): must reroute
    cluster.receive_at(0, message, arrival_time=0.0)
    assert message.key in {m.key for m in cluster.sequencer_of(1).pending_messages}


def test_new_client_assigned_to_dead_shard_is_rerouted():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    cluster.force_failover(0)
    # LoadAwareSharding would pick the drained (now empty) shard 0
    cluster.register_client("late", GaussianDistribution(0.0, 0.0005))
    assert cluster.router.shard_of("late") == 1
    message = TimestampedMessage(client_id="late", timestamp=0.001, true_time=0.001)
    cluster.receive(message, arrival_time=0.0)
    loop.run(until=1.0)
    cluster.flush()
    assert message.key in {m.key for b in cluster.result().batches for m in b.messages}


def test_double_crash_before_detection_keeps_crashed_shard_silent():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    victims = cluster.router.clients_of(0)
    message = TimestampedMessage(client_id=victims[0], timestamp=0.001, true_time=0.001)
    cluster.fail_shard(0)
    cluster.fail_shard(1)
    cluster.receive(message, arrival_time=0.0)  # lands in shard 0's backlog
    emitted_before = cluster.emitted_counts()
    loop.run(until=1.0)  # monitor fires; must not raise, must not wake shard 1
    # both crashed shards stayed silent: nothing was emitted after the crash
    assert cluster.emitted_counts() == emitted_before
    # the message cascaded into a backlog instead of a halted sequencer
    assert all(shard.sequencer.pending_messages == [] for shard in cluster.shards)


def test_last_alive_shard_going_stale_degrades_without_crashing():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    cluster.force_failover(0)
    cluster.fail_shard(1)  # the only alive shard goes silent
    loop.run(until=1.0)  # monitor keeps ticking; must not raise
    assert cluster.alive_shards == [1]  # degraded, never drained


def test_cannot_fail_over_last_shard():
    loop = EventLoop()
    cluster, _ = build_cluster(loop)
    cluster.force_failover(0)
    with pytest.raises(ValueError):
        cluster.force_failover(1)


def test_end_to_end_failover_with_live_transport_loses_nothing():
    loop = EventLoop()
    source = RandomSource(3)
    distributions = {f"c{i:02d}": GaussianDistribution(0.0, 0.0005) for i in range(8)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=0.01),
        heartbeat_interval=0.05,
        heartbeat_timeout=0.12,
    )
    net = ClusterTransport(loop, cluster, source.stream)
    clients = []
    for client_id, distribution in distributions.items():
        clock = LocalClock(loop, distribution, source.stream(f"clock:{client_id}"))
        clients.append(net.add_client(client_id, clock, delay_model=UniformJitterDelay(0.001, 0.0005)))
    for index, endpoint in enumerate(clients):
        for round_index in range(3):
            loop.schedule_at(0.01 + 0.2 * round_index + 0.001 * index, endpoint.send, {"round": round_index})
    loop.schedule_at(0.3, cluster.fail_shard, 0)
    loop.run(until=2.0)
    cluster.flush()

    assert cluster.alive_shards == [1]
    assert len(cluster.failover_events) == 1
    result = cluster.result()
    sent = sum(len(endpoint.sent_messages) for endpoint in clients)
    keys = [message.key for batch in result.batches for message in batch.messages]
    assert len(keys) == sent
    assert len(set(keys)) == sent
    assert result.metadata["failovers"] == 1
