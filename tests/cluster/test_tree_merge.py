"""Hierarchical merge tree tests: topology shapes and bitwise parity.

The contract: a :class:`HierarchicalMerger` (offline) or a tree-mode
:class:`StreamingMerger` produces byte-identical output to the flat
:meth:`CrossShardMerger.merge` over the same streams — for any topology
kind, any fanout, any chunk budget, any observation interleaving, across
distribution refreshes, and through mid-run shard crash + rejoin.  The
only thing a topology may change is *where* each cross-shard pair is
priced (its LCA node), never the float it produces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.merge import CrossShardMerger, _NodeLayout
from repro.cluster.router import RegionAffineSharding
from repro.cluster.sharded import ShardedSequencer
from repro.cluster.tree import HierarchicalMerger, MergeTopology
from repro.core.config import TommyConfig
from repro.core.probability import PrecedenceModel
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import SequencedBatch, TimestampedMessage
from repro.obs.export import chrome_trace_events
from repro.obs.telemetry import Telemetry
from repro.simulation.event_loop import EventLoop


def fingerprint(outcome):
    return [
        (
            batch.rank,
            tuple(message.key for message in batch.messages),
            batch.emitted_at,
        )
        for batch in outcome.result.batches
    ]


def build_model(num_shards, clients_per_shard, rng, empirical_fraction=0.0):
    model = PrecedenceModel()
    shard_clients = []
    for shard in range(num_shards):
        clients = []
        for local in range(clients_per_shard):
            client_id = f"s{shard}-c{local}"
            if rng.random() < empirical_fraction:
                samples = rng.normal(float(rng.normal(0, 0.002)), float(rng.uniform(0.002, 0.01)), 600)
                model.register_client(
                    client_id, EmpiricalDistribution.from_samples(samples, bins=64)
                )
            else:
                model.register_client(
                    client_id,
                    GaussianDistribution(
                        float(rng.normal(0, 0.002)), float(rng.uniform(0.002, 0.01))
                    ),
                )
            clients.append(client_id)
        shard_clients.append(clients)
    return model, shard_clients


def build_streams(shard_clients, batches_per_shard, rng, gap=0.015, spread=1.0):
    streams = []
    message_id = int(rng.integers(40_000_000, 50_000_000))
    for shard, clients in enumerate(shard_clients):
        stream = []
        for index in range(batches_per_shard):
            base = index * gap + float(rng.uniform(0.0, spread * gap))
            messages = []
            for _ in range(int(rng.integers(1, 4))):
                timestamp = base + float(rng.uniform(0, 0.5 * gap))
                messages.append(
                    TimestampedMessage(
                        client_id=clients[int(rng.integers(len(clients)))],
                        timestamp=timestamp,
                        true_time=timestamp,
                        message_id=message_id,
                    )
                )
                message_id += 1
            stream.append(SequencedBatch(rank=index, messages=tuple(messages), emitted_at=base))
        streams.append(stream)
    return streams


def random_interleaving(streams, rng):
    cursors = [0] * len(streams)
    order = []
    while True:
        available = [s for s, stream in enumerate(streams) if cursors[s] < len(stream)]
        if not available:
            return order
        shard = available[int(rng.integers(len(available)))]
        order.append((shard, streams[shard][cursors[shard]]))
        cursors[shard] += 1


def observed_prefix(observations, count, num_shards):
    prefix = [[] for _ in range(num_shards)]
    for shard, batch in observations[:count]:
        prefix[shard].append(batch)
    return prefix


SIX_SHARD_REGIONS = {
    0: ("region-0", "region-4"),
    1: ("region-1", "region-5"),
    2: ("region-2",),
    3: ("region-3",),
    4: (),
    5: (),
}


def topology_for(kind, num_shards, fanout):
    region_map = {
        shard: SIX_SHARD_REGIONS.get(shard, ()) for shard in range(num_shards)
    }
    return MergeTopology.build(kind, num_shards, fanout=fanout, region_map=region_map)


# --------------------------------------------------------------- topology shape


def test_balanced_binary_topology_shape():
    topology = MergeTopology.balanced(6, fanout=2)
    assert topology.num_shards == 6
    assert topology.kind == "binary"
    assert topology.fanout == 2
    assert topology.depth == 3
    root = topology.root
    assert tuple(sorted(root.shards)) == (0, 1, 2, 3, 4, 5)
    for node in topology.interior_nodes:
        assert 2 <= len(node.children) <= 2 or node is root
        # children precede their parent in node order
        assert all(child < node.node_id for child in node.children)
    for shard in range(6):
        path = topology.path(shard)
        assert path[0] == topology.leaf(shard).node_id
        assert path[-1] == root.node_id
        assert topology.leaf(shard).is_leaf


def test_flat_topology_is_one_interior_node():
    topology = MergeTopology.flat(5)
    assert topology.depth == 1
    assert len(topology.interior_nodes) == 1
    assert topology.interior_nodes[0] is topology.root
    assert all(topology.lca(a, b) == topology.root.node_id for a in range(5) for b in range(5) if a != b)


def test_lca_is_symmetric_and_minimal():
    topology = MergeTopology.balanced(8, fanout=2)
    for a in range(8):
        for b in range(8):
            if a == b:
                continue
            lca = topology.lca(a, b)
            assert lca == topology.lca(b, a)
            node = topology.nodes[lca]
            assert a in node.shards and b in node.shards
            # minimal: no child of the LCA contains both shards
            for child in node.children:
                child_shards = set(topology.nodes[child].shards)
                assert not ({a, b} <= child_shards)


def test_single_child_chunks_pass_through_without_interior_node():
    # 5 leaves at fanout 4 leave a singleton chunk; it must join the next
    # level directly instead of minting a pointless one-child aggregator
    topology = MergeTopology.balanced(5, fanout=4)
    assert all(len(node.children) >= 2 for node in topology.interior_nodes)
    assert topology.depth == 2


def test_region_affine_order_groups_shared_region_shards():
    topology = MergeTopology.region_affine(SIX_SHARD_REGIONS, 6, fanout=2)
    assert topology.kind == "region"
    # leaves are ordered by (has-regions, region tuple, shard): regionful
    # shards first in region-rank order, empty shards trail
    leaf_order = [node.shards[0] for node in topology.nodes if node.is_leaf]
    assert leaf_order == sorted(
        range(6), key=lambda s: (0 if SIX_SHARD_REGIONS[s] else 1, SIX_SHARD_REGIONS[s], s)
    )
    # first-level siblings therefore pair region-adjacent shards
    level_one = [node for node in topology.interior_nodes if node.level == 1]
    assert any(set(node.shards) == {0, 1} for node in level_one)


def test_describe_covers_every_node():
    topology = MergeTopology.balanced(6, fanout=3)
    rows = topology.describe()
    assert len(rows) == len(topology.nodes)
    assert sum(1 for row in rows if row["children"] == 0) == 6
    assert rows[-1]["level"] == topology.depth


def test_build_rejects_unknown_kind_and_bad_sizes():
    with pytest.raises(ValueError, match="unknown merge topology"):
        MergeTopology.build("ring", 4)
    with pytest.raises(ValueError):
        MergeTopology.balanced(0)
    with pytest.raises(ValueError):
        MergeTopology.balanced(4, fanout=1)


def test_tree_merger_rejects_too_many_streams():
    rng = np.random.default_rng(0)
    model, shard_clients = build_model(3, 1, rng)
    streams = build_streams(shard_clients, 2, rng)
    merger = CrossShardMerger(model, seed=0).tree_merger(MergeTopology.balanced(2, 2))
    with pytest.raises(ValueError, match="3 shard streams"):
        merger.merge(streams)


# --------------------------------------------------------------- offline parity


@pytest.mark.parametrize("empirical_fraction", [0.0, 0.5])
@pytest.mark.parametrize(
    "kind,fanout",
    [("flat", 2), ("binary", 2), ("binary", 3), ("region", 2)],
)
def test_tree_merge_is_bitwise_identical_to_flat_merge(kind, fanout, empirical_fraction):
    rng = np.random.default_rng(17)
    num_shards = 6
    model, shard_clients = build_model(num_shards, 2, rng, empirical_fraction)
    streams = build_streams(shard_clients, 5, rng)
    flat = CrossShardMerger(model, seed=0).merge(streams)
    tree_merger = CrossShardMerger(model, seed=0).tree_merger(
        topology_for(kind, num_shards, fanout)
    )
    tree = tree_merger.merge(streams)
    assert fingerprint(tree) == fingerprint(flat)
    assert tree.cross_pairs_evaluated == flat.cross_pairs_evaluated
    assert tree.cross_pairs_pruned == flat.cross_pairs_pruned
    assert tree.merged_cross_shard == flat.merged_cross_shard
    assert tree.cycles_broken == flat.cycles_broken
    report = tree_merger.node_report
    assert sum(row["pruned_pairs"] for row in report) == tree.cross_pairs_pruned
    assert sum(row["kernel_pairs"] for row in report) == tree.cross_pairs_evaluated


def test_tree_forward_matrix_is_bitwise_identical_to_flat_kernel():
    # not just the same order: every forward probability must match the flat
    # kernel float for float, so threshold comparisons can never diverge
    rng = np.random.default_rng(23)
    num_shards = 6
    model, shard_clients = build_model(num_shards, 2, rng, empirical_fraction=0.5)
    streams = build_streams(shard_clients, 4, rng)
    flat_matrix, flat_evaluated, flat_pruned = CrossShardMerger(model, seed=0)._forward_matrix(
        streams
    )
    tree_merger = CrossShardMerger(model, seed=0).tree_merger(MergeTopology.balanced(num_shards, 2))
    tree_matrix, evaluated, pruned = tree_merger._tree_forward_matrix(
        streams, _NodeLayout(streams)
    )
    assert np.array_equal(flat_matrix, tree_matrix, equal_nan=True)
    assert (evaluated, pruned) == (flat_evaluated, flat_pruned)


def test_tree_forward_matrix_uniform_batches_bitwise_identical_to_flat_kernel():
    # uniform per-batch message counts take the broadcast fast path in
    # _evaluate_pairs_gaussian (no per-element division); it must produce the
    # same bits as the flat kernel, and as the generic path it replaces
    rng = np.random.default_rng(29)
    num_shards = 6
    model, shard_clients = build_model(num_shards, 2, rng)
    streams = []
    message_id = 70_000_000
    for shard, clients in enumerate(shard_clients):
        stream = []
        for index in range(4):
            base = index * 0.015 + float(rng.uniform(0.0, 0.015))
            messages = []
            for _ in range(3):  # every batch exactly 3 messages
                timestamp = base + float(rng.uniform(0, 0.0075))
                messages.append(
                    TimestampedMessage(
                        client_id=clients[int(rng.integers(len(clients)))],
                        timestamp=timestamp,
                        true_time=timestamp,
                        message_id=message_id,
                    )
                )
                message_id += 1
            stream.append(SequencedBatch(rank=index, messages=tuple(messages), emitted_at=base))
        streams.append(stream)
    flat_matrix, flat_evaluated, flat_pruned = CrossShardMerger(model, seed=0)._forward_matrix(
        streams
    )
    tree_merger = CrossShardMerger(model, seed=0).tree_merger(MergeTopology.balanced(num_shards, 2))
    tree_matrix, evaluated, pruned = tree_merger._tree_forward_matrix(
        streams, _NodeLayout(streams)
    )
    assert np.array_equal(flat_matrix, tree_matrix, equal_nan=True)
    assert (evaluated, pruned) == (flat_evaluated, flat_pruned)


def test_tree_merge_is_invariant_to_chunk_budget():
    # the chunk budget only groups kernel calls; a degenerate one-element
    # budget must still reproduce the default result bit for bit
    rng = np.random.default_rng(31)
    model, shard_clients = build_model(4, 2, rng)
    streams = build_streams(shard_clients, 4, rng)
    topology = MergeTopology.balanced(4, 2)
    default = CrossShardMerger(model, seed=0).tree_merger(topology).merge(streams)
    tiny = HierarchicalMerger(CrossShardMerger(model, seed=0), topology, chunk_elements=1).merge(
        streams
    )
    assert fingerprint(tiny) == fingerprint(default)
    assert tiny.cross_pairs_evaluated == default.cross_pairs_evaluated
    assert tiny.cross_pairs_pruned == default.cross_pairs_pruned
    with pytest.raises(ValueError, match="chunk_elements"):
        HierarchicalMerger(CrossShardMerger(model, seed=0), topology, chunk_elements=0)


def test_empty_and_missing_streams_merge_cleanly():
    rng = np.random.default_rng(37)
    model, shard_clients = build_model(4, 1, rng)
    streams = build_streams(shard_clients, 3, rng)
    streams[2] = []
    tree_merger = CrossShardMerger(model, seed=0).tree_merger(MergeTopology.balanced(4, 2))
    # trailing shard omitted entirely: padded with an empty stream
    tree = tree_merger.merge(streams[:3])
    flat = CrossShardMerger(model, seed=0).merge(streams[:3] + [[]])
    assert fingerprint(tree) == fingerprint(flat)
    assert fingerprint(tree_merger.merge([[], [], [], []])) == []


# ------------------------------------------------------------- streaming parity


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("kind,fanout", [("binary", 2), ("binary", 3), ("region", 2)])
def test_streaming_tree_equals_offline_flat_under_random_interleavings(seed, kind, fanout):
    rng = np.random.default_rng(200 + seed)
    num_shards = 6
    model, shard_clients = build_model(num_shards, 2, rng, empirical_fraction=0.5)
    streams = build_streams(shard_clients, 4, rng)
    topology = topology_for(kind, num_shards, fanout)
    streaming = CrossShardMerger(model, seed=seed).streaming_merger(topology=topology)
    observations = random_interleaving(streams, rng)
    for position, (shard, batch) in enumerate(observations):
        streaming.observe_batch(shard, batch)
        if position % 5 == 4:  # mid-stream parity, batches in arbitrary shard order
            prefix = observed_prefix(observations, position + 1, num_shards)
            oracle = CrossShardMerger(model, seed=seed).merge(prefix)
            assert fingerprint(streaming.result()) == fingerprint(oracle)
    oracle = CrossShardMerger(model, seed=seed).merge(streams)
    live = streaming.result()
    assert fingerprint(live) == fingerprint(oracle)
    assert live.cross_pairs_evaluated == oracle.cross_pairs_evaluated
    assert live.cross_pairs_pruned == oracle.cross_pairs_pruned
    report = streaming.node_report()
    assert [row["node"] for row in report] == [
        node.node_id for node in topology.interior_nodes
    ]
    assert sum(row["pruned_pairs"] for row in report) == streaming.cross_pairs_pruned
    assert sum(row["kernel_pairs"] for row in report) == streaming.cross_pairs_evaluated


def test_streaming_tree_refresh_client_reprices_pairs():
    rng = np.random.default_rng(5)
    num_shards = 4
    model, shard_clients = build_model(num_shards, 1, rng)
    streams = build_streams(shard_clients, 3, rng)
    topology = MergeTopology.balanced(num_shards, 2)
    streaming = CrossShardMerger(model, seed=0).streaming_merger(topology=topology)
    for shard, batch in random_interleaving(streams, rng):
        streaming.observe_batch(shard, batch)
    refreshed = "s0-c0"
    model.register_client(refreshed, GaussianDistribution(0.0, 5.0))
    repriced = streaming.refresh_client(refreshed)
    assert repriced > 0
    oracle = CrossShardMerger(model, seed=0).merge(streams)
    live = streaming.result()
    assert fingerprint(live) == fingerprint(oracle)
    assert live.cross_pairs_pruned == oracle.cross_pairs_pruned
    assert live.cross_pairs_evaluated == oracle.cross_pairs_evaluated
    # per-node accounting survives the re-pricing (each pair moves between a
    # node's pruned/kernel buckets, never between nodes)
    report = streaming.node_report()
    assert sum(row["pruned_pairs"] for row in report) == live.cross_pairs_pruned
    assert sum(row["kernel_pairs"] for row in report) == live.cross_pairs_evaluated


def test_streaming_merger_rejects_topology_shard_mismatch():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 0.01))
    merger = CrossShardMerger(model, seed=0)
    with pytest.raises(ValueError, match="topology"):
        merger.streaming_merger(num_shards=3, topology=MergeTopology.balanced(2, 2))


# ------------------------------------------------- live cluster property (hypothesis)


def _run_live_cluster(seed, num_shards, fanout, kind, crash):
    rng = np.random.default_rng(seed)
    num_regions = num_shards + 2  # more regions than shards: shared-region shards
    distributions = {}
    region_of = {}
    for i in range(num_shards * 3):
        client_id = f"client-{i:02d}"
        distributions[client_id] = GaussianDistribution(
            float(rng.normal(0, 0.002)), float(rng.uniform(0.004, 0.01))
        )
        region_of[client_id] = f"region-{i % num_regions}"
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=num_shards,
        policy=RegionAffineSharding(region_of),
        config=TommyConfig(completeness_mode="none", p_safe=0.9),
        streaming_merge=True,
        dedupe_intake=True,
        merge_topology=kind,
        merge_fanout=fanout,
    )
    clients = sorted(distributions)
    sent = []
    t = 0.0
    for _ in range(num_shards * 20):
        t += float(rng.exponential(0.01))
        client = clients[int(rng.integers(len(clients)))]
        message = TimestampedMessage(client_id=client, timestamp=t, true_time=t)
        sent.append(message)
        loop.schedule_at(t, cluster.receive, message)
    if crash:
        victim = int(rng.integers(num_shards))
        loop.schedule_at(t * 0.4, cluster.force_failover, victim)
        loop.schedule_at(t * 0.7, cluster.rejoin_shard, victim)
    loop.run()
    cluster.flush()
    return cluster, sent


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    num_shards=st.integers(2, 4),
    fanout=st.integers(2, 3),
    kind=st.sampled_from(["binary", "region"]),
    crash=st.booleans(),
)
def test_live_tree_cluster_matches_flat_oracle(seed, num_shards, fanout, kind, crash):
    # the strongest end-to-end property: a live cluster running the tree
    # topology — streaming tree pricing, region-affine routing, optionally a
    # mid-run shard crash + rejoin — linearises byte-identically to both the
    # offline tree merge and the flat reference merge, with every sent
    # message appearing exactly once
    cluster, sent = _run_live_cluster(seed, num_shards, fanout, kind, crash)
    live = cluster.live_merge()
    offline_tree = cluster.merge()
    flat = cluster.merger.merge(cluster.shard_batches())
    assert fingerprint(live) == fingerprint(flat)
    assert fingerprint(offline_tree) == fingerprint(flat)
    assert live.cross_pairs_evaluated == flat.cross_pairs_evaluated
    assert live.cross_pairs_pruned == flat.cross_pairs_pruned
    merged_keys = [
        message.key for batch in flat.result.batches for message in batch.messages
    ]
    assert sorted(merged_keys) == sorted(message.key for message in sent)
    assert len(merged_keys) == len(set(merged_keys))


# ------------------------------------------------------------------ observability


def test_merge_report_and_telemetry_surface_tree_nodes():
    telemetry = Telemetry()
    rng = np.random.default_rng(11)
    distributions = {
        f"c{i:02d}": GaussianDistribution(0.0, float(rng.uniform(0.004, 0.01)))
        for i in range(8)
    }
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=4,
        config=TommyConfig(completeness_mode="none", p_safe=0.9),
        streaming_merge=True,
        merge_topology="binary",
        merge_fanout=2,
        telemetry=telemetry,
    )
    clients = sorted(distributions)
    t = 0.0
    for k in range(48):
        t += float(rng.exponential(0.01))
        client = clients[k % len(clients)]
        message = TimestampedMessage(client_id=client, timestamp=t, true_time=t)
        loop.schedule_at(t, cluster.receive, message)
    loop.run()
    cluster.flush()

    merge_report = cluster.observability_report()["merge"]
    assert merge_report["topology"] == "binary"
    assert merge_report["fanout"] == 2
    assert merge_report["depth"] == cluster.merge_topology.depth
    nodes = merge_report["nodes"]
    assert [row["node"] for row in nodes] == [
        node.node_id for node in cluster.merge_topology.interior_nodes
    ]
    assert sum(row["pruned_pairs"] for row in nodes) == merge_report["cross_pairs_pruned"]
    assert sum(row["kernel_pairs"] for row in nodes) == merge_report["cross_pairs_evaluated"]
    assert merge_report["cross_pairs_evaluated"] > 0

    # the attach hook exposes the same report through the registry snapshot
    snapshot = telemetry.registry.snapshot()
    assert snapshot["sources"]["cluster.merge"]["topology"] == "binary"

    # per-level pricing lands as merge_tree events and counters, and the
    # trace exporter pins them to the merge process track
    tree_events = [record for record in telemetry.event_records if record.kind == "merge_tree"]
    assert tree_events
    assert any(key.startswith("merge.tree.level") for key in snapshot["counters"])
    traced = [
        event
        for event in chrome_trace_events(telemetry)
        if str(event.get("name", "")).startswith("merge_tree:")
    ]
    assert traced and all(event["pid"] == 2 for event in traced)
