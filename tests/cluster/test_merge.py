"""Tests for the probabilistic cross-shard merger."""

import numpy as np
import pytest

from repro.cluster.merge import CertaintyWindows, CrossShardMerger, _merge_from_matrix
from repro.core.probability import PrecedenceModel
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import SequencedBatch, TimestampedMessage


def make_message(client, timestamp, true_time=None):
    return TimestampedMessage(
        client_id=client, timestamp=timestamp, true_time=timestamp if true_time is None else true_time
    )


def model_for(clients, sigma=1.0):
    model = PrecedenceModel()
    for client in clients:
        model.register_client(client, GaussianDistribution(0.0, sigma))
    return model


def batch(rank, *messages, emitted_at=None):
    return SequencedBatch(rank=rank, messages=tuple(messages), emitted_at=emitted_at)


def test_single_shard_stream_passes_through_unchanged():
    model = model_for(["a"])
    merger = CrossShardMerger(model)
    stream = [batch(0, make_message("a", 0.0)), batch(1, make_message("a", 10.0))]
    outcome = merger.merge([stream])
    assert outcome.merged_cross_shard == 0
    assert outcome.cross_pairs_evaluated == 0
    assert outcome.result.batch_count == 2
    assert [b.messages for b in outcome.result.batches] == [s.messages for s in stream]


def test_confident_cross_shard_batches_interleave_correctly():
    model = model_for(["a", "b"], sigma=0.5)
    merger = CrossShardMerger(model, threshold=0.75)
    shard0 = [batch(0, make_message("a", 0.0)), batch(1, make_message("a", 100.0))]
    shard1 = [batch(0, make_message("b", 50.0))]
    outcome = merger.merge([shard0, shard1])
    assert outcome.result.batch_count == 3
    timestamps = [b.messages[0].timestamp for b in outcome.result.batches]
    assert timestamps == [0.0, 50.0, 100.0]
    assert outcome.merged_cross_shard == 0


def test_uncertain_cross_shard_batches_coalesce():
    # timestamps 0 and 0.1 with sigma 10 clocks: far below any confidence
    model = model_for(["a", "b"], sigma=10.0)
    merger = CrossShardMerger(model, threshold=0.75)
    shard0 = [batch(0, make_message("a", 0.0))]
    shard1 = [batch(0, make_message("b", 0.1))]
    outcome = merger.merge([shard0, shard1])
    assert outcome.result.batch_count == 1
    assert outcome.merged_cross_shard == 1
    assert outcome.result.batches[0].size == 2


def test_same_shard_batches_never_coalesce():
    # the shard separated them; the merger must respect that even when the
    # batch-level probability is far from confident
    model = model_for(["a"], sigma=10.0)
    merger = CrossShardMerger(model, threshold=0.75)
    stream = [batch(0, make_message("a", 0.0)), batch(1, make_message("a", 0.1))]
    outcome = merger.merge([stream])
    assert outcome.result.batch_count == 2


def test_batch_precedence_is_complementary_and_mean_pooled():
    model = model_for(["a", "b"], sigma=1.0)
    merger = CrossShardMerger(model)
    batch_a = batch(0, make_message("a", 0.0), make_message("a", 1.0))
    batch_b = batch(0, make_message("b", 2.0))
    forward = merger.batch_precedence(batch_a, batch_b)
    backward = merger.batch_precedence(batch_b, batch_a)
    assert forward == pytest.approx(1.0 - backward)
    expected = (
        model.preceding_probability_for("a", 0.0, "b", 2.0)
        + model.preceding_probability_for("a", 1.0, "b", 2.0)
    ) / 2.0
    assert forward == pytest.approx(expected)


def test_within_shard_order_survives_adversarial_timestamps():
    # shard 0 confidently emitted a@10 before a@0 from its own evidence; a
    # third-party b@5 then forms a cycle (a@10 -> a@0 -> b@5 -> a@10) that
    # cycle-breaking must resolve without ever inverting the shard's order
    model = model_for(["a", "b"], sigma=0.5)
    merger = CrossShardMerger(model, threshold=0.75)
    shard0 = [batch(0, make_message("a", 10.0)), batch(1, make_message("a", 0.0))]
    shard1 = [batch(0, make_message("b", 5.0))]
    outcome = merger.merge([shard0, shard1])
    ranks = outcome.result.rank_of()
    key_first = shard0[0].messages[0].key
    key_second = shard0[1].messages[0].key
    assert ranks[key_first] < ranks[key_second]
    assert outcome.cycles_broken >= 1  # the adversarial pair forced a cycle


def test_empty_input_yields_empty_result():
    merger = CrossShardMerger(model_for([]))
    outcome = merger.merge([])
    assert outcome.result.batch_count == 0
    assert outcome.merged_cross_shard == 0
    outcome = merger.merge([[], []])
    assert outcome.result.batch_count == 0


def test_merge_is_deterministic():
    model = model_for(["a", "b", "c"], sigma=3.0)
    shard0 = [batch(0, make_message("a", 0.0)), batch(1, make_message("a", 4.0))]
    shard1 = [batch(0, make_message("b", 1.0)), batch(1, make_message("b", 5.0))]
    shard2 = [batch(0, make_message("c", 2.0))]
    first = CrossShardMerger(model_for(["a", "b", "c"], sigma=3.0), seed=5).merge(
        [shard0, shard1, shard2]
    )
    second = CrossShardMerger(model_for(["a", "b", "c"], sigma=3.0), seed=5).merge(
        [shard0, shard1, shard2]
    )
    fingerprint = lambda outcome: [
        (b.rank, tuple(m.key for m in b.messages)) for b in outcome.result.batches
    ]
    assert fingerprint(first) == fingerprint(second)


def test_threshold_validation():
    with pytest.raises(ValueError):
        CrossShardMerger(model_for(["a"]), threshold=0.4)
    with pytest.raises(ValueError):
        CrossShardMerger(model_for(["a"]), threshold=1.0)


def test_window_pruning_matches_kernel_saturation_exactly():
    # batches far outside each other's certainty windows resolve to 0/1 by
    # window pruning; the kernel itself must saturate to the same floats, so
    # pruning can never change the merged order
    model = model_for(["a", "b"], sigma=0.001)
    merger = CrossShardMerger(model, threshold=0.75)
    near = batch(0, make_message("a", 0.0))
    far = batch(0, make_message("b", 100.0))
    windows = merger.certainty_windows
    assert windows.radius("a") + windows.radius("b") < 100.0
    # the kernel value for the pruned pair is exactly the pruned constant
    assert merger.batch_precedence(near, far) == 1.0
    assert merger.batch_precedence(far, near) == 0.0
    outcome = merger.merge([[near], [far]])
    assert outcome.cross_pairs_pruned == 1
    assert outcome.cross_pairs_evaluated == 0
    assert outcome.result.metadata["cross_pairs_pruned"] == 1
    timestamps = [b.messages[0].timestamp for b in outcome.result.batches]
    assert timestamps == [0.0, 100.0]


def test_window_pruning_exact_for_empirical_tables():
    # grid-backed pairs saturate at the difference-CDF grid ends; the
    # certainty radius must land pruned pairs beyond them
    rng = np.random.default_rng(3)
    model = PrecedenceModel()
    model.register_client(
        "a", EmpiricalDistribution.from_samples(rng.normal(0.0, 0.005, 800), bins=64)
    )
    model.register_client(
        "b", EmpiricalDistribution.from_samples(rng.normal(0.001, 0.008, 800), bins=64)
    )
    merger = CrossShardMerger(model, threshold=0.75)
    early = batch(0, make_message("a", 0.0))
    late = batch(0, make_message("b", 10.0))
    assert merger.batch_precedence(early, late) == 1.0
    outcome = merger.merge([[early], [late]])
    assert outcome.cross_pairs_pruned == 1
    assert [b.messages[0].client_id for b in outcome.result.batches] == ["a", "b"]


def test_certainty_windows_pick_up_distribution_refreshes():
    model = model_for(["a"], sigma=0.001)
    windows = CertaintyWindows(model)
    tight = windows.radius("a")
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    assert windows.radius("a") > tight


def test_infinite_support_disables_pruning():
    class Unbounded(GaussianDistribution):
        def support(self, coverage=1.0 - 1e-9):
            return (-float("inf"), float("inf"))

    model = PrecedenceModel()
    model.register_client("a", Unbounded(0.0, 0.001))
    model.register_client("b", GaussianDistribution(0.0, 0.001))
    merger = CrossShardMerger(model, threshold=0.75)
    outcome = merger.merge(
        [[batch(0, make_message("a", 0.0))], [batch(0, make_message("b", 100.0))]]
    )
    assert outcome.cross_pairs_pruned == 0
    assert outcome.cross_pairs_evaluated == 1


def test_three_shard_interleaving_coalesces_with_explicit_certainty():
    # a 3-shard interleaving whose merged order chains batches from all
    # three shards through the coalescing walk: every cross-shard adjacency
    # must find its recorded probability (no silent defaults)
    model = model_for(["a", "b", "c"], sigma=5.0)
    merger = CrossShardMerger(model, threshold=0.9)
    shard0 = [batch(0, make_message("a", 0.0)), batch(1, make_message("a", 1.0))]
    shard1 = [batch(0, make_message("b", 0.4))]
    shard2 = [batch(0, make_message("c", 0.7))]
    outcome = merger.merge([shard0, shard1, shard2])
    assert outcome.merged_cross_shard >= 2
    total = sum(b.size for b in outcome.result.batches)
    assert total == 4
    # determinism across repeated merges of fresh mergers
    again = CrossShardMerger(model_for(["a", "b", "c"], sigma=5.0), threshold=0.9).merge(
        [shard0, shard1, shard2]
    )
    assert [tuple(m.key for m in b.messages) for b in outcome.result.batches] == [
        tuple(m.key for m in b.messages) for b in again.result.batches
    ]


def test_missing_cross_shard_probability_is_a_hard_error():
    # the coalescing walk asserts cross-shard lookups exist instead of
    # silently defaulting to confident like the pre-kernel implementation
    streams = [[batch(0, make_message("a", 0.0))], [batch(0, make_message("b", 0.1))]]
    matrix = np.full((2, 2), np.nan)  # cross pair never priced
    with pytest.raises(AssertionError, match="no precedence recorded"):
        _merge_from_matrix(
            streams,
            matrix,
            threshold=0.75,
            cycle_policy="greedy",
            rng=np.random.default_rng(0),
            cross_pairs_evaluated=0,
            cross_pairs_pruned=0,
            start=0.0,
        )


def test_ranks_are_contiguous_and_metadata_populated():
    model = model_for(["a", "b"], sigma=2.0)
    merger = CrossShardMerger(model, threshold=0.75)
    shard0 = [batch(0, make_message("a", t)) for t in (0.0, 10.0, 20.0)]
    shard1 = [batch(0, make_message("b", t)) for t in (5.0, 15.0)]
    outcome = merger.merge([shard0, shard1])
    assert [b.rank for b in outcome.result.batches] == list(range(outcome.result.batch_count))
    meta = outcome.result.metadata
    assert meta["shards"] == 2
    assert meta["cross_pairs_evaluated"] == 6
    assert meta["merge_wall_seconds"] >= 0
