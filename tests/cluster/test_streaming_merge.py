"""Property tests for the incremental streaming cross-shard merger.

The contract: a :class:`StreamingMerger` observing per-shard batch streams
in *any* interleaving (respecting each shard's own rank order) produces
byte-identical output to the offline :meth:`CrossShardMerger.merge` over
the same streams — mid-stream and at the end, for Gaussian and grid-backed
clients, through the cyclic fallback, and across distribution refreshes.
"""

import numpy as np
import pytest

from repro.cluster.merge import CrossShardMerger
from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.core.probability import PrecedenceModel
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import SequencedBatch, TimestampedMessage
from repro.simulation.event_loop import EventLoop


def fingerprint(outcome):
    return [
        (
            batch.rank,
            tuple(message.key for message in batch.messages),
            batch.emitted_at,
        )
        for batch in outcome.result.batches
    ]


def build_model(num_shards, clients_per_shard, rng, empirical_fraction=0.0):
    model = PrecedenceModel()
    shard_clients = []
    for shard in range(num_shards):
        clients = []
        for local in range(clients_per_shard):
            client_id = f"s{shard}-c{local}"
            if rng.random() < empirical_fraction:
                samples = rng.normal(float(rng.normal(0, 0.002)), float(rng.uniform(0.002, 0.01)), 600)
                model.register_client(
                    client_id, EmpiricalDistribution.from_samples(samples, bins=64)
                )
            else:
                model.register_client(
                    client_id,
                    GaussianDistribution(
                        float(rng.normal(0, 0.002)), float(rng.uniform(0.002, 0.01))
                    ),
                )
            clients.append(client_id)
        shard_clients.append(clients)
    return model, shard_clients


def build_streams(shard_clients, batches_per_shard, rng, gap=0.015, spread=1.0):
    streams = []
    message_id = int(rng.integers(40_000_000, 50_000_000))
    for shard, clients in enumerate(shard_clients):
        stream = []
        for index in range(batches_per_shard):
            base = index * gap + float(rng.uniform(0.0, spread * gap))
            messages = []
            for _ in range(int(rng.integers(1, 4))):
                timestamp = base + float(rng.uniform(0, 0.5 * gap))
                messages.append(
                    TimestampedMessage(
                        client_id=clients[int(rng.integers(len(clients)))],
                        timestamp=timestamp,
                        true_time=timestamp,
                        message_id=message_id,
                    )
                )
                message_id += 1
            stream.append(SequencedBatch(rank=index, messages=tuple(messages), emitted_at=base))
        streams.append(stream)
    return streams


def random_interleaving(streams, rng):
    cursors = [0] * len(streams)
    order = []
    while True:
        available = [s for s, stream in enumerate(streams) if cursors[s] < len(stream)]
        if not available:
            return order
        shard = available[int(rng.integers(len(available)))]
        order.append((shard, streams[shard][cursors[shard]]))
        cursors[shard] += 1


def observed_prefix(observations, count, num_shards):
    prefix = [[] for _ in range(num_shards)]
    for shard, batch in observations[:count]:
        prefix[shard].append(batch)
    return prefix


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("empirical_fraction", [0.0, 0.5])
def test_streaming_equals_offline_under_random_interleavings(seed, empirical_fraction):
    rng = np.random.default_rng(100 + seed)
    num_shards = 3
    model, shard_clients = build_model(num_shards, 2, rng, empirical_fraction)
    streams = build_streams(shard_clients, 5, rng)

    streaming = CrossShardMerger(model, seed=seed).streaming_merger(num_shards=num_shards)
    observations = random_interleaving(streams, rng)
    for position, (shard, batch) in enumerate(observations):
        streaming.observe_batch(shard, batch)
        if position % 4 == 3:  # mid-stream parity, batches in arbitrary shard order
            prefix = observed_prefix(observations, position + 1, num_shards)
            oracle = CrossShardMerger(model, seed=seed).merge(prefix)
            assert fingerprint(streaming.result()) == fingerprint(oracle)
    oracle = CrossShardMerger(model, seed=seed).merge(streams)
    live = streaming.result()
    assert fingerprint(live) == fingerprint(oracle)
    assert live.result.metadata["shards"] == oracle.result.metadata["shards"]
    assert live.merged_cross_shard == oracle.merged_cross_shard
    assert live.cycles_broken == oracle.cycles_broken


@pytest.mark.parametrize("empirical_fraction", [0.0, 1.0])
def test_streaming_matrix_is_bitwise_identical_to_offline_kernel(empirical_fraction):
    # not just the same order: the maintained forward-probability matrix
    # must match the offline flattened kernel float for float, so threshold
    # comparisons can never diverge even at knife-edge probabilities
    rng = np.random.default_rng(42)
    num_shards = 3
    model, shard_clients = build_model(num_shards, 2, rng, empirical_fraction)
    streams = build_streams(shard_clients, 4, rng)
    offline = CrossShardMerger(model, seed=0)
    offline_matrix, _, _ = offline._forward_matrix(streams)
    streaming = CrossShardMerger(model, seed=0).streaming_merger(num_shards=num_shards)
    observations = random_interleaving(streams, rng)
    for shard, batch in observations:
        streaming.observe_batch(shard, batch)
    nodes_shard_major = [
        (shard, index) for shard, stream in enumerate(streams) for index in range(len(stream))
    ]
    permutation = [streaming._node_position[node] for node in nodes_shard_major]
    live_matrix = streaming._matrix[np.ix_(permutation, permutation)]
    assert np.array_equal(offline_matrix, live_matrix, equal_nan=True)


def test_streaming_parity_through_the_cyclic_fallback():
    # adversarial within-shard order forces a cycle (the fast Kahn path
    # bails to the materialised-graph reference); parity must survive it
    model = PrecedenceModel()
    for client in ("a", "b"):
        model.register_client(client, GaussianDistribution(0.0, 0.5))
    shard0 = [
        SequencedBatch(rank=0, messages=(TimestampedMessage(client_id="a", timestamp=10.0),)),
        SequencedBatch(rank=1, messages=(TimestampedMessage(client_id="a", timestamp=0.0),)),
    ]
    shard1 = [SequencedBatch(rank=0, messages=(TimestampedMessage(client_id="b", timestamp=5.0),))]
    streams = [shard0, shard1]
    oracle = CrossShardMerger(model, seed=7).merge(streams)
    assert oracle.cycles_broken >= 1
    streaming = CrossShardMerger(model, seed=7).streaming_merger(num_shards=2)
    for shard, batch in [(1, shard1[0]), (0, shard0[0]), (0, shard0[1])]:
        streaming.observe_batch(shard, batch)
    assert fingerprint(streaming.result()) == fingerprint(oracle)
    assert streaming.result().cycles_broken == oracle.cycles_broken


@pytest.mark.parametrize("seed", [11, 12])
def test_merge_invariant_under_shard_index_permutation(seed):
    # permuting shard indices relabels the nodes; with distinct, separable
    # timestamps the deterministic tie-break never engages and the merged
    # message order is invariant
    rng = np.random.default_rng(seed)
    model, shard_clients = build_model(3, 2, rng)
    streams = build_streams(shard_clients, 4, rng, gap=0.2, spread=0.1)

    def merged_keys(shard_streams):
        outcome = CrossShardMerger(model, seed=0).merge(shard_streams)
        return [tuple(m.key for m in batch.messages) for batch in outcome.result.batches]

    baseline_keys = merged_keys(streams)
    for permutation in ([1, 2, 0], [2, 1, 0], [0, 2, 1]):
        permuted = [streams[shard] for shard in permutation]
        assert merged_keys(permuted) == baseline_keys


def test_streaming_refresh_client_reprices_pairs():
    rng = np.random.default_rng(5)
    model, shard_clients = build_model(2, 1, rng)
    streams = build_streams(shard_clients, 3, rng)
    streaming = CrossShardMerger(model, seed=0).streaming_merger(num_shards=2)
    for shard, batch in random_interleaving(streams, rng):
        streaming.observe_batch(shard, batch)
    # refresh one client mid-stream: a much wider clock error makes formerly
    # confident cross-shard pairs uncertain
    refreshed = "s0-c0"
    model.register_client(refreshed, GaussianDistribution(0.0, 5.0))
    repriced = streaming.refresh_client(refreshed)
    assert repriced > 0
    oracle = CrossShardMerger(model, seed=0).merge(streams)
    live = streaming.result()
    assert fingerprint(live) == fingerprint(oracle)
    # repricing replaces a pair's evaluated/pruned classification instead of
    # double-counting it, so the accounting matches the oracle too
    assert live.cross_pairs_pruned == oracle.cross_pairs_pruned
    assert live.cross_pairs_evaluated == oracle.cross_pairs_evaluated
    assert live.result.metadata == {
        **oracle.result.metadata,
        "merge_wall_seconds": live.result.metadata["merge_wall_seconds"],
    }


def test_cluster_live_merge_matches_offline_merge():
    rng = np.random.default_rng(9)
    distributions = {
        f"client-{i}": GaussianDistribution(float(rng.normal(0, 0.002)), float(rng.uniform(0.004, 0.01)))
        for i in range(8)
    }
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        config=TommyConfig(completeness_mode="none", p_safe=0.9),
    )
    clients = sorted(distributions)
    t = 0.0
    for k in range(60):
        t += float(rng.exponential(0.01))
        client = clients[int(rng.integers(len(clients)))]
        message = TimestampedMessage(client_id=client, timestamp=t, true_time=t)
        loop.schedule_at(t, cluster.receive, message)
    loop.run()
    cluster.flush()
    live = cluster.live_merge()
    offline = cluster.merge()
    assert fingerprint(live) == fingerprint(offline)
    assert live.result.metadata["shards"] == cluster.num_shards


def test_cluster_streaming_can_be_disabled():
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        {"a": GaussianDistribution(0.0, 0.01)},
        num_shards=1,
        streaming_merge=False,
    )
    assert cluster.streaming_merger is None
    with pytest.raises(ValueError, match="streaming merge is disabled"):
        cluster.live_merge()


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_refresh_pruning_is_bitwise_identical_to_full_repricing(seed):
    # window pruning must only skip pairs whose stored entry cannot move: a
    # pruned refresh and a full refresh end in bitwise-identical state, and
    # both equal a fresh offline merge over the refreshed model
    states = {}
    for full in (False, True):
        model, shard_clients = build_model(3, 2, np.random.default_rng(seed))
        # time-localised long streams: most history prunes against a refresh
        streams = build_streams(shard_clients, 24, np.random.default_rng(seed + 100), gap=0.05)
        streaming = CrossShardMerger(model, seed=seed).streaming_merger(num_shards=3)
        for shard, batch in random_interleaving(streams, np.random.default_rng(seed + 200)):
            streaming.observe_batch(shard, batch)
        refreshed = "s0-c0"
        model.register_client(refreshed, GaussianDistribution(0.001, 0.005))
        repriced = streaming.refresh_client(refreshed, full=full)
        count = streaming.node_count
        states[full] = (
            fingerprint(streaming.result()),
            streaming._matrix[:count, :count].copy(),
            streaming._pruned_pair[:count, :count].copy(),
            streaming.cross_pairs_evaluated,
            streaming.cross_pairs_pruned,
            repriced,
            streaming.refresh_pairs_skipped,
            model,
            streams,
        )
    pruned_state, full_state = states[False], states[True]
    assert pruned_state[0] == full_state[0]
    assert np.array_equal(pruned_state[1], full_state[1], equal_nan=True)
    assert np.array_equal(pruned_state[2], full_state[2])
    assert pruned_state[3] == full_state[3] and pruned_state[4] == full_state[4]
    # the pruned refresh did strictly less work and counted the skips
    assert pruned_state[5] < full_state[5]
    assert pruned_state[6] > 0 and full_state[6] == 0
    assert pruned_state[5] + pruned_state[6] == full_state[5]
    # both equal the offline oracle over the refreshed model
    oracle = CrossShardMerger(pruned_state[7], seed=seed).merge(pruned_state[8])
    assert pruned_state[0] == fingerprint(oracle)


def test_refresh_pruning_tracks_window_status_flips():
    # a refresh that *changes* a pair's overlap status (certain -> uncertain)
    # must reprice it even though it was pruned before
    rng = np.random.default_rng(2)
    model, shard_clients = build_model(2, 1, rng)
    streams = build_streams(shard_clients, 6, rng, gap=1.0, spread=0.1)  # far apart: all pruned
    streaming = CrossShardMerger(model, seed=2).streaming_merger(num_shards=2)
    for shard, batch in random_interleaving(streams, rng):
        streaming.observe_batch(shard, batch)
    assert streaming.cross_pairs_pruned > 0
    before_pruned = streaming.cross_pairs_pruned
    # a huge clock error makes every window overlap: nothing may stay pruned
    model.register_client("s0-c0", GaussianDistribution(0.0, 50.0))
    repriced = streaming.refresh_client("s0-c0")
    assert repriced > 0
    assert streaming.cross_pairs_pruned < before_pruned
    oracle = CrossShardMerger(model, seed=2).merge(streams)
    assert fingerprint(streaming.result()) == fingerprint(oracle)
    assert streaming.result().cross_pairs_pruned == oracle.cross_pairs_pruned
