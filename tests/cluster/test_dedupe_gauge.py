"""Exactly-once intake gate: bounded seen keys via delivery-horizon pruning.

Since PR 9 the dedupe set is no longer remember-forever: on ordered (FIFO
per-client) channels, admitting sequence ``s`` from a client proves every
earlier send — originals *and* duplicate copies — was already delivered, so
keys strictly below that horizon are released and later re-deliveries in the
pruned region are rejected by the horizon comparison alone.  The gauge and
``observability_report()`` now expose both the live set size and the pruned
count; the ``dedupe_growth_warning`` only trips when pruning is disabled or
ineffective (all-zero sequence numbers degrade to the historical
remember-forever behaviour).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry
from repro.simulation.event_loop import EventLoop


def _cluster(telemetry=None, dedupe=True, prune=True):
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    return ShardedSequencer(
        EventLoop(),
        distributions,
        num_shards=2,
        config=TommyConfig(seed=3),
        dedupe_intake=dedupe,
        dedupe_prune_horizon=prune,
        telemetry=telemetry,
    )


def _message(client, sequence, t):
    return TimestampedMessage(
        client_id=client, timestamp=t, true_time=t, sequence_number=sequence
    )


def test_seen_key_gauge_stays_bounded_under_pruning():
    telemetry = Telemetry()
    cluster = _cluster(telemetry)
    messages = [_message("c0", i + 1, 0.001 * i) for i in range(5)]
    for message in messages:
        cluster.receive(message)
    # each admission raises the horizon and releases the strictly older keys
    gauge = telemetry.registry.gauge("cluster.dedupe_seen_keys")
    assert gauge.value == 1.0
    assert cluster.dedupe_keys_pruned == 4
    # a retransmission below the horizon is rejected without set memory
    cluster.receive(messages[2])
    assert cluster.duplicates_suppressed == 1
    # ... and one at the horizon is rejected by the retained entry
    cluster.receive(messages[4])
    assert cluster.duplicates_suppressed == 2
    assert gauge.value == 1.0


def test_seen_key_gauge_tracks_set_size_without_pruning():
    telemetry = Telemetry()
    cluster = _cluster(telemetry, prune=False)
    messages = [_message("c0", i, 0.001 * i) for i in range(5)]
    for message in messages:
        cluster.receive(message)
    cluster.receive(messages[2])
    gauge = telemetry.registry.gauge("cluster.dedupe_seen_keys")
    assert gauge.value == 5.0
    assert cluster.duplicates_suppressed == 1
    assert cluster.dedupe_keys_pruned == 0


def test_zero_sequence_numbers_degrade_to_remember_forever():
    # default-constructed messages carry sequence_number=0: no horizon can
    # advance, so the gate keeps every key (the pre-PR 9 behaviour)
    cluster = _cluster()
    messages = [_message("c1", 0, 0.001 * i) for i in range(4)]
    for message in messages:
        cluster.receive(message)
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 4
    assert report["dedupe_keys_pruned"] == 0
    cluster.receive(messages[1])
    assert cluster.duplicates_suppressed == 1


def test_heartbeat_sequence_advances_horizon():
    cluster = _cluster()
    messages = [_message("c2", i + 1, 0.001 * i) for i in range(3)]
    for message in messages:
        cluster.receive(message)
    # the transport shares one per-client counter between messages and
    # heartbeats, so a quiet client's heartbeats keep pruning its tail
    cluster.receive(Heartbeat(client_id="c2", timestamp=1.0, sequence_number=9))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 0
    assert report["dedupe_keys_pruned"] == 3
    for message in messages:
        cluster.receive(message)
    assert cluster.duplicates_suppressed == 3


def test_report_exposes_set_size_and_quiet_warning():
    cluster = _cluster()
    for i in range(3):
        cluster.receive(_message("c1", i + 1, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 1
    assert report["dedupe_keys_pruned"] == 2
    assert report["dedupe_growth_warning"] is False


def test_warning_trips_past_threshold_when_pruning_disabled():
    cluster = _cluster(prune=False)
    cluster.DEDUPE_WARN_THRESHOLD = 2  # instance override keeps the test fast
    for i in range(4):
        cluster.receive(_message("c2", i + 1, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 4
    assert report["dedupe_growth_warning"] is True


def test_no_warning_when_dedupe_disabled():
    cluster = _cluster(dedupe=False)
    cluster.DEDUPE_WARN_THRESHOLD = 0
    for i in range(3):
        cluster.receive(_message("c3", i, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 0
    assert report["dedupe_growth_warning"] is False


@settings(max_examples=60, deadline=None)
@given(
    counts=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=4),
    data=st.data(),
)
def test_duplicates_past_the_horizon_are_always_rejected(counts, data):
    """Property: after FIFO delivery of each client's originals, *any*
    re-delivery — at or below the client's horizon — is suppressed, while the
    retained state is one key per client rather than one per message."""
    cluster = _cluster()
    clients = [f"c{i}" for i in range(len(counts))]
    originals = {
        client: [_message(client, seq + 1, 0.001 * seq) for seq in range(count)]
        for client, count in zip(clients, counts)
    }
    for client in clients:
        for message in originals[client]:
            cluster.receive(message)
    duplicates = 0
    for client, count in zip(clients, counts):
        for seq in data.draw(
            st.lists(st.integers(min_value=0, max_value=count - 1), max_size=10)
        ):
            cluster.receive(originals[client][seq])
            duplicates += 1
    assert cluster.duplicates_suppressed == duplicates
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == len(counts)
    assert report["dedupe_keys_pruned"] == sum(counts) - len(counts)


def test_long_duplication_chaos_run_stays_bounded():
    """A long FIFO stream with a duplication fault on every other message:
    admission stays exactly-once while the seen-key set is pruned far below
    the (instance-overridden) growth threshold."""
    telemetry = Telemetry()
    cluster = _cluster(telemetry)
    cluster.DEDUPE_WARN_THRESHOLD = 50
    clients = [f"c{i}" for i in range(4)]
    per_client = 500
    delivered = 0
    duplicated = 0
    window: dict = {client: [] for client in clients}
    for seq in range(1, per_client + 1):
        for index, client in enumerate(clients):
            message = _message(client, seq, 0.001 * (seq * 4 + index))
            cluster.receive(message)
            delivered += 1
            # the fault layer re-delivers a copy while FIFO still allows it:
            # at or after the original, before the client's next original
            window[client].append(message)
            if seq % 2 == 0:
                cluster.receive(window[client][-1])
                duplicated += 1
            if len(window[client]) > 2:
                window[client].pop(0)
    report = cluster.observability_report()["cluster"]
    admitted = report["dedupe_seen_keys"] + report["dedupe_keys_pruned"]
    assert admitted == delivered
    assert cluster.duplicates_suppressed == duplicated
    assert report["dedupe_seen_keys"] <= len(clients)
    assert report["dedupe_seen_keys"] < cluster.DEDUPE_WARN_THRESHOLD
    assert report["dedupe_growth_warning"] is False
