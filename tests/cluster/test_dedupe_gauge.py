"""Exactly-once intake gate: seen-key growth gauge and report warning.

The dedupe set is unbounded by design (a key must be remembered forever to
stay exactly-once); what the operator gets instead of eviction is
visibility — a live ``cluster.dedupe_seen_keys`` gauge and a
``dedupe_growth_warning`` flag in ``observability_report()`` once the set
passes :attr:`ShardedSequencer.DEDUPE_WARN_THRESHOLD`.
"""

from __future__ import annotations

from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.obs.telemetry import Telemetry
from repro.simulation.event_loop import EventLoop


def _cluster(telemetry=None, dedupe=True):
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    return ShardedSequencer(
        EventLoop(),
        distributions,
        num_shards=2,
        config=TommyConfig(seed=3),
        dedupe_intake=dedupe,
        telemetry=telemetry,
    )


def _message(client, sequence, t):
    return TimestampedMessage(
        client_id=client, timestamp=t, true_time=t, sequence_number=sequence
    )


def test_seen_key_gauge_tracks_set_size():
    telemetry = Telemetry()
    cluster = _cluster(telemetry)
    messages = [_message("c0", i, 0.001 * i) for i in range(5)]
    for message in messages:
        cluster.receive(message)
    # a retransmission (same message key) must not move the gauge
    cluster.receive(messages[2])
    gauge = telemetry.registry.gauge("cluster.dedupe_seen_keys")
    assert gauge.value == 5.0
    assert cluster.duplicates_suppressed == 1


def test_report_exposes_set_size_and_quiet_warning():
    cluster = _cluster()
    for i in range(3):
        cluster.receive(_message("c1", i, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 3
    assert report["dedupe_growth_warning"] is False


def test_warning_trips_past_threshold():
    cluster = _cluster()
    cluster.DEDUPE_WARN_THRESHOLD = 2  # instance override keeps the test fast
    for i in range(4):
        cluster.receive(_message("c2", i, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 4
    assert report["dedupe_growth_warning"] is True


def test_no_warning_when_dedupe_disabled():
    cluster = _cluster(dedupe=False)
    cluster.DEDUPE_WARN_THRESHOLD = 0
    for i in range(3):
        cluster.receive(_message("c3", i, 0.001 * i))
    report = cluster.observability_report()["cluster"]
    assert report["dedupe_seen_keys"] == 0
    assert report["dedupe_growth_warning"] is False
