"""Failover under live streaming merge, driven through the chaos hooks.

The contract: killing a shard mid-stream (heartbeat detection, client
drain, pending replay onto survivors — and optionally a rejoin with a
fresh sequencer) must leave every delivered message in the merged
cluster-wide order exactly once, with the incrementally maintained
streaming merge byte-identical to the offline ``merge()`` re-merge.
"""

import numpy as np
import pytest

from repro.chaos import ChaosController, FaultSchedule, ShardCrash
from repro.clocks.local import LocalClock
from repro.cluster import ClusterTransport, LoadAwareSharding, ShardedSequencer
from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource


def fingerprint(outcome):
    return [
        (batch.rank, tuple(message.key for message in batch.messages))
        for batch in outcome.result.batches
    ]


def build_live_cluster(schedule, num_clients=10, num_shards=2, seed=23, max_delay=10.0):
    """A live transport-driven cluster with the chaos schedule armed.

    ``max_delay`` large keeps arrivals pending (safe-emission waits), so a
    crash finds undrained messages to replay.
    """
    loop = EventLoop()
    source = RandomSource(seed)
    rng = source.stream("workload")
    distributions = {
        f"c{i:02d}": GaussianDistribution(0.0, float(rng.uniform(0.002, 0.01)))
        for i in range(num_clients)
    }
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=num_shards,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=max_delay),
        heartbeat_interval=0.05,
        heartbeat_timeout=0.12,
        streaming_merge=True,
        dedupe_intake=True,
    )
    transport = ClusterTransport(loop, cluster, source.stream)
    for client_id, distribution in distributions.items():
        transport.add_client(
            client_id, LocalClock(loop, distribution, source.stream(f"clock:{client_id}"))
        )
    controller = ChaosController(loop, schedule, seed=seed)
    transport.install_chaos(controller)
    controller.arm()
    return loop, cluster, transport, controller


def send_stream(loop, transport, gap=0.02, per_client=4):
    endpoints = transport.clients()
    for position, client_id in enumerate(sorted(endpoints)):
        for index in range(per_client):
            when = position * gap / len(endpoints) + index * gap
            loop.schedule_at(when, endpoints[client_id].send, None)
    return endpoints


def all_sent(endpoints):
    return [
        message
        for client_id in sorted(endpoints)
        for message in endpoints[client_id].sent_messages
    ]


def test_shard_killed_midstream_replays_exactly_once_with_streaming_parity():
    schedule = FaultSchedule([ShardCrash(start=0.04, shard=0)])
    loop, cluster, transport, controller = build_live_cluster(schedule)
    endpoints = send_stream(loop, transport)
    loop.run(until=2.0)
    cluster.flush()

    assert controller.stats.shard_crashes == 1
    assert len(cluster.failover_events) == 1
    event = cluster.failover_events[0]
    assert event.messages_replayed > 0  # the crash caught undrained messages

    offline = cluster.merge()
    live = cluster.live_merge()
    assert fingerprint(live) == fingerprint(offline)

    sent = all_sent(endpoints)
    merged_keys = [
        message.key for batch in offline.result.batches for message in batch.messages
    ]
    # exactly once: nothing lost, nothing double-sequenced through the replay
    assert sorted(merged_keys) == sorted(message.key for message in sent)
    assert len(merged_keys) == len(set(merged_keys))


def test_crash_then_rejoin_keeps_history_and_parity():
    # crash after the shard has emitted (history to retire), rejoin after
    # heartbeat detection (~crash + timeout + monitor period), with traffic
    # continuing past the rejoin so the fresh incarnation emits too
    schedule = FaultSchedule([ShardCrash(start=0.12, shard=1, rejoin_after=0.3)])
    loop, cluster, transport, controller = build_live_cluster(schedule, max_delay=0.05)
    endpoints = send_stream(loop, transport, gap=0.06, per_client=10)
    loop.run(until=3.0)
    cluster.flush()

    assert controller.stats.shard_crashes == 1
    assert controller.stats.shard_rejoins == 1
    assert len(cluster.rejoin_events) == 1
    rejoined = cluster.shards[1]
    assert rejoined.alive and not rejoined.crashed
    assert rejoined.generation == 1
    # pre-crash emissions were retired into the shard's history and the
    # fresh incarnation emitted on top of them
    assert rejoined.retired, "pre-crash emissions must be retired, not lost"
    assert len(cluster.shard_batches()[1]) > len(rejoined.retired)

    offline = cluster.merge()
    live = cluster.live_merge()
    assert fingerprint(live) == fingerprint(offline)

    sent = all_sent(endpoints)
    merged_keys = [
        message.key for batch in offline.result.batches for message in batch.messages
    ]
    assert sorted(merged_keys) == sorted(message.key for message in sent)
    assert len(merged_keys) == len(set(merged_keys))


def test_rejoined_shard_accepts_reclaimed_client_traffic():
    loop = EventLoop()
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="none"),
        streaming_merge=True,
    )
    victims = cluster.router.clients_of(0)
    cluster.force_failover(0)
    event = cluster.rejoin_shard(0, clients=victims)
    assert event.clients_reclaimed == len(victims)
    assert cluster.router.clients_of(0) == sorted(victims)
    message = TimestampedMessage(client_id=victims[0], timestamp=0.1, true_time=0.1)
    cluster.receive(message, arrival_time=0.1)
    assert [m.key for m in cluster.sequencer_of(0).pending_messages] == [message.key]
    cluster.flush()
    assert fingerprint(cluster.live_merge()) == fingerprint(cluster.merge())


def test_rejoin_requires_a_crashed_shard():
    loop = EventLoop()
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    cluster = ShardedSequencer(loop, distributions, num_shards=2)
    with pytest.raises(ValueError):
        cluster.rejoin_shard(0)


def test_dedupe_intake_suppresses_duplicates_but_not_replay():
    loop = EventLoop()
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=10.0),
        dedupe_intake=True,
    )
    message = TimestampedMessage(client_id="c0", timestamp=0.01, true_time=0.01)
    cluster.receive(message, arrival_time=0.01)
    cluster.receive(message, arrival_time=0.02)  # duplicated delivery
    assert cluster.duplicates_suppressed == 1
    owner = cluster.router.shard_of("c0")
    assert len(cluster.sequencer_of(owner).pending_messages) == 1
    # failover replay re-routes the same (already seen) message without loss
    cluster.force_failover(owner)
    assert cluster.failover_events[0].messages_replayed == 1
    survivor = 1 - owner
    assert [m.key for m in cluster.sequencer_of(survivor).pending_messages] == [message.key]
    assert cluster.duplicates_suppressed == 1


def test_stale_channel_to_rejoined_shard_reroutes_non_reclaimed_clients():
    # a shard rejoins WITHOUT reclaiming its old clients; deliveries still
    # addressed to it (stale channels target their original shard forever)
    # must reroute to the clients' current owners instead of crashing the
    # fresh sequencer with an unknown client
    loop = EventLoop()
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=10.0),
        streaming_merge=True,
    )
    victims = cluster.router.clients_of(1)
    cluster.force_failover(1)
    cluster.rejoin_shard(1)  # nobody reclaimed
    message = TimestampedMessage(client_id=victims[0], timestamp=0.1, true_time=0.1)
    cluster.receive_at(1, message, arrival_time=0.1)
    owner = cluster.router.shard_of(victims[0])
    assert owner == 0
    assert [m.key for m in cluster.sequencer_of(0).pending_messages] == [message.key]
    assert cluster.sequencer_of(1).pending_messages == []
    # burst path takes the same reroute
    second = TimestampedMessage(client_id=victims[0], timestamp=0.2, true_time=0.2)
    cluster.receive_many_at(1, [second], arrival_time=0.2)
    assert [m.key for m in cluster.sequencer_of(0).pending_messages] == [
        message.key,
        second.key,
    ]
    cluster.flush()
    assert fingerprint(cluster.live_merge()) == fingerprint(cluster.merge())


def test_rejoin_does_not_double_arm_the_heartbeat_loop():
    # a pre-crash heartbeat tick still pending at rejoin time must die with
    # its generation instead of running a second permanent timer loop
    loop = EventLoop()
    distributions = {f"c{i}": GaussianDistribution(0.0, 0.001) for i in range(4)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="none"),
        heartbeat_interval=0.05,
        heartbeat_timeout=0.12,
    )
    loop.run(until=0.2)
    cluster.force_failover(1)
    cluster.rejoin_shard(1)  # immediate rejoin: the old tick is still queued
    executed_before = loop.stats()["executed"]
    loop.run(until=2.2)
    # both shards tick at the same rate: one heartbeat + tick pair per shard
    # per interval plus the monitor (~3 events per interval, 40 intervals)
    executed = loop.stats()["executed"] - executed_before
    assert executed <= 3 * 40 + 10, f"{executed} events: duplicated heartbeat loop"
