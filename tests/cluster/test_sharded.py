"""Properties of the sharded cluster: equivalence, determinism, routing."""

import pytest

from repro.cluster import (
    ClusterTransport,
    HashSharding,
    LoadAwareSharding,
    ShardedSequencer,
    replay_scenario,
)
from repro.clocks.local import LocalClock
from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import UniformJitterDelay
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


def seeded_scenario(num_clients=18, seed=5, gap=5.0, sigma=8.0, per_client=2):
    return build_scenario(
        ScenarioConfig(
            num_clients=num_clients,
            arrivals=UniformGapArrivals(messages_per_client=per_client, gap=gap, jitter_fraction=0.2),
            default_sigma=sigma,
            seed=seed,
        )
    )


def fingerprint(result):
    return [(batch.rank, tuple(message.key for message in batch.messages)) for batch in result.batches]


def run_cluster(scenario, num_shards, config=None, policy=None):
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        scenario.client_distributions,
        num_shards=num_shards,
        config=config if config is not None else TommyConfig(),
        policy=policy,
    )
    replay_scenario(loop, cluster, scenario)
    loop.run()
    cluster.flush()
    return cluster


# ------------------------------------------------------------------ properties
def test_one_shard_cluster_is_byte_identical_to_single_sequencer():
    """A 1-shard cluster must reproduce the single sequencer's order exactly."""
    scenario = seeded_scenario()

    loop = EventLoop()
    single = OnlineTommySequencer(loop, scenario.client_distributions, config=TommyConfig())
    replay_scenario(loop, single, scenario)
    loop.run()
    single.flush()

    cluster = run_cluster(scenario, num_shards=1)
    assert fingerprint(cluster.result()) == fingerprint(single.result())


def test_n_shard_cluster_is_deterministic_under_fixed_seed():
    """Two identical N-shard runs must produce the same merged order."""
    scenario = seeded_scenario(num_clients=24, seed=9)
    first = run_cluster(scenario, num_shards=4)
    second = run_cluster(scenario, num_shards=4)
    assert fingerprint(first.result()) == fingerprint(second.result())


def test_merged_order_contains_every_message_exactly_once():
    scenario = seeded_scenario(num_clients=20, seed=3)
    cluster = run_cluster(scenario, num_shards=3)
    result = cluster.result()
    merged_keys = sorted(message.key for batch in result.batches for message in batch.messages)
    assert merged_keys == sorted(message.key for message in scenario.messages)


def test_shards_only_sequence_their_own_clients():
    scenario = seeded_scenario(num_clients=12, seed=7)
    cluster = run_cluster(scenario, num_shards=3, policy=LoadAwareSharding())
    for shard in cluster.shards:
        owned = set(cluster.router.clients_of(shard.index))
        emitted_clients = {
            message.client_id
            for emitted in shard.sequencer.emitted_batches
            for message in emitted.batch.messages
        }
        assert emitted_clients <= owned


def test_receive_routes_by_router_assignment(loop):
    distributions = {f"c{i}": GaussianDistribution(0.0, 1.0) for i in range(6)}
    from repro.network.message import TimestampedMessage

    cluster = ShardedSequencer(loop, distributions, num_shards=2, policy=LoadAwareSharding())
    message = TimestampedMessage(client_id="c0", timestamp=1.0, true_time=1.0)
    cluster.receive(message, arrival_time=0.0)
    owner = cluster.router.shard_of("c0")
    assert [m.key for m in cluster.sequencer_of(owner).pending_messages] == [message.key]
    assert cluster.sequencer_of(1 - owner).pending_messages == []


def test_register_client_after_construction(loop):
    cluster = ShardedSequencer(
        loop, {"a": GaussianDistribution(0.0, 1.0)}, num_shards=2, policy=LoadAwareSharding()
    )
    cluster.register_client("b", GaussianDistribution(0.0, 2.0))
    shard = cluster.router.shard_of("b")
    assert cluster.sequencer_of(shard).model.has_client("b")
    assert cluster.merger.model.has_client("b")


def test_router_shard_count_mismatch_rejected(loop):
    from repro.cluster.router import ShardRouter

    with pytest.raises(ValueError):
        ShardedSequencer(
            loop,
            {"a": GaussianDistribution(0.0, 1.0)},
            num_shards=2,
            router=ShardRouter(3),
        )


# ----------------------------------------------------------- transport fan-in
def test_cluster_transport_wires_each_shard_endpoint():
    loop = EventLoop()
    source = RandomSource(17)
    distributions = {f"c{i:02d}": GaussianDistribution(0.0, 0.001) for i in range(6)}
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=2,
        policy=LoadAwareSharding(),
        config=TommyConfig(completeness_mode="bounded_delay", max_network_delay=0.01),
    )
    net = ClusterTransport(loop, cluster, source.stream)
    endpoints = {}
    for client_id, distribution in distributions.items():
        clock = LocalClock(loop, distribution, source.stream(f"clock:{client_id}"))
        endpoints[client_id] = net.add_client(
            client_id, clock, delay_model=UniformJitterDelay(0.001, 0.0005)
        )
    for index, endpoint in enumerate(endpoints.values()):
        loop.schedule_at(0.01 + 0.001 * index, endpoint.send, {"n": index})
    loop.run(until=1.0)
    cluster.flush()

    # every shard transport only carried its own clients
    for shard_index in range(2):
        owned = set(cluster.router.clients_of(shard_index))
        transport_clients = set(net.transport_of(shard_index).clients)
        assert transport_clients == owned

    result = cluster.result()
    assert result.message_count == len(distributions)
    assert set(net.clients()) == set(distributions)
