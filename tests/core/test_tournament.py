"""Tests for tournament construction and linear-order extraction."""

import pytest

from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore
from repro.core.tournament import TournamentGraph
from repro.distributions.parametric import GaussianDistribution
from tests.conftest import make_message


def relation_from_matrix(matrix, clients=None):
    n = len(matrix)
    clients = clients or [f"c{k}" for k in range(n)]
    messages = [make_message(clients[k], float(k)) for k in range(n)]
    return LikelyHappenedBefore.from_matrix(messages, matrix), messages


def test_tournament_keeps_one_edge_per_pair():
    relation, _ = relation_from_matrix(
        [
            [0.0, 0.85, 0.65],
            [0.15, 0.0, 0.72],
            [0.35, 0.28, 0.0],
        ]
    )
    tournament = TournamentGraph.from_relation(relation)
    assert tournament.node_count == 3
    assert tournament.edge_count == 3
    assert tournament.tie_count == 0


def test_kept_edges_have_the_higher_probability():
    relation, messages = relation_from_matrix([[0.0, 0.2], [0.8, 0.0]])
    tournament = TournamentGraph.from_relation(relation)
    assert tournament.graph.has_edge(messages[1].key, messages[0].key)
    assert not tournament.graph.has_edge(messages[0].key, messages[1].key)
    assert tournament.probability(messages[1].key, messages[0].key) == pytest.approx(0.8)


def test_transitive_tournament_detected_and_topologically_ordered():
    relation, messages = relation_from_matrix(
        [
            [0.0, 0.85, 0.65, 0.92],
            [0.15, 0.0, 0.72, 0.68],
            [0.35, 0.28, 0.0, 0.80],
            [0.08, 0.32, 0.20, 0.0],
        ]
    )
    tournament = TournamentGraph.from_relation(relation)
    assert tournament.is_acyclic()
    assert tournament.is_transitive_tournament()
    order = tournament.topological_order()
    assert order == [messages[0].key, messages[1].key, messages[2].key, messages[3].key]
    assert tournament.hamiltonian_order() == order
    assert tournament.cycles() == []


def test_cyclic_relation_detected():
    relation, _ = relation_from_matrix(
        [
            [0.0, 0.9, 0.1],
            [0.1, 0.0, 0.9],
            [0.9, 0.1, 0.0],
        ]
    )
    tournament = TournamentGraph.from_relation(relation)
    assert not tournament.is_acyclic()
    assert not tournament.is_transitive_tournament()
    assert len(tournament.cycles()) >= 1
    with pytest.raises(ValueError):
        tournament.topological_order()


def test_tie_counting_and_deterministic_orientation():
    relation, messages = relation_from_matrix([[0.0, 0.5], [0.5, 0.0]])
    tournament = TournamentGraph.from_relation(relation, tie_epsilon=0.01)
    assert tournament.tie_count == 1
    assert tournament.edge_count == 1
    source, target = list(tournament.graph.edges)[0]
    assert source <= target  # deterministic orientation by key


def test_adjacent_probabilities_follow_relation():
    relation, messages = relation_from_matrix(
        [
            [0.0, 0.85, 0.65],
            [0.15, 0.0, 0.72],
            [0.35, 0.28, 0.0],
        ]
    )
    tournament = TournamentGraph.from_relation(relation)
    order = tournament.topological_order()
    assert tournament.adjacent_probabilities(order) == [0.85, 0.72]


def test_topological_order_from_model_sorts_by_effective_timestamp():
    model = PrecedenceModel()
    for client in ("a", "b", "c"):
        model.register_client(client, GaussianDistribution(0.0, 1.0))
    messages = [make_message("a", 5.0), make_message("b", 1.0), make_message("c", 3.0)]
    relation = LikelyHappenedBefore.from_model(messages, model)
    tournament = TournamentGraph.from_relation(relation)
    order = tournament.topological_order()
    assert order == [messages[1].key, messages[2].key, messages[0].key]


def test_edges_view_returns_pair_probabilities():
    relation, _ = relation_from_matrix([[0.0, 0.7], [0.3, 0.0]])
    tournament = TournamentGraph.from_relation(relation)
    edges = tournament.edges()
    assert len(edges) == 1
    assert edges[0].probability == pytest.approx(0.7)
