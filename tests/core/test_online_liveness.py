"""Liveness-guard tests for online sequencing (paper §3.5 liveness caveat).

The heartbeat completeness rule "may cost liveness: a failed client may halt
the sequencer from emitting any messages".  ``TommyConfig.max_batch_age``
bounds how long a batch can stay open before it is force-emitted.
"""

import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.simulation.event_loop import EventLoop
from tests.conftest import make_message


def build(loop, max_batch_age=None, completeness="heartbeat", p_safe=0.9):
    distributions = {
        "alive": GaussianDistribution(0.0, 0.1),
        "failed": GaussianDistribution(0.0, 0.1),
    }
    config = TommyConfig(
        completeness_mode=completeness, p_safe=p_safe, max_batch_age=max_batch_age
    )
    return OnlineTommySequencer(loop, distributions, config)


def test_failed_client_blocks_forever_without_the_guard():
    loop = EventLoop()
    sequencer = build(loop, max_batch_age=None)
    sequencer.receive(make_message("alive", 0.0), arrival_time=0.0)
    loop.run(until=1000.0)
    assert sequencer.emitted_batches == []
    assert sequencer.forced_emissions == 0


def test_max_batch_age_restores_liveness_despite_failed_client():
    loop = EventLoop()
    sequencer = build(loop, max_batch_age=30.0)
    sequencer.receive(make_message("alive", 0.0), arrival_time=0.0)
    loop.run(until=1000.0)
    assert len(sequencer.emitted_batches) == 1
    assert sequencer.forced_emissions == 1
    emitted = sequencer.emitted_batches[0]
    assert 30.0 <= emitted.emitted_at <= 40.0
    assert sequencer.result().metadata["forced_emissions"] == 1


def test_guard_does_not_fire_when_normal_emission_happens_first():
    loop = EventLoop()
    sequencer = build(loop, max_batch_age=100.0, completeness="none")
    sequencer.receive(make_message("alive", 0.0), arrival_time=0.0)
    loop.run(until=500.0)
    assert len(sequencer.emitted_batches) == 1
    assert sequencer.forced_emissions == 0


def test_guard_also_bounds_safe_emission_waits():
    """An extremely noisy clock implies a very late T_b; the guard caps the wait."""
    loop = EventLoop()
    distributions = {"noisy": GaussianDistribution(0.0, 1000.0)}
    config = TommyConfig(completeness_mode="none", p_safe=0.999, max_batch_age=10.0)
    sequencer = OnlineTommySequencer(loop, distributions, config)
    message = make_message("noisy", 0.0)
    sequencer.receive(message, arrival_time=0.0)
    # unguarded safe-emission time would be thousands of seconds away
    assert sequencer.model.safe_emission_time(message, 0.999) > 1000.0
    loop.run(until=100.0)
    assert len(sequencer.emitted_batches) == 1
    assert sequencer.emitted_batches[0].emitted_at <= 20.0
    assert sequencer.forced_emissions == 1


def test_guard_fires_despite_float_asymmetry_of_the_age_check():
    """Regression: the guard compared ``now - oldest >= max_age`` while the
    next check was scheduled at ``oldest + max_age``.  The two float
    expressions can disagree (here ``now - oldest`` rounds to
    1.9999999999999991 although ``oldest + 2.0 == now`` exactly), which left
    the sequencer re-running the emission check at the same simulated
    instant forever — a livelock.  The guard now uses the deadline form.
    """
    arrival = 6.459721981904619  # (arrival + 2.0) - arrival rounds below 2.0
    max_age = 2.0
    assert (arrival + max_age) - arrival < max_age  # the asymmetry under test
    loop = EventLoop()
    sequencer = build(loop, max_batch_age=max_age, p_safe=0.999)
    loop.schedule_at(arrival, sequencer.receive, make_message("alive", arrival + 1000.0))
    # cap the event count: pre-fix the spin made this loop run forever
    loop.run(until=arrival + 10.0, max_events=500)
    assert sequencer.forced_emissions == 1
    assert len(sequencer.emitted_batches) == 1
    assert sequencer.emitted_batches[0].emitted_at == pytest.approx(arrival + max_age)


def test_invalid_max_batch_age_rejected():
    with pytest.raises(ValueError):
        TommyConfig(max_batch_age=0.0)
    with pytest.raises(ValueError):
        TommyConfig(max_batch_age=-5.0)


def test_replace_preserves_max_batch_age():
    config = TommyConfig(max_batch_age=12.0)
    assert config.with_threshold(0.8).max_batch_age == 12.0
    assert config.with_p_safe(0.99).max_batch_age == 12.0
