"""Tests for the preceding-probability model (paper §3.2, §3.3)."""

import numpy as np
import pytest
from scipy import stats

from repro.core.probability import PrecedenceModel, gaussian_preceding_probability
from repro.distributions.parametric import GaussianDistribution, UniformDistribution
from repro.distributions.mixtures import MixtureDistribution
from tests.conftest import make_message


def test_closed_form_matches_phi_formula():
    dist_i = GaussianDistribution(0.0, 3.0)
    dist_j = GaussianDistribution(0.0, 4.0)
    t_i, t_j = 10.0, 12.0
    expected = stats.norm.cdf((t_j - t_i) / 5.0)
    assert gaussian_preceding_probability(t_i, t_j, dist_i, dist_j) == pytest.approx(expected)


def test_closed_form_accounts_for_mean_bias():
    # client j's clock runs 5 ahead on average, so equal reported timestamps
    # mean j's message was actually generated earlier -> P(i before j) < 0.5
    dist_i = GaussianDistribution(0.0, 1.0)
    dist_j = GaussianDistribution(5.0, 1.0)
    p = gaussian_preceding_probability(10.0, 10.0, dist_i, dist_j)
    assert p < 0.01


def test_zero_variance_degenerates_to_deterministic_comparison():
    exact = GaussianDistribution(0.0, 0.0)
    assert gaussian_preceding_probability(1.0, 2.0, exact, exact) == 1.0
    assert gaussian_preceding_probability(2.0, 1.0, exact, exact) == 0.0
    assert gaussian_preceding_probability(1.0, 1.0, exact, exact) == 0.5


def test_equal_timestamps_equal_clients_give_half():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.0, 2.0))
    p = model.preceding_probability(make_message("a", 5.0), make_message("b", 5.0))
    assert p == pytest.approx(0.5)


def test_probability_complementarity():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.5, 2.0))
    m_a, m_b = make_message("a", 3.0), make_message("b", 4.0)
    forward = model.preceding_probability(m_a, m_b)
    backward = model.preceding_probability(m_b, m_a)
    assert forward + backward == pytest.approx(1.0, abs=1e-9)


def test_larger_gap_increases_confidence():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.0, 1.0))
    small = model.preceding_probability(make_message("a", 0.0), make_message("b", 0.5))
    large = model.preceding_probability(make_message("a", 0.0), make_message("b", 5.0))
    assert 0.5 < small < large < 1.0 + 1e-12


def test_fft_method_matches_gaussian_closed_form():
    gaussian_model = PrecedenceModel(method="gaussian")
    fft_model = PrecedenceModel(method="fft", convolution_points=4096)
    for model in (gaussian_model, fft_model):
        model.register_client("a", GaussianDistribution(0.0, 2.0))
        model.register_client("b", GaussianDistribution(1.0, 1.5))
    m_a, m_b = make_message("a", 0.0), make_message("b", 1.0)
    assert fft_model.preceding_probability(m_a, m_b) == pytest.approx(
        gaussian_model.preceding_probability(m_a, m_b), abs=5e-3
    )


def test_non_gaussian_distributions_supported():
    model = PrecedenceModel()
    model.register_client("uniform", UniformDistribution(-1.0, 1.0))
    model.register_client(
        "mixture",
        MixtureDistribution([GaussianDistribution(-1, 0.5), GaussianDistribution(1, 0.5)], [0.5, 0.5]),
    )
    p = model.preceding_probability(make_message("uniform", 0.0), make_message("mixture", 3.0))
    assert 0.5 < p <= 1.0


def test_pair_difference_is_cached_per_client_pair():
    model = PrecedenceModel(method="fft", convolution_points=512)
    model.register_client("a", UniformDistribution(-1.0, 1.0))
    model.register_client("b", UniformDistribution(-2.0, 2.0))
    first = model.pair_difference("a", "b")
    second = model.pair_difference("a", "b")
    assert first is second


def test_registering_a_client_invalidates_its_cache_entries():
    model = PrecedenceModel(method="fft", convolution_points=512)
    model.register_client("a", UniformDistribution(-1.0, 1.0))
    model.register_client("b", UniformDistribution(-2.0, 2.0))
    first = model.pair_difference("a", "b")
    model.register_client("a", UniformDistribution(-3.0, 3.0))
    second = model.pair_difference("a", "b")
    assert first is not second


def test_unknown_client_raises_keyerror():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    with pytest.raises(KeyError):
        model.preceding_probability(make_message("a", 0.0), make_message("zzz", 1.0))


def test_safe_emission_time_gaussian():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 2.0))
    message = make_message("a", 100.0)
    p_safe = 0.999
    t_f = model.safe_emission_time(message, p_safe)
    # P(T* < T^F) = P(eps > T - T^F) must exceed p_safe
    achieved = 1.0 - float(GaussianDistribution(0.0, 2.0).cdf(np.asarray(message.timestamp - t_f)))
    assert achieved == pytest.approx(p_safe, abs=1e-6)
    assert t_f > message.timestamp  # must wait beyond the reported timestamp


def test_safe_emission_time_scales_with_uncertainty():
    model = PrecedenceModel()
    model.register_client("narrow", GaussianDistribution(0.0, 0.1))
    model.register_client("wide", GaussianDistribution(0.0, 10.0))
    narrow = model.safe_emission_time(make_message("narrow", 0.0), 0.999)
    wide = model.safe_emission_time(make_message("wide", 0.0), 0.999)
    assert wide > narrow


def test_safe_emission_time_validates_p_safe():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    with pytest.raises(ValueError):
        model.safe_emission_time(make_message("a", 0.0), 0.4)


def test_probability_evaluation_counter_increments():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.0, 1.0))
    model.preceding_probability(make_message("a", 0.0), make_message("b", 1.0))
    model.preceding_probability(make_message("b", 0.0), make_message("a", 1.0))
    assert model.probability_evaluations == 2


def test_invalid_method_and_empty_client_rejected():
    with pytest.raises(ValueError):
        PrecedenceModel(method="bogus")
    model = PrecedenceModel()
    with pytest.raises(ValueError):
        model.register_client("", GaussianDistribution(0.0, 1.0))
