"""Tests for the fair total-order extension (random tie-breaking)."""

import numpy as np
import pytest

from repro.core.total_order import FairTotalOrder
from repro.network.message import SequencedBatch
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def batch_of(clients, rank=0):
    return SequencedBatch(rank=rank, messages=tuple(make_message(c, float(i)) for i, c in enumerate(clients)))


def test_order_batch_returns_a_permutation():
    total_order = FairTotalOrder(np.random.default_rng(0))
    batch = batch_of(["a", "b", "c"])
    ordered = total_order.order_batch(batch)
    assert sorted(m.client_id for m in ordered) == ["a", "b", "c"]
    assert len(total_order.records) == 1
    assert total_order.records[0].batch_size == 3


def test_totalize_flattens_batches_preserving_rank_order():
    total_order = FairTotalOrder(np.random.default_rng(1))
    messages_first = [make_message("a", 0.0), make_message("b", 1.0)]
    messages_second = [make_message("c", 2.0)]
    result = SequencingResult(batches=batches_from_groups([messages_first, messages_second]))
    flattened = total_order.totalize(result)
    assert len(flattened) == 3
    assert flattened[-1].client_id == "c"
    assert {m.client_id for m in flattened[:2]} == {"a", "b"}


def test_long_run_first_position_share_is_uniform():
    total_order = FairTotalOrder(np.random.default_rng(2))
    for _ in range(3000):
        total_order.order_batch(batch_of(["a", "b", "c"]))
    shares = total_order.first_position_share()
    for client in ("a", "b", "c"):
        assert shares[client] == pytest.approx(1.0 / 3.0, abs=0.03)


def test_no_client_systematically_preferred_against_another():
    total_order = FairTotalOrder(np.random.default_rng(3))
    for _ in range(2000):
        total_order.order_batch(batch_of(["x", "y"]))
    wins = total_order.win_counts()
    assert abs(wins["x"] - wins["y"]) < 200


def test_singleton_batches_always_win_first_position():
    total_order = FairTotalOrder(np.random.default_rng(4))
    for _ in range(10):
        total_order.order_batch(batch_of(["solo"]))
    assert total_order.first_position_share()["solo"] == 1.0


def test_records_capture_the_emitted_order():
    total_order = FairTotalOrder(np.random.default_rng(5))
    batch = batch_of(["a", "b"], rank=7)
    ordered = total_order.order_batch(batch)
    record = total_order.records[0]
    assert record.rank == 7
    assert record.order == tuple(message.key for message in ordered)
    assert record.winner_client == ordered[0].client_id
