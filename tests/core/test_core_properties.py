"""Property-based tests for Tommy's core invariants (hypothesis).

The headline property is the paper's Appendix A result: for Gaussian clock
errors the preference relation induced by the preceding probability is
transitive, so the kept-edge tournament is acyclic and has a unique
topological order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import form_batches
from repro.core.config import TommyConfig
from repro.core.probability import PrecedenceModel, gaussian_preceding_probability
from repro.core.relation import LikelyHappenedBefore
from repro.core.sequencer import TommySequencer
from repro.core.tournament import TournamentGraph
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage

timestamps = st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False)
means = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)
stds = st.floats(min_value=0.01, max_value=30.0, allow_nan=False, allow_infinity=False)

client_specs = st.lists(
    st.tuples(timestamps, means, stds),
    min_size=3,
    max_size=7,
)


def build_messages_and_model(specs):
    model = PrecedenceModel()
    messages = []
    for index, (timestamp, mean, std) in enumerate(specs):
        client_id = f"client-{index}"
        model.register_client(client_id, GaussianDistribution(mean, std))
        messages.append(
            TimestampedMessage(client_id=client_id, timestamp=timestamp, true_time=timestamp)
        )
    return messages, model


@given(specs=client_specs)
@settings(max_examples=60, deadline=None)
def test_gaussian_relation_is_transitive_appendix_a(specs):
    """Appendix A: Gaussian errors always yield a transitive tournament."""
    messages, model = build_messages_and_model(specs)
    relation = LikelyHappenedBefore.from_model(messages, model)
    tournament = TournamentGraph.from_relation(relation)
    assert tournament.is_acyclic()
    assert tournament.is_transitive_tournament()


@given(specs=client_specs)
@settings(max_examples=40, deadline=None)
def test_topological_order_sorts_by_bias_corrected_timestamp(specs):
    """For Gaussian errors the unique linear order is by mean-corrected timestamp."""
    messages, model = build_messages_and_model(specs)
    relation = LikelyHappenedBefore.from_model(messages, model)
    tournament = TournamentGraph.from_relation(relation)
    order = tournament.topological_order()
    corrected = {
        message.key: message.timestamp - model.distribution_for(message.client_id).mean
        for message in messages
    }
    values = [corrected[key] for key in order]
    assert all(values[k] <= values[k + 1] + 1e-6 for k in range(len(values) - 1))


@given(specs=client_specs, threshold=st.floats(min_value=0.5, max_value=0.99))
@settings(max_examples=40, deadline=None)
def test_batches_partition_messages(specs, threshold):
    """Every message lands in exactly one batch and ranks are consecutive."""
    messages, model = build_messages_and_model(specs)
    relation = LikelyHappenedBefore.from_model(messages, model)
    tournament = TournamentGraph.from_relation(relation)
    outcome = form_batches(tournament.topological_order(), relation, threshold=min(threshold, 0.999))
    seen = [message.key for batch in outcome.batches for message in batch.messages]
    assert sorted(seen) == sorted(message.key for message in messages)
    assert [batch.rank for batch in outcome.batches] == list(range(len(outcome.batches)))


@given(specs=client_specs)
@settings(max_examples=30, deadline=None)
def test_strict_batches_never_finer_than_adjacent(specs):
    messages, model = build_messages_and_model(specs)
    relation = LikelyHappenedBefore.from_model(messages, model)
    order = TournamentGraph.from_relation(relation).topological_order()
    adjacent = form_batches(order, relation, threshold=0.75, mode="adjacent")
    strict = form_batches(order, relation, threshold=0.75, mode="strict")
    assert strict.batch_count <= adjacent.batch_count


@given(
    t_i=timestamps,
    t_j=timestamps,
    mean_i=means,
    mean_j=means,
    std_i=stds,
    std_j=stds,
)
@settings(max_examples=80, deadline=None)
def test_preceding_probability_complementarity(t_i, t_j, mean_i, mean_j, std_i, std_j):
    dist_i = GaussianDistribution(mean_i, std_i)
    dist_j = GaussianDistribution(mean_j, std_j)
    forward = gaussian_preceding_probability(t_i, t_j, dist_i, dist_j)
    backward = gaussian_preceding_probability(t_j, t_i, dist_j, dist_i)
    assert 0.0 <= forward <= 1.0
    assert abs(forward + backward - 1.0) < 1e-9


@given(
    t_i=timestamps,
    shift=st.floats(min_value=0.1, max_value=100.0),
    mean=means,
    std=stds,
)
@settings(max_examples=60, deadline=None)
def test_preceding_probability_monotone_in_gap(t_i, shift, mean, std):
    dist = GaussianDistribution(mean, std)
    close = gaussian_preceding_probability(t_i, t_i + shift, dist, dist)
    far = gaussian_preceding_probability(t_i, t_i + 2 * shift, dist, dist)
    assert far >= close - 1e-12
    assert close >= 0.5 - 1e-12


@given(specs=client_specs, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=30, deadline=None)
def test_sequencer_is_deterministic_for_fixed_inputs(specs, seed):
    messages, _model = build_messages_and_model(specs)
    distributions = {
        f"client-{index}": GaussianDistribution(mean, std)
        for index, (_t, mean, std) in enumerate(specs)
    }
    config = TommyConfig(seed=seed)
    first = TommySequencer(distributions, config).sequence(messages)
    second = TommySequencer(distributions, config).sequence(messages)
    assert first.rank_of() == second.rank_of()
    assert first.batch_sizes == second.batch_sizes
