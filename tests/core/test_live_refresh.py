"""Live distribution refresh: engine cache invalidation correctness.

``update_client_distribution`` swaps a client's offset distribution while
messages are pending.  The engine must drop its cached Gaussian parameters,
pair-CDF tables and safe-emission quantiles and rebuild the affected matrix
rows so that the next tentative batching is exactly what the reference
recompute-everything path produces with the refreshed model.
"""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.core.relation import LikelyHappenedBefore
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop


def fingerprint(sequencer):
    return [
        (
            emitted.batch.rank,
            tuple(message.key for message in emitted.batch.messages),
            emitted.emitted_at,
            emitted.safe_emission_time,
        )
        for emitted in sequencer.emitted_batches
    ]


def refreshing_run(use_engine, seed=3, num_clients=5, num_messages=50, refresh_every=10):
    """A timed stream that refreshes a rotating client mid-stream."""
    rng = np.random.default_rng(seed)
    distributions = {
        f"c{i}": EmpiricalDistribution.from_samples(
            rng.normal(0.0, float(rng.uniform(0.02, 0.2)), 200), bins=64
        )
        for i in range(num_clients)
    }
    loop = EventLoop()
    config = TommyConfig(
        p_safe=0.99, completeness_mode="none", seed=7, convolution_points=512
    )
    sequencer = OnlineTommySequencer(loop, distributions, config, use_engine=use_engine)
    t = 0.0
    for k in range(num_messages):
        t += float(rng.exponential(0.05))
        client = f"c{int(rng.integers(num_clients))}"
        message = TimestampedMessage(
            client_id=client,
            timestamp=t + float(rng.normal(0.0, 0.1)),
            true_time=t,
            message_id=seed * 1_000_000 + 600_000 + k,
        )
        loop.schedule_at(t, sequencer.receive, message)
        if (k + 1) % refresh_every == 0:
            # refresh a rotating client with a fresh (different) estimate
            target = f"c{(k // refresh_every) % num_clients}"
            refreshed = EmpiricalDistribution.from_samples(
                rng.normal(float(rng.normal(0, 0.05)), float(rng.uniform(0.02, 0.3)), 200),
                bins=64,
            )
            loop.schedule_at(
                t, sequencer.update_client_distribution, target, refreshed
            )
    loop.run(until=t + 50.0)
    sequencer.flush()
    return sequencer


@pytest.mark.parametrize("seed", [3, 4, 5])
def test_mid_stream_refresh_parity_engine_vs_reference(seed):
    engine_run = refreshing_run(True, seed=seed)
    reference_run = refreshing_run(False, seed=seed)
    assert engine_run.distribution_refreshes > 0
    assert fingerprint(engine_run) == fingerprint(reference_run)
    stats = engine_run.engine_stats()
    assert stats.rebuilds > 0  # refreshes hit pending messages
    assert stats.scalar_evaluations == 0


def test_refresh_rebuilds_matrix_and_quantiles_exactly():
    loop = EventLoop()
    rng = np.random.default_rng(9)
    distributions = {
        "a": EmpiricalDistribution.from_samples(rng.normal(0.0, 0.1, 200), bins=64),
        "b": EmpiricalDistribution.from_samples(rng.normal(0.0, 0.2, 200), bins=64),
    }
    config = TommyConfig(p_safe=0.9, completeness_mode="none", convolution_points=512)
    sequencer = OnlineTommySequencer(loop, distributions, config)
    messages = [
        TimestampedMessage("a", 100.0, message_id=910_001),
        TimestampedMessage("b", 100.05, message_id=910_002),
        TimestampedMessage("a", 100.2, message_id=910_003),
    ]
    for message in messages:
        sequencer.receive(message, arrival_time=0.0)
    engine = sequencer.engine
    safe_before = engine.safe_emission_time(messages[0], config.p_safe)

    refreshed = EmpiricalDistribution.from_samples(rng.normal(0.3, 0.5, 200), bins=64)
    sequencer.update_client_distribution("a", refreshed)

    # every maintained probability equals a from-scratch relation on the
    # refreshed model, bit for bit
    scratch = LikelyHappenedBefore.from_model(messages, sequencer.model)
    for key_a in engine.message_keys:
        for key_b in engine.message_keys:
            if key_a != key_b:
                assert engine.probability(key_a, key_b) == scratch.probability(key_a, key_b)
    # the quantile cache was invalidated: safe emission reflects the refresh
    safe_after = engine.safe_emission_time(messages[0], config.p_safe)
    expected = messages[0].timestamp - refreshed.quantile(1.0 - config.p_safe)
    assert safe_after == expected
    assert safe_after != safe_before


def test_update_requires_known_client_and_batch_variant_counts():
    loop = EventLoop()
    distributions = {
        "a": GaussianDistribution(0.0, 0.1),
        "b": GaussianDistribution(0.0, 0.2),
    }
    sequencer = OnlineTommySequencer(loop, distributions, TommyConfig())
    with pytest.raises(KeyError):
        sequencer.update_client_distribution("ghost", GaussianDistribution(0.0, 1.0))
    with pytest.raises(KeyError):
        sequencer.update_client_distributions({"ghost": GaussianDistribution(0.0, 1.0)})
    sequencer.update_client_distributions(
        {
            "a": GaussianDistribution(0.0, 0.3),
            "b": GaussianDistribution(0.1, 0.1),
        }
    )
    assert sequencer.distribution_refreshes == 2
    assert sequencer.result().metadata["distribution_refreshes"] == 2
