"""Burst-ingestion fast path: block appends, receive_many, coalescing.

The contract at every layer is *bit-identical behavior* to the one-at-a-time
path: the engine's ``add_messages`` block append must leave exactly the
state k sequential ``add_message`` calls leave, ``receive_many`` must emit
exactly the batches sequential ``receive`` calls emit, and a coalescing
transport must not change the emitted stream — only the amount of work.
"""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.engine import IncrementalPrecedenceEngine
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import ConstantDelay
from repro.network.message import Heartbeat, TimestampedMessage
from repro.network.transport import Transport
from repro.clocks.local import LocalClock
from repro.simulation.event_loop import EventLoop


def build_model(num_clients, rng, empirical_fraction=0.0):
    model = PrecedenceModel()
    clients = []
    for i in range(num_clients):
        client_id = f"client-{i}"
        if rng.random() < empirical_fraction:
            samples = rng.normal(0.0, float(rng.uniform(0.002, 0.01)), 500)
            model.register_client(client_id, EmpiricalDistribution.from_samples(samples, bins=64))
        else:
            model.register_client(
                client_id,
                GaussianDistribution(float(rng.normal(0, 0.001)), float(rng.uniform(0.002, 0.01))),
            )
        clients.append(client_id)
    return model, clients


def make_messages(clients, count, rng, base_id, simultaneous=False):
    messages = []
    t = 0.0
    for k in range(count):
        if not simultaneous:
            t += float(rng.exponential(0.005))
        client = clients[int(rng.integers(len(clients)))]
        messages.append(
            TimestampedMessage(
                client_id=client,
                timestamp=t + float(rng.normal(0, 0.003)),
                true_time=t,
                message_id=base_id + k,
            )
        )
    return messages


def engine_state(engine):
    n = engine.size
    return (
        engine.message_keys,
        engine.probability_matrix(),
        engine._direction[:n, :n].copy(),
        engine._scores[:n].copy(),
    )


@pytest.mark.parametrize("empirical_fraction", [0.0, 0.5, 1.0])
@pytest.mark.parametrize("seed", [0, 1])
def test_add_messages_block_append_is_bit_identical(seed, empirical_fraction):
    rng = np.random.default_rng(200 + seed)
    model, clients = build_model(6, rng, empirical_fraction)
    burst = make_messages(clients, 12, rng, 60_000_000)
    prefix = make_messages(clients, 5, rng, 61_000_000)

    sequential = IncrementalPrecedenceEngine(model, threshold=0.75)
    blocked = IncrementalPrecedenceEngine(model, threshold=0.75)
    for message in prefix:
        sequential.add_message(message)
        blocked.add_message(message)
    for message in burst:
        sequential.add_message(message)
    blocked.add_messages(burst)

    keys_a, matrix_a, direction_a, scores_a = engine_state(sequential)
    keys_b, matrix_b, direction_b, scores_b = engine_state(blocked)
    assert keys_a == keys_b
    assert np.array_equal(matrix_a, matrix_b)  # exact, not approximate
    assert np.array_equal(direction_a, direction_b)
    assert np.array_equal(scores_a, scores_b)
    assert blocked.stats.block_appends == 1
    assert blocked.stats.rows_appended == sequential.stats.rows_appended
    # and downstream consumers agree too
    groups_a = [[m.key for m in g] for g in sequential.tentative_groups()]
    groups_b = [[m.key for m in g] for g in blocked.tentative_groups()]
    assert groups_a == groups_b


def test_add_messages_handles_ties_and_simultaneity():
    rng = np.random.default_rng(4)
    model, clients = build_model(4, rng)
    burst = make_messages(clients, 8, rng, 62_000_000, simultaneous=True)
    sequential = IncrementalPrecedenceEngine(model, threshold=0.75, tie_epsilon=0.6)
    blocked = IncrementalPrecedenceEngine(model, threshold=0.75, tie_epsilon=0.6)
    for message in burst:
        sequential.add_message(message)
    blocked.add_messages(burst)
    for a, b in zip(engine_state(sequential), engine_state(blocked)):
        assert np.array_equal(np.asarray(a, dtype=object), np.asarray(b, dtype=object)) or a == b


def test_add_messages_validates_before_mutating():
    rng = np.random.default_rng(5)
    model, clients = build_model(2, rng)
    engine = IncrementalPrecedenceEngine(model, threshold=0.75)
    good = make_messages(clients, 2, rng, 63_000_000)
    unknown = TimestampedMessage(client_id="stranger", timestamp=0.0, message_id=63_000_100)
    with pytest.raises(KeyError):
        engine.add_messages(good + [unknown])
    assert engine.size == 0  # nothing applied
    engine.add_messages(good)
    with pytest.raises(ValueError):
        engine.add_messages([good[0]])
    with pytest.raises(ValueError):
        engine.add_messages([unknown.with_timestamp(0.0)] * 0 + [good[1], good[1]])


def run_sequencer(distributions, deliveries, burst_mode):
    """Replay (time, [items]) deliveries; burst_mode uses receive_many."""
    loop = EventLoop()
    sequencer = OnlineTommySequencer(
        loop,
        distributions,
        TommyConfig(p_safe=0.9, completeness_mode="heartbeat", seed=3),
    )
    for when, items in deliveries:
        if burst_mode:
            loop.schedule_at(when, sequencer.receive_many, list(items))
        else:
            for item in items:
                loop.schedule_at(when, sequencer.receive, item)
    loop.run()
    sequencer.flush()
    emitted = [
        (
            e.batch.rank,
            tuple(m.key for m in e.batch.messages),
            e.emitted_at,
            e.safe_emission_time,
        )
        for e in sequencer.emitted_batches
    ]
    return sequencer, emitted


def burst_deliveries(seed=6, num_clients=5, bursts=12, burst_size=6):
    rng = np.random.default_rng(seed)
    model_rng = np.random.default_rng(seed + 1000)
    distributions = {
        f"client-{i}": GaussianDistribution(0.0, float(model_rng.uniform(0.002, 0.008)))
        for i in range(num_clients)
    }
    clients = sorted(distributions)
    deliveries = []
    t = 0.0
    message_id = 64_000_000
    for _ in range(bursts):
        t += float(rng.exponential(0.05))
        items = []
        for _ in range(burst_size):
            client = clients[int(rng.integers(num_clients))]
            items.append(
                TimestampedMessage(
                    client_id=client,
                    timestamp=t + float(rng.normal(0, 0.004)),
                    true_time=t,
                    message_id=message_id,
                )
            )
            message_id += 1
        deliveries.append((t, items))
    # closing heartbeats so the heartbeat completeness rule releases the tail
    beacon = t + 1.0
    deliveries.append(
        (beacon, [Heartbeat(client_id=c, timestamp=beacon, true_time=beacon) for c in clients])
    )
    return distributions, deliveries


def test_receive_many_emits_identical_batches():
    distributions, deliveries = burst_deliveries()
    seq_a, emitted_a = run_sequencer(distributions, deliveries, burst_mode=False)
    seq_b, emitted_b = run_sequencer(distributions, deliveries, burst_mode=True)
    assert emitted_a == emitted_b
    assert len(emitted_a) > 1
    # the burst path appended blocks instead of rows, and checked emission
    # once per burst instead of once per message
    assert seq_b.engine_stats().block_appends > 0
    assert seq_a.engine_stats().block_appends == 0
    assert seq_b.extension_count < seq_a.extension_count


def test_receive_many_rejects_unknown_clients_and_types():
    distributions, _ = burst_deliveries()
    loop = EventLoop()
    sequencer = OnlineTommySequencer(loop, distributions, TommyConfig(completeness_mode="none"))
    with pytest.raises(KeyError):
        sequencer.receive_many([TimestampedMessage(client_id="stranger", timestamp=0.0)])
    with pytest.raises(TypeError):
        sequencer.receive_many(["not-a-message"])
    sequencer.receive_many([])  # no-op


def run_transport(coalesce):
    loop = EventLoop()
    rng_factory = lambda name: np.random.default_rng(abs(hash(name)) % (2**32))
    transport = Transport(loop, rng_factory, coalesce_bursts=coalesce)
    distributions = {f"client-{i}": GaussianDistribution(0.0, 0.004) for i in range(4)}
    sequencer = OnlineTommySequencer(
        loop, distributions, TommyConfig(p_safe=0.9, completeness_mode="none", seed=1)
    )
    transport.sequencer.on_arrival(sequencer.receive)
    transport.sequencer.on_burst(sequencer.receive_many)
    endpoints = {}
    for client_id in distributions:
        endpoints[client_id] = transport.add_client(
            client_id,
            LocalClock(
                loop,
                distributions[client_id],
                np.random.default_rng(abs(hash(client_id)) % (2**32)),
            ),
            delay_model=ConstantDelay(0.01),  # same delay -> simultaneous arrivals
        )
    # three bursts: every client sends at the same instant
    for when in (0.0, 0.05, 0.1):
        for client_id in sorted(endpoints):
            loop.schedule_at(when, endpoints[client_id].send, f"payload@{when}")
    loop.run(until=5.0)
    sequencer.flush()
    emitted = [
        (e.batch.rank, tuple(m.key for m in e.batch.messages), e.emitted_at)
        for e in sequencer.emitted_batches
    ]
    return transport, sequencer, emitted


def test_transport_coalescing_preserves_emissions_and_batches_work():
    transport_plain, seq_plain, emitted_plain = run_transport(coalesce=False)
    transport_burst, seq_burst, emitted_burst = run_transport(coalesce=True)
    # message identity differs (message_id is a global counter), so compare
    # by client and count shape
    shape = lambda emitted: [
        (rank, tuple(sorted(key[0] for key in keys)), at) for rank, keys, at in emitted
    ]
    assert shape(emitted_plain) == shape(emitted_burst)
    assert transport_plain.sequencer.bursts_delivered == 0
    assert transport_burst.sequencer.bursts_delivered == 3
    assert transport_burst.sequencer.largest_burst == 4
    assert seq_burst.engine_stats().block_appends == 3


def test_completeness_floor_matches_scan():
    rng = np.random.default_rng(8)
    distributions = {f"client-{i}": GaussianDistribution(0.0, 0.005) for i in range(6)}
    loop = EventLoop()
    sequencer = OnlineTommySequencer(
        loop, distributions, TommyConfig(completeness_mode="heartbeat")
    )
    clients = sorted(distributions)
    # before anything is heard the floor is -inf (unheard known clients)
    assert sequencer._completeness_floor() == -float("inf")
    horizons = [0.0, 0.5, 1.0, 2.0]
    for step in range(300):
        client = clients[int(rng.integers(len(clients)))]
        timestamp = float(rng.uniform(0, 2.5))
        sequencer._note_client_progress(client, timestamp)
        for horizon in horizons:
            incremental = sequencer._completeness_floor() >= horizon
            assert incremental == sequencer._completeness_scan(horizon), (
                f"floor diverged from scan at step {step}, horizon {horizon}"
            )
    # a brand-new known client resets completeness until it is heard from
    sequencer.register_client("late-joiner", GaussianDistribution(0.0, 0.005))
    assert sequencer._completeness_floor() == -float("inf")
    assert not sequencer._completeness_scan(0.0)
    sequencer._note_client_progress("late-joiner", 5.0)
    assert sequencer._completeness_floor() == sequencer._completeness_floor()
    for horizon in horizons:
        assert (sequencer._completeness_floor() >= horizon) == sequencer._completeness_scan(horizon)
