"""Tests for the incremental vectorized precedence engine.

The contract under test is *behavior preservation*: an engine-backed online
sequencer must emit byte-identical batches to the reference
recompute-everything path (``use_engine=False``) for the same arrival
stream, while performing no scalar probability evaluations on Gaussian
workloads.
"""

import numpy as np
import pytest

from repro.core.batching import _strict_boundary_strengths
from repro.core.config import TommyConfig
from repro.core.engine import (
    EngineStats,
    IncrementalPrecedenceEngine,
    build_relation,
    cross_probability_matrix,
    strict_boundary_strengths_matrix,
)
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat, TimestampedMessage
from repro.simulation.event_loop import EventLoop


def fingerprint(sequencer):
    """Byte-level identity of the emitted stream."""
    return [
        (
            emitted.batch.rank,
            tuple(message.key for message in emitted.batch.messages),
            emitted.emitted_at,
            emitted.safe_emission_time,
        )
        for emitted in sequencer.emitted_batches
    ]


def gaussian_distributions(rng, num_clients, sigma_lo=0.001, sigma_hi=0.3):
    return {
        f"c{i}": GaussianDistribution(
            float(rng.normal(0.0, 0.01)), float(rng.uniform(sigma_lo, sigma_hi))
        )
        for i in range(num_clients)
    }


def stream_run(use_engine, seed, completeness_mode, num_clients=10, num_messages=80):
    """One seeded arrival stream through an online sequencer."""
    rng = np.random.default_rng(seed)
    distributions = gaussian_distributions(rng, num_clients)
    loop = EventLoop()
    config = TommyConfig(
        p_safe=0.99,
        completeness_mode=completeness_mode,
        max_network_delay=0.5,
        seed=7,
    )
    sequencer = OnlineTommySequencer(loop, distributions, config, use_engine=use_engine)
    t = 0.0
    for k in range(num_messages):
        t += float(rng.exponential(0.05))
        client = f"c{int(rng.integers(num_clients))}"
        message = TimestampedMessage(
            client_id=client,
            timestamp=t + float(rng.normal(0.0, 0.05)),
            true_time=t,
            message_id=seed * 1_000_000 + k,
        )
        loop.schedule_at(t + float(rng.uniform(0.0, 0.01)), sequencer.receive, message)
    if completeness_mode == "heartbeat":
        for client in distributions:
            loop.schedule_at(
                t + 1.0, sequencer.receive, Heartbeat(client_id=client, timestamp=t + 10.0)
            )
    loop.run(until=t + 50.0)
    sequencer.flush()
    return sequencer


@pytest.mark.parametrize("completeness_mode", ["none", "bounded_delay", "heartbeat"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_engine_emits_byte_identical_batches(seed, completeness_mode):
    engine_run = stream_run(True, seed, completeness_mode)
    reference_run = stream_run(False, seed, completeness_mode)
    assert fingerprint(engine_run) == fingerprint(reference_run)
    # the whole point: the engine does not fall back to scalar evaluations
    # on a Gaussian workload, while the reference path does them by the
    # thousands
    assert engine_run.model.probability_evaluations == 0
    assert reference_run.model.probability_evaluations > 1000
    assert engine_run.engine_stats().vectorized_evaluations > 0


def skewed_mixtures(rng, num_clients):
    """Skewed bimodal error mixtures: pairwise medians differ, so the kept
    direction is no longer a function of ``timestamp - mean`` alone and the
    tournament can be intransitive."""
    distributions = {}
    for i in range(num_clients):
        weight = float(rng.uniform(0.1, 0.9))
        distributions[f"c{i}"] = MixtureDistribution(
            [
                GaussianDistribution(float(rng.uniform(-0.5, 0.0)), 0.03),
                GaussianDistribution(float(rng.uniform(0.0, 0.5)), 0.2),
            ],
            [weight, 1.0 - weight],
        )
    return distributions


def cyclic_flush_run(use_engine, cycle_policy, seed=3):
    rng = np.random.default_rng(seed)
    distributions = skewed_mixtures(rng, 4)
    loop = EventLoop()
    config = TommyConfig(
        p_safe=0.95,
        completeness_mode="none",
        probability_method="fft",
        convolution_points=128,
        cycle_policy=cycle_policy,
        seed=3,
    )
    sequencer = OnlineTommySequencer(loop, distributions, config, use_engine=use_engine)
    for k in range(10):
        client = f"c{int(rng.integers(4))}"
        sequencer.receive(
            TimestampedMessage(client_id=client, timestamp=float(rng.normal(0.0, 0.2)), message_id=k),
            arrival_time=0.0,
        )
    sequencer.flush()
    return sequencer


@pytest.mark.parametrize("cycle_policy", ["greedy", "stochastic", "eades"])
def test_engine_parity_through_cycle_resolution(cycle_policy):
    """An intransitive pending set must be grouped identically by the engine
    and by the reference rebuild, under every cycle-breaking policy."""
    engine_run = cyclic_flush_run(True, cycle_policy)
    reference_run = cyclic_flush_run(False, cycle_policy)
    assert engine_run.engine_stats().cycle_resolutions > 0
    assert fingerprint(engine_run) == fingerprint(reference_run)


def test_engine_parity_timed_run_with_cycles_and_shared_rng():
    """A timed run resolves cycles at many emission checks, so the shared
    RNG must be consumed identically by both paths (stochastic policy)."""

    def run(use_engine):
        rng = np.random.default_rng(1)
        distributions = skewed_mixtures(rng, 5)
        loop = EventLoop()
        config = TommyConfig(
            p_safe=0.95,
            completeness_mode="none",
            probability_method="fft",
            convolution_points=128,
            cycle_policy="stochastic",
            seed=3,
        )
        sequencer = OnlineTommySequencer(loop, distributions, config, use_engine=use_engine)
        t = 0.0
        for k in range(20):
            t += float(rng.exponential(0.05))
            client = f"c{int(rng.integers(5))}"
            message = TimestampedMessage(
                client_id=client,
                timestamp=t + float(rng.normal(0.0, 0.25)),
                true_time=t,
                message_id=900_000 + k,
            )
            loop.schedule_at(t, sequencer.receive, message)
        loop.run(until=t + 20.0)
        sequencer.flush()
        return sequencer

    engine_run = run(True)
    reference_run = run(False)
    assert engine_run.engine_stats().cycle_resolutions > 0
    assert fingerprint(engine_run) == fingerprint(reference_run)


def test_engine_parity_across_client_reregistration():
    """Re-registering a live client rebuilds the engine's matrix; the
    reference path recomputes per arrival, so both must agree."""

    def run(use_engine):
        loop = EventLoop()
        distributions = {
            "a": GaussianDistribution(0.0, 0.1),
            "b": GaussianDistribution(0.0, 0.2),
        }
        config = TommyConfig(p_safe=0.9, completeness_mode="none", seed=0)
        sequencer = OnlineTommySequencer(loop, distributions, config, use_engine=use_engine)
        sequencer.receive(TimestampedMessage("a", 100.0, message_id=1), arrival_time=0.0)
        sequencer.receive(TimestampedMessage("b", 100.05, message_id=2), arrival_time=0.0)
        # widen a's clock while its message is still pending: the pair is no
        # longer confidently separable
        sequencer.register_client("a", GaussianDistribution(0.0, 5.0))
        sequencer.receive(TimestampedMessage("a", 100.2, message_id=3), arrival_time=0.0)
        loop.run(until=300.0)
        sequencer.flush()
        return sequencer

    assert fingerprint(run(True)) == fingerprint(run(False))


def test_engine_matrix_matches_scratch_relation_after_removals():
    rng = np.random.default_rng(5)
    model = PrecedenceModel()
    distributions = gaussian_distributions(rng, 4)
    for client, distribution in distributions.items():
        model.register_client(client, distribution)
    engine = IncrementalPrecedenceEngine(model, threshold=0.75)
    messages = [
        TimestampedMessage(f"c{int(rng.integers(4))}", float(rng.normal(0, 1)), message_id=10 + k)
        for k in range(12)
    ]
    for message in messages:
        engine.add_message(message)
    engine.remove_messages({messages[0].key, messages[5].key, messages[11].key})
    survivors = [m for m in messages if m.key not in {messages[0].key, messages[5].key, messages[11].key}]
    scratch = LikelyHappenedBefore.from_model(survivors, model)
    for key_a in engine.message_keys:
        for key_b in engine.message_keys:
            if key_a == key_b:
                continue
            assert engine.probability(key_a, key_b) == scratch.probability(key_a, key_b)


def test_engine_groups_match_reference_groups_directly():
    rng = np.random.default_rng(9)
    loop = EventLoop()
    distributions = gaussian_distributions(rng, 6)
    config = TommyConfig(p_safe=0.99, completeness_mode="none", seed=1)
    engine_seq = OnlineTommySequencer(loop, distributions, config, use_engine=True)
    reference_seq = OnlineTommySequencer(loop, distributions, config, use_engine=False)
    for k in range(30):
        message = TimestampedMessage(
            f"c{int(rng.integers(6))}", float(rng.normal(0, 0.5)), message_id=500 + k
        )
        engine_seq.receive(message, arrival_time=0.0)
        reference_seq.receive(message, arrival_time=0.0)
        engine_groups = [[m.key for m in g] for g in engine_seq._tentative_groups()]
        reference_groups = [[m.key for m in g] for g in reference_seq._tentative_groups()]
        assert engine_groups == reference_groups


def test_safe_emission_time_uses_cached_quantile():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 2.0))
    engine = IncrementalPrecedenceEngine(model, threshold=0.75)
    message = TimestampedMessage("a", 100.0, message_id=1)
    other = TimestampedMessage("a", 101.0, message_id=2)
    first = engine.safe_emission_time(message, 0.999)
    second = engine.safe_emission_time(other, 0.999)
    assert first == model.safe_emission_time(message, 0.999)
    assert second == model.safe_emission_time(other, 0.999)
    assert engine.stats.quantile_cache_misses == 1
    assert engine.stats.quantile_cache_hits == 1
    with pytest.raises(ValueError):
        engine.safe_emission_time(message, 0.4)


def test_strict_boundary_strengths_matrix_matches_scalar_path():
    rng = np.random.default_rng(3)
    n = 9
    upper = rng.uniform(0.0, 1.0, size=(n, n))
    matrix = np.where(np.triu(np.ones((n, n)), 1) > 0, upper, 1.0 - upper.T)
    np.fill_diagonal(matrix, 0.5)
    messages = [TimestampedMessage(f"c{k}", float(k), message_id=700 + k) for k in range(n)]
    relation = LikelyHappenedBefore.from_matrix(messages, matrix)
    order = [message.key for message in messages]
    scalar = _strict_boundary_strengths(order, relation)
    vectorized = strict_boundary_strengths_matrix(matrix)
    assert list(vectorized) == scalar


def test_build_relation_matches_from_model_bitwise():
    rng = np.random.default_rng(11)
    model = PrecedenceModel()
    mixed = gaussian_distributions(rng, 3)
    mixed["m"] = MixtureDistribution(
        [GaussianDistribution(-0.2, 0.1), GaussianDistribution(0.3, 0.2)], [0.4, 0.6]
    )
    for client, distribution in mixed.items():
        model.register_client(client, distribution)
    clients = list(mixed)
    messages = [
        TimestampedMessage(clients[int(rng.integers(len(clients)))], float(rng.normal(0, 1)), message_id=800 + k)
        for k in range(10)
    ]
    fast_model = PrecedenceModel()
    for client, distribution in mixed.items():
        fast_model.register_client(client, distribution)
    stats = EngineStats()
    fast = build_relation(messages, fast_model, stats=stats)
    slow = LikelyHappenedBefore.from_model(messages, model)
    for key_a in slow.message_keys:
        for key_b in slow.message_keys:
            if key_a != key_b:
                assert fast.probability(key_a, key_b) == slow.probability(key_a, key_b)
    assert stats.vectorized_evaluations > 0
    # the mixture client's pairs ride the vectorized difference-CDF tables
    # now — the scalar fallback is gone from the relation build
    assert stats.table_evaluations > 0
    assert stats.scalar_evaluations == 0
    assert stats.pair_tables_built > 0


def test_cross_probability_matrix_matches_scalar_model():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.1, 2.0))
    messages_a = [TimestampedMessage("a", float(t), message_id=900 + t) for t in range(3)]
    messages_b = [TimestampedMessage("b", float(t) + 0.5, message_id=950 + t) for t in range(2)]
    matrix = cross_probability_matrix(messages_a, messages_b, model)
    for i, message_a in enumerate(messages_a):
        for j, message_b in enumerate(messages_b):
            assert matrix[i, j] == model.preceding_probability(message_a, message_b)


def test_engine_rejects_duplicate_and_unknown_messages():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    engine = IncrementalPrecedenceEngine(model, threshold=0.75)
    message = TimestampedMessage("a", 0.0, message_id=1)
    engine.add_message(message)
    with pytest.raises(ValueError):
        engine.add_message(message)
    with pytest.raises(KeyError):
        engine.add_message(TimestampedMessage("zzz", 0.0, message_id=2))
    with pytest.raises(ValueError):
        IncrementalPrecedenceEngine(model, threshold=0.4)
