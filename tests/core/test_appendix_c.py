"""Reproduction of the paper's Appendix C online-sequencing example (APPC).

Two clients: C1 (precise clock) sends messages 1a and 1b, C2 (noisy clock)
sends message 2.  True generation times 100.0, 100.2, 100.3; reported
timestamps 100.0, 100.6, 100.3.  The sequencer must (i) keep all three in one
batch because C2's uncertainty prevents confident separation, (ii) only emit
once every client has shown progress beyond the batch horizon (Q2) and the
safe emission time T_b = max_k T^F_k has passed (Q1).
"""

import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat
from repro.simulation.event_loop import EventLoop
from tests.conftest import make_message

C1_SIGMA = 0.05
C2_SIGMA = 1.0


@pytest.fixture
def online_setup():
    loop = EventLoop(start_time=100.0)
    distributions = {
        "c1": GaussianDistribution(0.0, C1_SIGMA),
        "c2": GaussianDistribution(0.4, C2_SIGMA),
    }
    sequencer = OnlineTommySequencer(
        loop,
        distributions,
        TommyConfig(completeness_mode="heartbeat", p_safe=0.999),
        known_clients=["c1", "c2"],
    )
    return loop, sequencer


def test_step_by_step_batch_growth(online_setup):
    loop, sequencer = online_setup
    msg_1a = make_message("c1", 100.0, true_time=100.0)
    msg_2 = make_message("c2", 100.6, true_time=100.2)
    msg_1b = make_message("c1", 100.3, true_time=100.3)

    # Step 1: 1a arrives and forms a tentative batch of its own
    sequencer.receive(msg_1a, arrival_time=loop.now)
    assert len(sequencer.pending_messages) == 1

    # Step 2: the high-uncertainty message joins the same (still-open) batch
    sequencer.receive(msg_2, arrival_time=loop.now)
    groups = sequencer._tentative_groups()
    assert len(groups[0]) == 2

    # Step 3: 1b, although clearly after 1a locally, cannot be separated from 2
    sequencer.receive(msg_1b, arrival_time=loop.now)
    groups = sequencer._tentative_groups()
    assert len(groups) == 1
    assert len(groups[0]) == 3

    # Step 4: nothing can be emitted before completeness + T_b
    assert sequencer.emitted_batches == []
    sequencer.receive(Heartbeat(client_id="c1", timestamp=200.0), arrival_time=loop.now)
    sequencer.receive(Heartbeat(client_id="c2", timestamp=200.0), arrival_time=loop.now)
    loop.run(until=200.0)
    assert len(sequencer.emitted_batches) == 1
    batch = sequencer.emitted_batches[0]
    assert batch.size == 3

    # the emission respected the safe emission time of the noisiest member
    t_b = sequencer.safe_emission_time(list(batch.batch.messages))
    assert batch.emitted_at >= t_b - 1e-9


def test_safe_emission_time_dominated_by_noisy_client(online_setup):
    _loop, sequencer = online_setup
    msg_1a = make_message("c1", 100.0, true_time=100.0)
    msg_2 = make_message("c2", 100.6, true_time=100.2)
    t_f_1a = sequencer.model.safe_emission_time(msg_1a, 0.999)
    t_f_2 = sequencer.model.safe_emission_time(msg_2, 0.999)
    assert t_f_2 > t_f_1a
    assert sequencer.safe_emission_time([msg_1a, msg_2]) == pytest.approx(t_f_2)


def test_without_heartbeats_the_batch_is_never_emitted(online_setup):
    loop, sequencer = online_setup
    sequencer.receive(make_message("c1", 100.0, true_time=100.0), arrival_time=loop.now)
    loop.run(until=500.0)
    # c2 never spoke: Q2 cannot be satisfied, so the sequencer must hold the batch
    assert sequencer.emitted_batches == []
    assert len(sequencer.pending_messages) == 1
