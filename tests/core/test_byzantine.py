"""Tests for Byzantine timestamp auditing and mitigation."""

import pytest

from repro.core.byzantine import ByzantineAuditor
from repro.distributions.parametric import GaussianDistribution
from tests.conftest import make_message


def make_auditor(**kwargs):
    defaults = dict(
        client_distributions={
            "honest": GaussianDistribution(0.0, 0.001),
            "cheater": GaussianDistribution(0.0, 0.001),
        },
        min_network_delay=0.0005,
        max_network_delay=0.01,
        tail_probability=1e-4,
        exclusion_threshold=3,
    )
    defaults.update(kwargs)
    return ByzantineAuditor(**defaults)


def test_honest_timestamp_is_plausible():
    auditor = make_auditor()
    message = make_message("honest", timestamp=10.0)
    verdict = auditor.audit(message, arrival_time=10.002)
    assert verdict.plausible
    assert not verdict.suspicious
    assert auditor.violation_count("honest") == 0


def test_backdated_timestamp_is_flagged():
    auditor = make_auditor()
    # claims to have been generated 5 seconds before it arrived, impossible
    # given a 10ms max delay and sub-millisecond clock error
    message = make_message("cheater", timestamp=5.0)
    verdict = auditor.audit(message, arrival_time=10.0)
    assert not verdict.plausible
    assert verdict.clamped_timestamp is not None
    assert verdict.clamped_timestamp > message.timestamp
    assert auditor.violation_count("cheater") == 1


def test_future_dated_timestamp_is_flagged():
    auditor = make_auditor()
    message = make_message("cheater", timestamp=20.0)
    verdict = auditor.audit(message, arrival_time=10.0)
    assert not verdict.plausible
    assert verdict.clamped_timestamp < message.timestamp


def test_exclusion_after_repeated_violations():
    auditor = make_auditor(exclusion_threshold=2)
    for _ in range(2):
        auditor.audit(make_message("cheater", timestamp=0.0), arrival_time=100.0)
    assert auditor.is_excluded("cheater")
    assert auditor.excluded_clients() == ["cheater"]
    assert not auditor.is_excluded("honest")


def test_sanitize_clamps_then_drops():
    auditor = make_auditor(exclusion_threshold=2)
    first = auditor.sanitize(make_message("cheater", timestamp=0.0), arrival_time=100.0)
    assert first is not None
    assert first.timestamp > 0.0  # clamped toward the plausible range
    second = auditor.sanitize(make_message("cheater", timestamp=0.0), arrival_time=200.0)
    assert second is None  # excluded now


def test_sanitize_passes_honest_messages_through():
    auditor = make_auditor()
    message = make_message("honest", timestamp=10.0)
    assert auditor.sanitize(message, arrival_time=10.001) is message


def test_suspicion_score_tracks_violation_fraction():
    auditor = make_auditor(exclusion_threshold=100)
    auditor.audit(make_message("cheater", timestamp=10.0), arrival_time=10.001)
    auditor.audit(make_message("cheater", timestamp=0.0), arrival_time=10.0)
    assert auditor.suspicion_score("cheater") == pytest.approx(0.5)
    assert auditor.suspicion_score("never-seen") == 0.0


def test_plausible_bounds_widen_with_clock_uncertainty():
    auditor = ByzantineAuditor(
        client_distributions={
            "tight": GaussianDistribution(0.0, 0.0001),
            "loose": GaussianDistribution(0.0, 0.1),
        },
        max_network_delay=0.01,
    )
    tight_lo, tight_hi = auditor.plausible_bounds("tight")
    loose_lo, loose_hi = auditor.plausible_bounds("loose")
    assert loose_hi - loose_lo > tight_hi - tight_lo


def test_unknown_client_raises():
    auditor = make_auditor()
    with pytest.raises(KeyError):
        auditor.audit(make_message("stranger", timestamp=1.0), arrival_time=1.0)


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        make_auditor(max_network_delay=0.0001, min_network_delay=0.01)
    with pytest.raises(ValueError):
        make_auditor(min_network_delay=-1.0)
    with pytest.raises(ValueError):
        make_auditor(tail_probability=0.7)
    with pytest.raises(ValueError):
        make_auditor(exclusion_threshold=0)


def test_verdict_history_is_kept():
    auditor = make_auditor()
    auditor.audit(make_message("honest", timestamp=10.0), arrival_time=10.001)
    auditor.audit(make_message("cheater", timestamp=0.0), arrival_time=10.0)
    verdicts = auditor.verdicts
    assert len(verdicts) == 2
    assert verdicts[0].plausible and not verdicts[1].plausible
