"""Tests for TommyConfig validation."""

import pytest

from repro.core.config import TommyConfig


def test_defaults_match_paper():
    config = TommyConfig()
    assert config.threshold == 0.75
    assert config.p_safe == 0.999
    assert config.probability_method == "auto"
    assert config.cycle_policy == "greedy"


def test_invalid_threshold_rejected():
    with pytest.raises(ValueError):
        TommyConfig(threshold=0.4)
    with pytest.raises(ValueError):
        TommyConfig(threshold=1.0)


def test_invalid_p_safe_rejected():
    with pytest.raises(ValueError):
        TommyConfig(p_safe=0.5)
    with pytest.raises(ValueError):
        TommyConfig(p_safe=1.0)


def test_invalid_enumerations_rejected():
    with pytest.raises(ValueError):
        TommyConfig(probability_method="nope")
    with pytest.raises(ValueError):
        TommyConfig(cycle_policy="nope")
    with pytest.raises(ValueError):
        TommyConfig(completeness_mode="nope")


def test_invalid_numeric_parameters_rejected():
    with pytest.raises(ValueError):
        TommyConfig(convolution_points=4)
    with pytest.raises(ValueError):
        TommyConfig(max_network_delay=-1.0)
    with pytest.raises(ValueError):
        TommyConfig(tie_epsilon=0.5)


def test_with_threshold_and_with_p_safe_copy_other_fields():
    config = TommyConfig(threshold=0.8, p_safe=0.99, cycle_policy="eades", seed=5)
    changed_threshold = config.with_threshold(0.6)
    assert changed_threshold.threshold == 0.6
    assert changed_threshold.cycle_policy == "eades"
    assert changed_threshold.seed == 5
    changed_psafe = config.with_p_safe(0.995)
    assert changed_psafe.p_safe == 0.995
    assert changed_psafe.threshold == 0.8
