"""Sequencer snapshot/restore: recover a mid-run shard from durable state.

A supervisor that prefers not to replay a shard's whole frozen slice can
checkpoint ``OnlineTommySequencer.snapshot()`` after each emission and
rehydrate a fresh sequencer with ``restore()``; the restored instance must
then produce exactly the emissions the original would have (same ranks, same
message keys) when fed the remaining traffic.  The snapshot is bounded: it
carries only the pending (unemitted) set, never the emitted history.
"""

from __future__ import annotations

import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.simulation.event_loop import EventLoop
from tests.conftest import make_message


def _make_sequencer(loop, seed=13):
    distributions = {
        "a": GaussianDistribution(0.0, 0.5),
        "b": GaussianDistribution(0.0, 1.5),
    }
    return OnlineTommySequencer(
        loop,
        distributions,
        TommyConfig(completeness_mode="none", p_safe=0.99, seed=seed),
        use_engine=True,
    )


def test_restored_sequencer_matches_original_continuation():
    # traffic shared by both runs: the same message objects, so keys match
    early = [
        make_message("a", 0.0),
        make_message("b", 0.4),
        make_message("a", 6.0),
        make_message("b", 24.5),  # wide sigma: still pending at the snapshot
    ]
    late = [
        make_message("a", 25.0),
        make_message("b", 25.3),
        make_message("a", 40.0),
    ]
    snapshot_time = 25.0

    loop_a = EventLoop()
    original = _make_sequencer(loop_a)
    for message in early:
        original.receive(message, arrival_time=message.timestamp)
    loop_a.run(until=snapshot_time)
    state = original.snapshot()
    assert state["pending"], "fixture should snapshot with work in flight"
    assert state["next_rank"] >= 1, "fixture should snapshot after an emission"

    for message in late:
        original.receive(message, arrival_time=message.timestamp)
    loop_a.run(until=100.0)
    original.flush()
    expected = [
        (batch.rank, tuple(m.key for m in batch.batch.messages))
        for batch in original.emitted_batches
        if batch.rank >= state["next_rank"]
    ]
    assert expected, "fixture should emit after the snapshot point"

    loop_b = EventLoop()
    loop_b.run(until=snapshot_time)  # restored clock resumes at the checkpoint
    restored = _make_sequencer(loop_b)
    restored.restore(state)
    for message in late:
        restored.receive(message, arrival_time=message.timestamp)
    loop_b.run(until=100.0)
    restored.flush()
    produced = [
        (batch.rank, tuple(m.key for m in batch.batch.messages))
        for batch in restored.emitted_batches
    ]
    assert produced == expected


def test_snapshot_is_bounded_to_pending_state():
    loop = EventLoop()
    sequencer = _make_sequencer(loop)
    for index in range(20):
        sequencer.receive(make_message("a", float(index * 10)), arrival_time=index * 10.0)
        loop.run(until=(index + 1) * 10.0)
    loop.run(until=500.0)
    sequencer.flush()
    state = sequencer.snapshot()
    # everything already emitted: the checkpoint retains no per-message history
    assert state["pending"] == ()
    assert state["arrival_times"] == {}
    assert state["next_rank"] == len(sequencer.emitted_batches)


def test_restore_refuses_a_used_sequencer():
    loop = EventLoop()
    sequencer = _make_sequencer(loop)
    state = sequencer.snapshot()
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    with pytest.raises(ValueError):
        sequencer.restore(state)
