"""Tests for threshold batching (paper §3.4)."""

import numpy as np
import pytest

from repro.core.batching import _strict_boundary_strengths, form_batches
from repro.core.relation import LikelyHappenedBefore
from tests.conftest import make_message


def relation_and_order(matrix):
    messages = [make_message(f"c{k}", float(k)) for k in range(len(matrix))]
    relation = LikelyHappenedBefore.from_matrix(messages, matrix)
    order = [message.key for message in messages]
    return relation, order, messages


def test_boundary_inserted_only_above_threshold():
    matrix = [
        [0.0, 0.85, 0.6, 0.55],
        [0.15, 0.0, 0.72, 0.6],
        [0.4, 0.28, 0.0, 0.80],
        [0.45, 0.4, 0.20, 0.0],
    ]
    relation, order, messages = relation_and_order(matrix)
    outcome = form_batches(order, relation, threshold=0.75)
    assert outcome.batch_sizes == (1, 2, 1)
    assert outcome.boundary_probabilities == (0.85, 0.72, 0.80)


def test_low_threshold_approaches_total_order():
    matrix = [
        [0.0, 0.6, 0.6],
        [0.4, 0.0, 0.6],
        [0.4, 0.4, 0.0],
    ]
    relation, order, _ = relation_and_order(matrix)
    outcome = form_batches(order, relation, threshold=0.55)
    assert outcome.batch_sizes == (1, 1, 1)
    assert outcome.singleton_fraction == 1.0


def test_high_threshold_collapses_into_one_batch():
    matrix = [
        [0.0, 0.8, 0.8],
        [0.2, 0.0, 0.8],
        [0.2, 0.2, 0.0],
    ]
    relation, order, _ = relation_and_order(matrix)
    outcome = form_batches(order, relation, threshold=0.9)
    assert outcome.batch_count == 1
    assert outcome.largest_batch == 3


def test_batches_preserve_order_and_assign_consecutive_ranks():
    matrix = [
        [0.0, 0.9, 0.9],
        [0.1, 0.0, 0.9],
        [0.1, 0.1, 0.0],
    ]
    relation, order, messages = relation_and_order(matrix)
    outcome = form_batches(order, relation, threshold=0.75)
    assert [batch.rank for batch in outcome.batches] == [0, 1, 2]
    flattened = [message.key for batch in outcome.batches for message in batch.messages]
    assert flattened == order


def test_empty_order_gives_empty_outcome():
    relation, order, _ = relation_and_order([[0.0, 0.6], [0.4, 0.0]])
    outcome = form_batches([], relation, threshold=0.75)
    assert outcome.batch_count == 0
    assert outcome.largest_batch == 0
    assert outcome.singleton_fraction == 0.0


def test_single_message_is_one_singleton_batch():
    relation, order, messages = relation_and_order([[0.0, 0.6], [0.4, 0.0]])
    outcome = form_batches(order[:1], relation, threshold=0.75)
    assert outcome.batch_sizes == (1,)


def test_invalid_threshold_rejected():
    relation, order, _ = relation_and_order([[0.0, 0.6], [0.4, 0.0]])
    with pytest.raises(ValueError):
        form_batches(order, relation, threshold=0.3)
    with pytest.raises(ValueError):
        form_batches(order, relation, threshold=1.0)


def test_invalid_mode_rejected():
    relation, order, _ = relation_and_order([[0.0, 0.6], [0.4, 0.0]])
    with pytest.raises(ValueError):
        form_batches(order, relation, threshold=0.75, mode="fuzzy")


def test_strict_mode_merges_across_uncertain_non_adjacent_pair():
    """Appendix C shape: adjacent rule splits after the first message, the
    strict rule keeps everything together because the (0, 2) pair is weak."""
    matrix = [
        [0.0, 0.99, 0.60],
        [0.01, 0.0, 0.55],
        [0.40, 0.45, 0.0],
    ]
    relation, order, _ = relation_and_order(matrix)
    adjacent = form_batches(order, relation, threshold=0.75, mode="adjacent")
    strict = form_batches(order, relation, threshold=0.75, mode="strict")
    assert adjacent.batch_sizes == (1, 2)
    assert strict.batch_sizes == (3,)


def test_strict_mode_equals_adjacent_when_all_pairs_confident():
    matrix = [
        [0.0, 0.9, 0.95],
        [0.1, 0.0, 0.9],
        [0.05, 0.1, 0.0],
    ]
    relation, order, _ = relation_and_order(matrix)
    adjacent = form_batches(order, relation, threshold=0.75, mode="adjacent")
    strict = form_batches(order, relation, threshold=0.75, mode="strict")
    assert adjacent.batch_sizes == strict.batch_sizes == (1, 1, 1)


def test_strict_boundary_strengths_are_minima_over_straddling_pairs():
    matrix = [
        [0.0, 0.9, 0.7],
        [0.1, 0.0, 0.8],
        [0.3, 0.2, 0.0],
    ]
    relation, order, _ = relation_and_order(matrix)
    strict = form_batches(order, relation, threshold=0.75, mode="strict")
    # boundary 0: min(p(0,1), p(0,2)) = 0.7 ; boundary 1: min(p(0,2), p(1,2)) = 0.7
    assert strict.boundary_probabilities == pytest.approx((0.7, 0.7))


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_strict_boundary_strengths_pinned_on_randomized_order(seed):
    """Regression for the suffix-minimum rewrite: the strengths of every
    boundary on a randomized order must equal the brute-force minimum over
    all straddling pairs, and the resulting strict batching must match."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 14))
    upper = rng.uniform(0.0, 1.0, size=(n, n))
    matrix = np.where(np.triu(np.ones((n, n)), 1) > 0, upper, 1.0 - upper.T)
    np.fill_diagonal(matrix, 0.0)
    messages = [make_message(f"c{k}", float(k)) for k in range(n)]
    relation = LikelyHappenedBefore.from_matrix(messages, matrix.tolist())
    order = [message.key for message in messages]
    rng.shuffle(order)

    strengths = _strict_boundary_strengths(order, relation)
    brute_force = [
        min(
            relation.probability(order[i], order[j])
            for i in range(k + 1)
            for j in range(k + 1, n)
        )
        for k in range(n - 1)
    ]
    assert strengths == brute_force  # exact, not approx: same floats, same minima

    outcome = form_batches(order, relation, threshold=0.6, mode="strict")
    flattened = [message.key for batch in outcome.batches for message in batch.messages]
    assert flattened == list(order)
    assert outcome.boundary_probabilities == tuple(brute_force)
