"""Property tests: online drained output vs the offline sequencer.

The online sequencer's tentative batching is defined as the offline strict
pipeline applied to the pending set, so draining it must reproduce the
offline sequencer's answer on the same message set.  These properties
protect the engine refactor end-to-end: any divergence in the incremental
matrix, tournament maintenance or boundary minima shows up as an
online/offline mismatch.
"""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.core.sequencer import TommySequencer
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat, TimestampedMessage
from repro.simulation.event_loop import EventLoop


def build_workload(seed, num_clients=8, num_messages=60, empirical=False):
    rng = np.random.default_rng(seed)
    if empirical:
        distributions = {
            f"c{i}": EmpiricalDistribution.from_samples(
                rng.normal(float(rng.normal(0.0, 0.02)), float(rng.uniform(0.02, 0.4)), 250),
                bins=64,
            )
            for i in range(num_clients)
        }
    else:
        distributions = {
            f"c{i}": GaussianDistribution(
                float(rng.normal(0.0, 0.02)), float(rng.uniform(0.005, 0.4))
            )
            for i in range(num_clients)
        }
    messages = []
    t = 0.0
    for k in range(num_messages):
        t += float(rng.exponential(0.08))
        client = f"c{int(rng.integers(num_clients))}"
        messages.append(
            TimestampedMessage(
                client_id=client,
                timestamp=t + float(rng.normal(0.0, 0.03)),
                true_time=t,
                message_id=seed * 1_000_000 + k,
            )
        )
    return distributions, messages


def offline_strict_batches(distributions, messages, config):
    offline = TommySequencer(distributions, config._replace(batching_mode="strict"))
    return [tuple(m.key for m in batch.messages) for batch in offline.sequence(messages).batches]


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_flush_of_pending_set_equals_offline_strict_batches(seed):
    """Flushing without any timed emission is exactly the offline pipeline."""
    distributions, messages = build_workload(seed)
    config = TommyConfig(p_safe=0.99, completeness_mode="none", seed=5)
    loop = EventLoop()
    online = OnlineTommySequencer(loop, distributions, config)
    for message in messages:
        online.receive(message, arrival_time=0.0)
    online.flush()
    online_batches = [
        tuple(m.key for m in emitted.batch.messages) for emitted in online.emitted_batches
    ]
    assert online_batches == offline_strict_batches(distributions, messages, config)


@pytest.mark.parametrize("completeness_mode", ["none", "bounded_delay", "heartbeat"])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_drained_online_order_equals_offline_order(seed, completeness_mode):
    """A full timed run (emissions + final flush) preserves the offline
    linear order of the same message set."""
    distributions, messages = build_workload(seed)
    config = TommyConfig(
        p_safe=0.99,
        completeness_mode=completeness_mode,
        max_network_delay=0.5,
        seed=5,
    )
    loop = EventLoop()
    online = OnlineTommySequencer(loop, distributions, config)
    horizon = 0.0
    for message in messages:
        arrival = message.true_time
        horizon = max(horizon, arrival)
        loop.schedule_at(arrival, online.receive, message)
    if completeness_mode == "heartbeat":
        for client in distributions:
            loop.schedule_at(
                horizon + 1.0,
                online.receive,
                Heartbeat(client_id=client, timestamp=horizon + 100.0),
            )
    loop.run(until=horizon + 100.0)
    online.flush()

    online_order = [
        m.key for emitted in online.emitted_batches for m in emitted.batch.messages
    ]
    offline_order = [
        key for batch in offline_strict_batches(distributions, messages, config) for key in batch
    ]
    assert sorted(online_order) == sorted(m.key for m in messages)  # nothing lost
    assert online_order == offline_order


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_flush_with_empirical_clients_equals_offline_strict_batches(seed):
    """The empirical pair-table fast path drains to the offline answer too."""
    distributions, messages = build_workload(seed, empirical=True, num_messages=40)
    config = TommyConfig(
        p_safe=0.99, completeness_mode="none", seed=5, convolution_points=512
    )
    loop = EventLoop()
    online = OnlineTommySequencer(loop, distributions, config)
    for message in messages:
        online.receive(message, arrival_time=0.0)
    online.flush()
    online_batches = [
        tuple(m.key for m in emitted.batch.messages) for emitted in online.emitted_batches
    ]
    assert online_batches == offline_strict_batches(distributions, messages, config)
    assert online.engine_stats().table_evaluations > 0
    assert online.engine_stats().scalar_evaluations == 0


@pytest.mark.parametrize("completeness_mode", ["none", "heartbeat"])
@pytest.mark.parametrize("seed", [0, 1])
def test_drained_online_order_with_empirical_clients(seed, completeness_mode):
    distributions, messages = build_workload(seed, empirical=True, num_messages=40)
    config = TommyConfig(
        p_safe=0.99,
        completeness_mode=completeness_mode,
        max_network_delay=0.5,
        seed=5,
        convolution_points=512,
    )
    loop = EventLoop()
    online = OnlineTommySequencer(loop, distributions, config)
    horizon = 0.0
    for message in messages:
        horizon = max(horizon, message.true_time)
        loop.schedule_at(message.true_time, online.receive, message)
    if completeness_mode == "heartbeat":
        for client in distributions:
            loop.schedule_at(
                horizon + 1.0,
                online.receive,
                Heartbeat(client_id=client, timestamp=horizon + 100.0),
            )
    loop.run(until=horizon + 100.0)
    online.flush()
    online_order = [
        m.key for emitted in online.emitted_batches for m in emitted.batch.messages
    ]
    offline_order = [
        key for batch in offline_strict_batches(distributions, messages, config) for key in batch
    ]
    assert sorted(online_order) == sorted(m.key for m in messages)
    assert online_order == offline_order
