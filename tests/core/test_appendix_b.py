"""Reproduction of the paper's Appendix B worked example (experiment APPB).

Four messages A, B, C, D with the given pairwise preceding probabilities must
produce the tournament A->B->C->D, the unique topological order A, B, C, D,
and with threshold 0.75 the batches {A}, {B, C}, {D}.
"""

import pytest

from repro.core.batching import form_batches
from repro.core.config import TommyConfig
from repro.core.relation import LikelyHappenedBefore
from repro.core.sequencer import TommySequencer
from repro.core.tournament import TournamentGraph
from tests.conftest import make_message

APPENDIX_B_MATRIX = [
    # A      B      C      D
    [0.00, 0.85, 0.65, 0.92],  # A
    [0.15, 0.00, 0.72, 0.68],  # B
    [0.35, 0.28, 0.00, 0.80],  # C
    [0.08, 0.32, 0.20, 0.00],  # D
]


@pytest.fixture
def appendix_b_relation():
    messages = [make_message(label, float(k)) for k, label in enumerate("ABCD")]
    return LikelyHappenedBefore.from_matrix(messages, APPENDIX_B_MATRIX), messages


def test_tournament_edges_match_the_paper(appendix_b_relation):
    relation, messages = appendix_b_relation
    a, b, c, d = (message.key for message in messages)
    tournament = TournamentGraph.from_relation(relation)
    expected_edges = {
        (a, b): 0.85,
        (a, c): 0.65,
        (a, d): 0.92,
        (b, c): 0.72,
        (b, d): 0.68,
        (c, d): 0.80,
    }
    actual = {(edge.source, edge.target): edge.probability for edge in tournament.edges()}
    assert actual == pytest.approx(expected_edges)


def test_linear_order_is_a_b_c_d(appendix_b_relation):
    relation, messages = appendix_b_relation
    tournament = TournamentGraph.from_relation(relation)
    assert tournament.is_transitive_tournament()
    assert tournament.topological_order() == [message.key for message in messages]


def test_batches_at_threshold_075_are_a_bc_d(appendix_b_relation):
    relation, messages = appendix_b_relation
    tournament = TournamentGraph.from_relation(relation)
    outcome = form_batches(tournament.topological_order(), relation, threshold=0.75)
    labels = [[message.client_id for message in batch.messages] for batch in outcome.batches]
    assert labels == [["A"], ["B", "C"], ["D"]]


def test_higher_threshold_merges_more_messages(appendix_b_relation):
    relation, messages = appendix_b_relation
    tournament = TournamentGraph.from_relation(relation)
    order = tournament.topological_order()
    coarse = form_batches(order, relation, threshold=0.9)
    fine = form_batches(order, relation, threshold=0.6)
    # adjacent probabilities are 0.85, 0.72, 0.80: none exceed 0.9, all exceed 0.6
    assert coarse.batch_count == 1
    assert fine.batch_count == 4


def test_sequencer_entry_point_reproduces_the_batches(appendix_b_relation):
    relation, messages = appendix_b_relation
    sequencer = TommySequencer(config=TommyConfig(threshold=0.75))
    result = sequencer.sequence_relation(relation)
    assert [batch.size for batch in result.batches] == [1, 2, 1]
    ranks = result.rank_of()
    a, b, c, d = (message.key for message in messages)
    assert ranks[a] == 0
    assert ranks[b] == ranks[c] == 1
    assert ranks[d] == 2
