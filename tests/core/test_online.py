"""Tests for the online Tommy sequencer (paper §3.5)."""

import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat
from repro.simulation.event_loop import EventLoop
from tests.conftest import make_message


def make_sequencer(loop, sigmas, **config_kwargs):
    defaults = dict(completeness_mode="none", p_safe=0.999)
    defaults.update(config_kwargs)
    distributions = {client: GaussianDistribution(0.0, sigma) for client, sigma in sigmas.items()}
    return OnlineTommySequencer(loop, distributions, TommyConfig(**defaults))


def test_batch_waits_for_safe_emission_time():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0})
    message = make_message("a", timestamp=0.0)
    sequencer.receive(message, arrival_time=0.0)
    # immediately nothing emitted: the safe emission time is ~3 sigma in the future
    assert sequencer.emitted_batches == []
    loop.run(until=10.0)
    assert len(sequencer.emitted_batches) == 1
    emitted = sequencer.emitted_batches[0]
    assert emitted.emitted_at >= sequencer.model.safe_emission_time(message, 0.999) - 1e-9


def test_safe_emission_time_is_max_over_batch():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"narrow": 0.1, "wide": 5.0})
    narrow = make_message("narrow", 0.0)
    wide = make_message("wide", 0.1)
    batch_time = sequencer.safe_emission_time([narrow, wide])
    assert batch_time == pytest.approx(
        max(
            sequencer.model.safe_emission_time(narrow, 0.999),
            sequencer.model.safe_emission_time(wide, 0.999),
        )
    )


def test_well_separated_messages_emit_in_separate_batches():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 0.1, "b": 0.1})
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    loop.run(until=5.0)
    sequencer.receive(make_message("b", 10.0), arrival_time=10.0)
    loop.run(until=20.0)
    assert len(sequencer.emitted_batches) == 2
    assert [batch.rank for batch in sequencer.emitted_batches] == [0, 1]


def test_late_message_joins_open_batch_appendix_c():
    """Appendix C: a high-uncertainty message forces later messages into its batch."""
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"c1": 0.05, "c2": 2.0}, p_safe=0.99)
    sequencer.receive(make_message("c1", 100.0, true_time=100.0), arrival_time=loop.now)
    sequencer.receive(make_message("c2", 100.6, true_time=100.2), arrival_time=loop.now)
    sequencer.receive(make_message("c1", 100.3, true_time=100.3), arrival_time=loop.now)
    loop.run(until=200.0)
    assert len(sequencer.emitted_batches) == 1
    assert sequencer.emitted_batches[0].size == 3


def test_heartbeat_completeness_gates_emission():
    loop = EventLoop()
    distributions = {"a": GaussianDistribution(0.0, 0.1), "b": GaussianDistribution(0.0, 0.1)}
    sequencer = OnlineTommySequencer(
        loop, distributions, TommyConfig(completeness_mode="heartbeat", p_safe=0.9)
    )
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    loop.run(until=50.0)
    # client b has never been heard from, so the batch must not be emitted
    assert sequencer.emitted_batches == []
    sequencer.receive(Heartbeat(client_id="b", timestamp=60.0), arrival_time=50.0)
    loop.run(until=100.0)
    assert len(sequencer.emitted_batches) == 1


def test_bounded_delay_completeness_waits_for_the_delay_bound():
    loop = EventLoop()
    distributions = {"a": GaussianDistribution(0.0, 0.1)}
    sequencer = OnlineTommySequencer(
        loop,
        distributions,
        TommyConfig(completeness_mode="bounded_delay", max_network_delay=20.0, p_safe=0.9),
    )
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    loop.run(until=10.0)
    assert sequencer.emitted_batches == []
    loop.run(until=30.0)
    assert len(sequencer.emitted_batches) == 1


def test_flush_emits_everything_pending():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0, "b": 1.0})
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    sequencer.receive(make_message("b", 100.0), arrival_time=0.0)
    assert sequencer.pending_messages
    sequencer.flush()
    assert sequencer.pending_messages == []
    assert sum(batch.size for batch in sequencer.emitted_batches) == 2


def test_result_builds_consecutive_ranked_batches():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 0.1, "b": 0.1})
    sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
    sequencer.receive(make_message("b", 10.0), arrival_time=0.0)
    loop.run(until=50.0)
    result = sequencer.result()
    assert result.batch_count == 2
    assert result.metadata["sequencer"] == "tommy-online"


def test_emission_latency_reported_per_message():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 0.5})
    sequencer.receive(make_message("a", 0.0, true_time=0.0), arrival_time=0.0)
    loop.run(until=10.0)
    latencies = sequencer.emission_latencies()
    assert len(latencies) == 1
    assert latencies[0] > 0


def test_higher_p_safe_delays_emission():
    emissions = {}
    for p_safe in (0.9, 0.9999):
        loop = EventLoop()
        sequencer = make_sequencer(loop, {"a": 1.0}, p_safe=p_safe)
        sequencer.receive(make_message("a", 0.0), arrival_time=0.0)
        loop.run(until=50.0)
        emissions[p_safe] = sequencer.emitted_batches[0].emitted_at
    assert emissions[0.9999] > emissions[0.9]


def test_unknown_client_message_rejected():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0})
    with pytest.raises(KeyError):
        sequencer.receive(make_message("unknown", 0.0), arrival_time=0.0)


def test_unsupported_item_type_rejected():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0})
    with pytest.raises(TypeError):
        sequencer.receive("not-a-message", arrival_time=0.0)


def test_register_client_extends_known_set():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0})
    sequencer.register_client("b", GaussianDistribution(0.0, 1.0))
    sequencer.receive(make_message("b", 0.0), arrival_time=0.0)
    loop.run(until=20.0)
    assert len(sequencer.emitted_batches) == 1


def test_arrival_time_is_recorded():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0})
    message = make_message("a", 0.0)
    sequencer.receive(message, arrival_time=1.25)
    assert sequencer.arrival_time_of(message) == 1.25


@pytest.mark.parametrize("use_engine", [True, False])
def test_emission_releases_per_message_bookkeeping(use_engine):
    """Regression: ``_arrival_times`` grew without bound for the sequencer's
    lifetime because ``_emit`` never pruned emitted keys (the ``.get(key,
    self.now)`` default in ``_batch_age`` masked the leak)."""
    loop = EventLoop()
    distributions = {"a": GaussianDistribution(0.0, 0.1), "b": GaussianDistribution(0.0, 0.1)}
    sequencer = OnlineTommySequencer(
        loop,
        distributions,
        TommyConfig(completeness_mode="none", p_safe=0.9),
        use_engine=use_engine,
    )
    for index in range(20):
        message = make_message("a" if index % 2 == 0 else "b", float(10 * index))
        sequencer.receive(message, arrival_time=float(10 * index))
        loop.run(until=10.0 * (index + 1))
    assert len(sequencer.emitted_batches) > 10
    pending_keys = {message.key for message in sequencer.pending_messages}
    # bookkeeping covers only what is still pending, not the whole history
    assert set(sequencer._arrival_times) == pending_keys
    assert len(sequencer._arrival_times) <= len(pending_keys)
    if use_engine:
        assert sequencer.engine.size == len(pending_keys)
        assert set(sequencer.engine.message_keys) == pending_keys


def test_batch_age_still_tracks_oldest_pending_arrival():
    loop = EventLoop()
    sequencer = make_sequencer(loop, {"a": 1.0, "b": 1.0})
    first = make_message("a", 100.0)
    second = make_message("b", 100.1)
    sequencer.receive(first, arrival_time=0.0)
    loop.run(until=2.0)
    sequencer.receive(second, arrival_time=2.0)
    assert sequencer._batch_age([first, second]) == pytest.approx(2.0)
