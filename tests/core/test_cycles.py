"""Tests for cycle-breaking policies on intransitive relations."""

import networkx as nx
import numpy as np
import pytest

from repro.core.cycles import (
    break_cycles_greedy,
    break_cycles_stochastic,
    eades_linear_arrangement,
    remove_backward_edges,
    resolve_cycles,
)
from repro.core.relation import LikelyHappenedBefore
from repro.core.tournament import TournamentGraph
from tests.conftest import make_message


def cyclic_tournament():
    """Three-message rock-paper-scissors cycle with one weak edge."""
    messages = [make_message("a", 0.0), make_message("b", 1.0), make_message("c", 2.0)]
    matrix = [
        [0.0, 0.9, 0.2],
        [0.1, 0.0, 0.8],
        [0.8, 0.2, 0.0],
    ]
    relation = LikelyHappenedBefore.from_matrix(messages, matrix)
    return TournamentGraph.from_relation(relation), messages


def test_greedy_removes_lowest_probability_cycle_edge():
    tournament, messages = cyclic_tournament()
    resolution = break_cycles_greedy(tournament.graph)
    assert resolution.was_cyclic
    assert resolution.policy == "greedy"
    assert len(resolution.removed_edges) == 1
    # weakest edge in the cycle is c -> a with probability 0.8 vs 0.9/0.8... the
    # minimum-probability edge among the cycle's edges is removed
    removed = resolution.removed_edges[0]
    assert removed.probability == pytest.approx(0.8)
    assert nx.is_directed_acyclic_graph(tournament.graph)


def test_greedy_on_acyclic_graph_is_noop():
    messages = [make_message("a", 0.0), make_message("b", 1.0)]
    relation = LikelyHappenedBefore.from_matrix(messages, [[0.0, 0.9], [0.1, 0.0]])
    tournament = TournamentGraph.from_relation(relation)
    resolution = break_cycles_greedy(tournament.graph)
    assert not resolution.was_cyclic
    assert resolution.removed_edges == ()


def test_stochastic_policy_yields_acyclic_graph():
    tournament, _ = cyclic_tournament()
    resolution = break_cycles_stochastic(tournament.graph, np.random.default_rng(0))
    assert resolution.was_cyclic
    assert nx.is_directed_acyclic_graph(tournament.graph)
    assert len(resolution.removed_edges) >= 1


def test_stochastic_policy_varies_with_rng_over_many_rounds():
    removed_probabilities = set()
    for seed in range(30):
        tournament, _ = cyclic_tournament()
        resolution = break_cycles_stochastic(tournament.graph, np.random.default_rng(seed))
        removed_probabilities.add(round(resolution.removed_edges[0].probability, 3))
    # over many rounds different edges get removed (stochastic fairness)
    assert len(removed_probabilities) > 1


def test_eades_arrangement_covers_all_nodes():
    tournament, messages = cyclic_tournament()
    order = eades_linear_arrangement(tournament.graph)
    assert sorted(order) == sorted(message.key for message in messages)


def test_remove_backward_edges_makes_graph_acyclic():
    tournament, _ = cyclic_tournament()
    order = eades_linear_arrangement(tournament.graph)
    resolution = remove_backward_edges(tournament.graph, order)
    assert nx.is_directed_acyclic_graph(tournament.graph)
    assert resolution.policy == "eades"


def test_resolve_cycles_dispatches_policies():
    for policy in ("greedy", "stochastic", "eades"):
        tournament, _ = cyclic_tournament()
        resolution = resolve_cycles(tournament.graph, policy, rng=np.random.default_rng(1))
        assert nx.is_directed_acyclic_graph(tournament.graph)
        assert resolution.policy == policy


def test_resolve_cycles_unknown_policy_rejected():
    tournament, _ = cyclic_tournament()
    with pytest.raises(ValueError):
        resolve_cycles(tournament.graph, "bogus")


def test_removed_probability_mass_accumulates():
    tournament, _ = cyclic_tournament()
    resolution = break_cycles_greedy(tournament.graph)
    assert resolution.removed_probability_mass == pytest.approx(
        sum(edge.probability for edge in resolution.removed_edges)
    )
