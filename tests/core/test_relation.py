"""Tests for the likely-happened-before relation."""

import pytest

from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore, PairProbability
from repro.distributions.parametric import GaussianDistribution
from tests.conftest import make_message


def simple_model():
    model = PrecedenceModel()
    model.register_client("a", GaussianDistribution(0.0, 1.0))
    model.register_client("b", GaussianDistribution(0.0, 1.0))
    model.register_client("c", GaussianDistribution(0.0, 1.0))
    return model


def test_from_model_covers_all_ordered_pairs():
    messages = [make_message("a", 0.0), make_message("b", 1.0), make_message("c", 2.0)]
    relation = LikelyHappenedBefore.from_model(messages, simple_model())
    assert len(relation) == 3
    assert len(list(relation.pairs())) == 6  # both directions for each unordered pair


def test_probabilities_are_complementary():
    messages = [make_message("a", 0.0), make_message("b", 0.7)]
    relation = LikelyHappenedBefore.from_model(messages, simple_model())
    forward = relation.probability(messages[0].key, messages[1].key)
    backward = relation.probability(messages[1].key, messages[0].key)
    assert forward + backward == pytest.approx(1.0)
    assert forward > 0.5


def test_confident_pairs_filters_by_threshold():
    messages = [make_message("a", 0.0), make_message("b", 10.0)]
    relation = LikelyHappenedBefore.from_model(messages, simple_model())
    assert len(relation.confident_pairs(0.99)) == 1
    assert len(relation.confident_pairs(0.0)) == 2


def test_from_matrix_round_trips_appendix_b_values():
    messages = [make_message("a", 0.0), make_message("b", 1.0)]
    relation = LikelyHappenedBefore.from_matrix(messages, [[0.0, 0.85], [0.15, 0.0]])
    assert relation.probability(messages[0].key, messages[1].key) == 0.85
    assert relation.probability(messages[1].key, messages[0].key) == 0.15


def test_from_matrix_validates_shape_and_complementarity():
    messages = [make_message("a", 0.0), make_message("b", 1.0)]
    with pytest.raises(ValueError):
        LikelyHappenedBefore.from_matrix(messages, [[0.0, 0.85]])
    with pytest.raises(ValueError):
        LikelyHappenedBefore.from_matrix(messages, [[0.0, 0.85], [0.3, 0.0]])
    with pytest.raises(ValueError):
        LikelyHappenedBefore.from_matrix(messages, [[0.0, 1.5], [-0.5, 0.0]])


def test_message_lookup_by_key():
    messages = [make_message("a", 0.0), make_message("b", 1.0)]
    relation = LikelyHappenedBefore.from_model(messages, simple_model())
    assert relation.message(messages[0].key) is messages[0]
    assert set(relation.message_keys) == {messages[0].key, messages[1].key}
    assert len(relation.messages()) == 2


def test_duplicate_messages_rejected():
    message = make_message("a", 0.0)
    with pytest.raises(ValueError):
        LikelyHappenedBefore([message, message], {})


def test_pair_probability_validation():
    with pytest.raises(ValueError):
        PairProbability(source=("a", 1), target=("b", 2), probability=1.5)
    pair = PairProbability(source=("a", 1), target=("b", 2), probability=0.8)
    assert pair.reversed_probability == pytest.approx(0.2)
