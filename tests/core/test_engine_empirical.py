"""Parity tests for the empirical (pair-table) fast path of the engine.

The contract mirrors the Gaussian engine tests: for empirical/learned/
mixture client distributions the engine-backed online sequencer must emit
byte-identical batches to the reference recompute-everything path while
performing *zero* scalar probability evaluations — the pair-table kernel
replaces the scalar FFT fallback bit-for-bit.
"""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.engine import (
    EngineStats,
    IncrementalPrecedenceEngine,
    PairTableCache,
    cross_probability_matrix,
)
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution, LaplaceDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop


def fingerprint(sequencer):
    return [
        (
            emitted.batch.rank,
            tuple(message.key for message in emitted.batch.messages),
            emitted.emitted_at,
            emitted.safe_emission_time,
        )
        for emitted in sequencer.emitted_batches
    ]


def empirical_distributions(rng, num_clients):
    """Histogram distributions like those the probe learner produces."""
    distributions = {}
    for i in range(num_clients):
        sigma = float(rng.uniform(0.01, 0.2))
        samples = rng.normal(float(rng.normal(0.0, 0.02)), sigma, 300)
        distributions[f"c{i}"] = EmpiricalDistribution.from_samples(samples, bins=64)
    return distributions


def mixed_distributions(rng, num_clients):
    """Gaussian + empirical + mixture clients in one model (mixed pairs)."""
    distributions = {}
    for i in range(num_clients):
        kind = i % 3
        sigma = float(rng.uniform(0.02, 0.2))
        if kind == 0:
            distributions[f"c{i}"] = GaussianDistribution(0.0, sigma)
        elif kind == 1:
            samples = rng.normal(0.0, sigma, 300)
            distributions[f"c{i}"] = EmpiricalDistribution.from_samples(samples, bins=64)
        else:
            distributions[f"c{i}"] = MixtureDistribution(
                [GaussianDistribution(-sigma, 0.5 * sigma), LaplaceDistribution(sigma, 0.4 * sigma)],
                [0.6, 0.4],
            )
    return distributions


def stream_run(distribution_factory, use_engine, seed, pair_tables=True, num_messages=60):
    rng = np.random.default_rng(seed)
    distributions = distribution_factory(rng, 6)
    loop = EventLoop()
    # modest convolution grids keep the many per-pair FFTs fast in CI; both
    # variants share the resolution so parity is unaffected
    config = TommyConfig(
        p_safe=0.99, completeness_mode="none", seed=7, convolution_points=512
    )
    sequencer = OnlineTommySequencer(
        loop, distributions, config, use_engine=use_engine, engine_pair_tables=pair_tables
    )
    t = 0.0
    for k in range(num_messages):
        t += float(rng.exponential(0.05))
        client = f"c{int(rng.integers(6))}"
        sigma = distributions[client].std
        message = TimestampedMessage(
            client_id=client,
            timestamp=t + float(rng.normal(0.0, sigma)),
            true_time=t,
            message_id=seed * 1_000_000 + 500_000 + k,
        )
        loop.schedule_at(t, sequencer.receive, message)
    loop.run(until=t + 50.0)
    sequencer.flush()
    return sequencer


@pytest.mark.parametrize(
    "factory,seed,num_messages",
    [
        (empirical_distributions, 0, 60),
        (empirical_distributions, 1, 60),
        (empirical_distributions, 2, 60),
        # mixture clients pay the reference path's uncached quantile
        # bisections, so the mixed runs stay small
        (mixed_distributions, 0, 30),
        (mixed_distributions, 1, 30),
    ],
)
def test_empirical_stream_parity_with_zero_scalar_evaluations(factory, seed, num_messages):
    engine_run = stream_run(factory, True, seed, num_messages=num_messages)
    reference_run = stream_run(factory, False, seed, num_messages=num_messages)
    assert fingerprint(engine_run) == fingerprint(reference_run)
    stats = engine_run.engine_stats()
    assert stats.table_evaluations > 0
    assert stats.scalar_evaluations == 0
    assert engine_run.model.probability_evaluations == 0
    assert reference_run.model.probability_evaluations > 100


@pytest.mark.parametrize("seed", [0, 3])
def test_scalar_fallback_mode_still_matches_reference(seed):
    """``pair_tables=False`` (the benchmark baseline mode) stays correct."""
    fallback_run = stream_run(empirical_distributions, True, seed, pair_tables=False)
    reference_run = stream_run(empirical_distributions, False, seed)
    assert fingerprint(fallback_run) == fingerprint(reference_run)
    stats = fallback_run.engine_stats()
    assert stats.scalar_evaluations > 0
    assert stats.table_evaluations == 0


def test_first_tentative_group_equals_full_batching_head():
    rng = np.random.default_rng(11)
    model = PrecedenceModel()
    distributions = mixed_distributions(rng, 6)
    for client, distribution in distributions.items():
        model.register_client(client, distribution)
    engine = IncrementalPrecedenceEngine(model, threshold=0.75)
    assert engine.first_tentative_group() is None
    for k in range(40):
        client = f"c{int(rng.integers(6))}"
        engine.add_message(
            TimestampedMessage(client, float(rng.normal(0, 0.3)), message_id=700_000 + k)
        )
        first = [m.key for m in engine.first_tentative_group()]
        full = [[m.key for m in group] for group in engine.tentative_groups()]
        assert first == full[0]


def test_pair_table_cache_invalidation_rebuilds_tables():
    model = PrecedenceModel()
    rng = np.random.default_rng(2)
    model.register_client("a", EmpiricalDistribution.from_samples(rng.normal(0, 1, 200)))
    model.register_client("b", EmpiricalDistribution.from_samples(rng.normal(0, 2, 200)))
    stats = EngineStats()
    cache = PairTableCache(model, stats=stats)
    grid_before, cdf_before = cache.table("a", "b")
    assert cache.table("a", "b") is not None
    assert stats.pair_tables_built == 1  # second lookup was cached
    # refresh b: the model drops its pair difference; the cache must follow
    model.register_client("b", EmpiricalDistribution.from_samples(rng.normal(0.5, 1, 200)))
    cache.invalidate_client("b")
    grid_after, cdf_after = cache.table("a", "b")
    assert stats.pair_tables_built == 2
    assert not (
        grid_after.shape == grid_before.shape and np.array_equal(grid_after, grid_before)
    )


def test_cross_probability_matrix_bitwise_on_empirical_clients():
    rng = np.random.default_rng(5)
    model = PrecedenceModel()
    scalar_model = PrecedenceModel()
    for name, scale in (("a", 0.5), ("b", 1.0), ("g", 0.2)):
        if name == "g":
            distribution = GaussianDistribution(0.0, scale)
        else:
            distribution = EmpiricalDistribution.from_samples(rng.normal(0, scale, 200))
        model.register_client(name, distribution)
        scalar_model.register_client(name, distribution)
    messages_a = [
        TimestampedMessage(name, float(t), message_id=810_000 + 10 * t + i)
        for i, name in enumerate(("a", "g"))
        for t in range(3)
    ]
    messages_b = [
        TimestampedMessage("b", 0.3 * t, message_id=820_000 + t) for t in range(4)
    ]
    stats = EngineStats()
    matrix = cross_probability_matrix(messages_a, messages_b, model, stats=stats)
    for i, message_a in enumerate(messages_a):
        for j, message_b in enumerate(messages_b):
            assert matrix[i, j] == scalar_model.preceding_probability(message_a, message_b)
    assert stats.table_evaluations == len(messages_a) * len(messages_b)
    assert stats.scalar_evaluations == 0
