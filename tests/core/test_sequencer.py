"""Tests for the offline Tommy sequencer."""

import pytest

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.metrics.ras import rank_agreement_score
from repro.sequencers.oracle import OracleSequencer
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario
from tests.conftest import make_message


def gaussian_clients(sigmas):
    return {client: GaussianDistribution(0.0, sigma) for client, sigma in sigmas.items()}


def test_well_separated_messages_are_totally_ordered():
    sequencer = TommySequencer(gaussian_clients({"a": 0.1, "b": 0.1, "c": 0.1}))
    messages = [make_message("a", 0.0), make_message("b", 10.0), make_message("c", 20.0)]
    result = sequencer.sequence(messages)
    assert result.batch_sizes == (1, 1, 1)
    ordered = result.messages_in_rank_order()
    assert [m.client_id for m in ordered] == ["a", "b", "c"]
    assert result.metadata["transitive"] is True
    assert result.metadata["was_cyclic"] is False


def test_ambiguous_messages_share_a_batch():
    sequencer = TommySequencer(gaussian_clients({"a": 5.0, "b": 5.0}))
    messages = [make_message("a", 0.0), make_message("b", 0.5)]
    result = sequencer.sequence(messages)
    assert result.batch_count == 1
    assert result.batch_sizes == (2,)


def test_threshold_controls_granularity():
    clients = gaussian_clients({"a": 1.0, "b": 1.0, "c": 1.0})
    messages = [make_message("a", 0.0), make_message("b", 1.5), make_message("c", 3.0)]
    fine = TommySequencer(clients, TommyConfig(threshold=0.55)).sequence(messages)
    coarse = TommySequencer(clients, TommyConfig(threshold=0.95)).sequence(messages)
    assert fine.batch_count >= coarse.batch_count


def test_high_uncertainty_client_pulls_others_into_its_batch():
    """Appendix C static view: with strict batching one noisy client merges
    two messages that would otherwise be confidently separable."""
    clients = gaussian_clients({"steady": 0.05, "noisy": 5.0})
    messages = [
        make_message("steady", 100.0, true_time=100.0),
        make_message("noisy", 100.6, true_time=100.2),
        make_message("steady", 100.3, true_time=100.3),
    ]
    strict = TommySequencer(clients, TommyConfig(batching_mode="strict")).sequence(messages)
    ranks = strict.rank_of()
    assert ranks[messages[0].key] == ranks[messages[1].key] == ranks[messages[2].key]
    # the paper's adjacent rule (§3.4) separates the two steady-client messages
    adjacent = TommySequencer(clients, TommyConfig(batching_mode="adjacent")).sequence(messages)
    assert adjacent.batch_count >= strict.batch_count


def test_unregistered_client_raises():
    sequencer = TommySequencer(gaussian_clients({"a": 1.0}))
    with pytest.raises(KeyError):
        sequencer.sequence([make_message("a", 0.0), make_message("unknown", 1.0)])


def test_register_client_after_construction():
    sequencer = TommySequencer()
    sequencer.register_client("a", GaussianDistribution(0.0, 1.0))
    sequencer.register_client("b", GaussianDistribution(0.0, 1.0))
    result = sequencer.sequence([make_message("a", 0.0), make_message("b", 10.0)])
    assert result.batch_count == 2


def test_empty_input_gives_empty_result():
    assert TommySequencer().sequence([]).batch_count == 0


def test_duplicate_messages_rejected():
    sequencer = TommySequencer(gaussian_clients({"a": 1.0}))
    message = make_message("a", 0.0)
    with pytest.raises(ValueError):
        sequencer.sequence([message, message])


def test_metadata_reports_linear_order_and_boundaries():
    sequencer = TommySequencer(gaussian_clients({"a": 0.1, "b": 0.1}))
    messages = [make_message("a", 0.0), make_message("b", 5.0)]
    result = sequencer.sequence(messages)
    assert result.metadata["linear_order"] == [messages[0].key, messages[1].key]
    assert len(result.metadata["boundary_probabilities"]) == 1
    assert result.metadata["batch_sizes"] == [1, 1]


def test_tommy_beats_oracle_agreement_of_wfo_under_heterogeneous_noise():
    """Tommy's ordering should agree with ground truth at least as well as a
    naive timestamp sort when one client has a strongly biased clock."""
    clients = {
        "biased": GaussianDistribution(5.0, 0.5),
        "clean-1": GaussianDistribution(0.0, 0.5),
        "clean-2": GaussianDistribution(0.0, 0.5),
    }
    messages = []
    for index, true_time in enumerate([0.0, 2.0, 4.0, 6.0, 8.0, 10.0]):
        client = ["biased", "clean-1", "clean-2"][index % 3]
        offset = 5.0 if client == "biased" else 0.0
        messages.append(make_message(client, true_time + offset, true_time=true_time))
    tommy_result = TommySequencer(clients, TommyConfig(threshold=0.6)).sequence(messages)
    tommy_ras = rank_agreement_score(tommy_result, messages)

    from repro.sequencers.wfo import WaitsForOneSequencer

    wfo_ras = rank_agreement_score(WaitsForOneSequencer().sequence(messages), messages)
    assert tommy_ras.score >= wfo_ras.score


def test_scenario_end_to_end_better_than_truetime_on_small_gaps():
    scenario = build_scenario(
        ScenarioConfig(
            num_clients=30,
            arrivals=UniformGapArrivals(messages_per_client=1, gap=5.0),
            distribution_factory=lambda i, rng: GaussianDistribution(0.0, 30.0),
            seed=2,
        )
    )
    messages = list(scenario.messages)
    tommy = TommySequencer(scenario.client_distributions, TommyConfig())
    tommy_score = rank_agreement_score(tommy.sequence(messages), messages).score

    from repro.sequencers.truetime import TrueTimeSequencer

    truetime = TrueTimeSequencer(scenario.client_distributions)
    truetime_score = rank_agreement_score(truetime.sequence(messages), messages).score
    assert tommy_score >= truetime_score
