"""Tests for the telemetry hub: stage/event intake and the no-op fast path."""

import pytest

from repro.network.message import TimestampedMessage
from repro.obs.telemetry import (
    LIFECYCLE_STAGES,
    NO_TELEMETRY,
    NullTelemetry,
    Telemetry,
    resolve,
)


def _message(client="client-000", sequence=3):
    return TimestampedMessage(client_id=client, timestamp=1.0, sequence_number=sequence)


def test_stage_records_identity_and_times():
    telemetry = Telemetry()
    telemetry.stage("shard_intake", _message(), 0.25, shard=2)
    (record,) = telemetry.stage_records
    assert record.stage == "shard_intake"
    assert record.client_id == "client-000"
    assert record.sequence == 3
    assert record.shard == 2
    assert record.sim_time == 0.25
    assert record.wall_time > 0.0


def test_stage_wall_override_is_respected():
    telemetry = Telemetry()
    telemetry.stage("emission_check", _message(), 0.5, wall=123.0)
    assert telemetry.stage_records[0].wall_time == 123.0


def test_event_details_are_sorted_for_determinism():
    telemetry = Telemetry()
    telemetry.event("fault", "delay", 0.1, client_id="c", zeta=1, alpha=2)
    (record,) = telemetry.event_records
    assert record.details == (("alpha", 2), ("zeta", 1))


def test_stage_capacity_drops_and_counts():
    telemetry = Telemetry(stage_capacity=2)
    for sequence in range(5):
        telemetry.stage("client_send", _message(sequence=sequence), float(sequence))
    assert len(telemetry.stage_records) == 2
    assert telemetry.dropped_stages == 3


def test_event_capacity_drops_and_counts():
    telemetry = Telemetry(event_capacity=1)
    telemetry.event("gate", "hit", 0.0)
    telemetry.event("gate", "hit", 1.0)
    assert len(telemetry.event_records) == 1
    assert telemetry.dropped_events == 1


def test_capacities_must_be_positive():
    with pytest.raises(ValueError):
        Telemetry(stage_capacity=0)
    with pytest.raises(ValueError):
        Telemetry(event_capacity=0)


def test_sim_fingerprint_excludes_wall_clock():
    first, second = Telemetry(), Telemetry()
    for telemetry, wall in ((first, 1.0), (second, 999.0)):
        telemetry.stage("client_send", _message(), 0.5, wall=wall)
        telemetry.event("fault", "delay", 0.7, client_id="c")
    assert first.sim_fingerprint() == second.sim_fingerprint()
    assert first.stage_records[0].wall_time != second.stage_records[0].wall_time


def test_metrics_shortcuts_hit_the_registry():
    telemetry = Telemetry()
    telemetry.count("c", 2)
    telemetry.observe("h", 1.5)
    telemetry.gauge("g", 3.0)
    snapshot = telemetry.registry.snapshot()
    assert snapshot["counters"] == {"c": 2}
    assert snapshot["gauges"] == {"g": 3.0}
    assert snapshot["histograms"]["h"]["count"] == 1


def test_null_telemetry_is_inert():
    null = NullTelemetry()
    assert not null.enabled
    assert null.registry is None
    null.stage("client_send", _message(), 0.0)
    null.event("fault", "x", 0.0)
    null.count("c")
    null.observe("h", 1.0)
    null.gauge("g", 1.0)
    null.attach("s", lambda: {})
    assert null.sim_fingerprint() == ()


def test_resolve_returns_singleton_for_none():
    assert resolve(None) is NO_TELEMETRY
    telemetry = Telemetry()
    assert resolve(telemetry) is telemetry


def test_lifecycle_stages_are_unique_and_ordered():
    assert len(set(LIFECYCLE_STAGES)) == len(LIFECYCLE_STAGES) == 8
    assert LIFECYCLE_STAGES[0] == "client_send"
    assert LIFECYCLE_STAGES[-1] == "merge_commit"
