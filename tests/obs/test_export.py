"""Tests for the Chrome trace_event and JSON snapshot exporters."""

import json

from repro.network.message import TimestampedMessage
from repro.obs.export import (
    chrome_trace_events,
    metrics_snapshot,
    write_chrome_trace,
    write_metrics_json,
)
from repro.obs.telemetry import Telemetry


def _message(client="client-000", sequence=0):
    return TimestampedMessage(client_id=client, timestamp=0.0, sequence_number=sequence)


def _populated_telemetry():
    telemetry = Telemetry()
    message = _message()
    telemetry.stage("client_send", message, 0.010, wall=1.0)
    telemetry.stage("channel_deliver", message, 0.012, wall=1.1)
    telemetry.stage("shard_intake", message, 0.012, shard=1, wall=1.2)
    telemetry.event("fault", "delay", 0.011, client_id="client-000", extra=5.0)
    telemetry.count("channel.dropped", 2)
    return telemetry


def test_metadata_events_come_first_and_name_every_track():
    events = chrome_trace_events(_populated_telemetry())
    metadata = [event for event in events if event["ph"] == "M"]
    assert events[: len(metadata)] == metadata
    names = {event["name"] for event in metadata}
    assert names == {"process_name", "thread_name"}
    process_names = {
        event["args"]["name"] for event in metadata if event["name"] == "process_name"
    }
    assert "clients" in process_names
    assert "shard-1" in process_names


def test_duration_slices_use_simulated_microseconds():
    events = chrome_trace_events(_populated_telemetry())
    slices = [event for event in events if event["ph"] == "X"]
    assert [event["name"] for event in slices] == ["channel_deliver", "shard_intake"]
    deliver = slices[0]
    assert deliver["ts"] == 10_000.0  # 0.010 s in us
    assert deliver["dur"] == 2_000.0
    assert deliver["cat"] == "lifecycle"
    assert deliver["args"]["client"] == "client-000"
    intake = slices[1]
    assert intake["dur"] == 0.0
    assert intake["pid"] == 10 + 1  # shard pid block


def test_instant_events_are_global_scoped():
    events = chrome_trace_events(_populated_telemetry())
    (instant,) = [event for event in events if event["ph"] == "i"]
    assert instant["name"] == "fault:delay"
    assert instant["s"] == "g"
    assert instant["ts"] == 11_000.0
    assert instant["args"] == {"extra": 5.0}


def test_write_chrome_trace_is_json_loadable(tmp_path):
    path = tmp_path / "trace.json"
    count = write_chrome_trace(_populated_telemetry(), str(path))
    data = json.loads(path.read_text())
    assert data["displayTimeUnit"] == "ms"
    assert len(data["traceEvents"]) == count
    assert all("ph" in event for event in data["traceEvents"])


def test_metrics_snapshot_structure_and_json_file(tmp_path):
    telemetry = _populated_telemetry()
    snapshot = metrics_snapshot(telemetry)
    assert set(snapshot) == {
        "registry",
        "stage_latency",
        "stage_latency_by_shard",
        "records",
    }
    assert snapshot["records"]["stages"] == 3
    assert snapshot["records"]["events"] == 1
    assert snapshot["registry"]["counters"] == {"channel.dropped": 2}
    path = tmp_path / "metrics.json"
    write_metrics_json(telemetry, str(path))
    assert json.loads(path.read_text()) == json.loads(
        json.dumps(snapshot)
    )  # fully JSON-serialisable


def test_trace_is_deterministic_given_equal_sim_streams():
    first = chrome_trace_events(_populated_telemetry())
    second = chrome_trace_events(_populated_telemetry())
    for event in first + second:
        event.get("args", {}).pop("wall_ms", None)
    assert first == second
