"""Tests for the instrumented-workload runner and the telemetry CLI."""

import json

import pytest

from repro.cli import main
from repro.obs.spans import stage_latency_rows
from repro.obs.telemetry import LIFECYCLE_STAGES
from repro.obs.workload import WORKLOAD_NAMES, run_instrumented_workload


def test_unknown_workload_is_rejected():
    with pytest.raises(ValueError):
        run_instrumented_workload("nope")


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_every_workload_records_every_lifecycle_stage(workload):
    run = run_instrumented_workload(workload, num_shards=2, num_clients=6, seed=9)
    assert run.workload == workload
    recorded = {record.stage for record in run.telemetry.stage_records}
    assert recorded == set(LIFECYCLE_STAGES)
    if workload in ("cluster", "learned"):
        assert run.report.fault == "none"
    else:
        assert run.report.fault == "delay"


def test_cluster_workload_skips_learning_and_chaos_sources():
    run = run_instrumented_workload("cluster", num_shards=2, num_clients=6, seed=9)
    sources = run.telemetry.registry.source_names
    assert "cluster.engine" in sources
    assert "refresh" not in sources  # learning is off for the plain cluster
    learned = run_instrumented_workload("learned", num_shards=2, num_clients=6, seed=9)
    assert "refresh" in learned.telemetry.registry.source_names


def test_latency_table_covers_the_full_pipeline():
    run = run_instrumented_workload("cluster", num_shards=2, num_clients=6, seed=9)
    rows = stage_latency_rows(run.telemetry)
    stages = [row["stage"] for row in rows]
    assert stages[0] == "client_send->channel_deliver"
    assert stages[-1].startswith("total (client_send->merge_commit")
    assert len(stages) == len(LIFECYCLE_STAGES)  # 7 hops + 1 total row


def test_observability_report_unifies_every_stats_surface():
    run = run_instrumented_workload("learned", num_shards=2, num_clients=6, seed=9)
    snapshot = run.telemetry.registry.snapshot()
    assert {"cluster.engine", "cluster.learning", "cluster.loop", "refresh"} <= set(
        snapshot["sources"]
    )
    assert snapshot["sources"]["cluster.loop"]["executed"] > 0


def test_cli_telemetry_writes_artifacts_and_prints_table(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    metrics_path = tmp_path / "metrics.json"
    exit_code = main(
        [
            "--num-clients", "6",
            "--shards", "2",
            "--seed", "4",
            "--workload", "cluster",
            "--trace-out", str(trace_path),
            "--metrics-out", str(metrics_path),
            "telemetry",
        ]
    )
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "TELEMETRY" in out
    assert "client_send->channel_deliver" in out
    trace = json.loads(trace_path.read_text())
    assert trace["traceEvents"]
    assert {event["ph"] for event in trace["traceEvents"]} >= {"M", "X"}
    metrics = json.loads(metrics_path.read_text())
    assert metrics["records"]["stages"] > 0


def test_cli_telemetry_chaos_fault_all_falls_back(capsys):
    exit_code = main(
        ["--num-clients", "6", "--shards", "2", "--workload", "chaos", "telemetry"]
    )
    assert exit_code == 0
    captured = capsys.readouterr()
    assert "falls back to 'delay'" in captured.err
