"""Tests for the metrics registry and the common snapshot protocol."""

import pytest

from repro.chaos.controller import ChaosStats
from repro.core.engine import EngineStats
from repro.obs.registry import Histogram, MetricsRegistry, StatsSnapshot
from repro.simulation.event_loop import EventLoop
from repro.sync.refresh import RefreshStats


def test_counter_get_or_create_and_increment():
    registry = MetricsRegistry()
    counter = registry.counter("a")
    counter.inc()
    counter.inc(4)
    assert registry.counter("a") is counter
    assert registry.snapshot()["counters"] == {"a": 5}


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.gauge("g").set(1.5)
    registry.gauge("g").set(2.5)
    assert registry.snapshot()["gauges"] == {"g": 2.5}


def test_histogram_exact_aggregates_and_percentiles():
    histogram = Histogram("h")
    for value in (3.0, 1.0, 2.0, 4.0):
        histogram.observe(value)
    summary = histogram.summary()
    assert summary["count"] == 4
    assert summary["total"] == 10.0
    assert summary["mean"] == 2.5
    assert summary["min"] == 1.0
    assert summary["max"] == 4.0
    assert summary["p50"] == 3.0  # nearest rank over [1, 2, 3, 4]
    assert summary["dropped_samples"] == 0


def test_histogram_capacity_keeps_exact_aggregates():
    histogram = Histogram("h", capacity=2)
    for value in range(10):
        histogram.observe(float(value))
    summary = histogram.summary()
    assert summary["count"] == 10
    assert summary["max"] == 9.0  # exact even though the sample was dropped
    assert summary["dropped_samples"] == 8


def test_histogram_rejects_bad_capacity():
    with pytest.raises(ValueError):
        Histogram("h", capacity=0)
    with pytest.raises(ValueError):
        MetricsRegistry().histogram("h", capacity=-1)


def test_empty_histogram_summary_is_all_zero():
    assert Histogram("h").summary()["count"] == 0
    assert Histogram("h").percentile(0.5) == 0.0


def test_snapshot_is_sorted_and_nested():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc()
    snapshot = registry.snapshot()
    assert list(snapshot) == ["counters", "gauges", "histograms", "sources"]
    assert list(snapshot["counters"]) == ["a", "z"]


@pytest.mark.parametrize(
    "stats", [EngineStats(), ChaosStats(), RefreshStats()], ids=["engine", "chaos", "refresh"]
)
def test_stats_objects_satisfy_the_snapshot_protocol(stats):
    assert isinstance(stats, StatsSnapshot)
    registry = MetricsRegistry()
    registry.attach("stats", stats)
    assert registry.snapshot()["sources"]["stats"] == stats.as_dict()


def test_event_loop_is_attachable_as_source():
    loop = EventLoop()
    loop.schedule_at(1.0, lambda: None)
    loop.run()
    registry = MetricsRegistry()
    registry.attach("loop", loop)
    source = registry.snapshot()["sources"]["loop"]
    assert source["scheduled"] == 1
    assert source["executed"] == 1
    assert source == loop.stats()


def test_callable_sources_are_reevaluated_at_snapshot_time():
    registry = MetricsRegistry()
    stats = EngineStats()
    registry.attach("engine", lambda: stats)
    registry.attach("plain", lambda: {"value": stats.rows_appended})
    stats.rows_appended = 7
    snapshot = registry.snapshot()["sources"]
    assert snapshot["engine"]["rows_appended"] == 7
    assert snapshot["plain"] == {"value": 7}


def test_detach_removes_source_and_tolerates_missing_names():
    registry = MetricsRegistry()
    registry.attach("x", lambda: {})
    registry.detach("x")
    registry.detach("never-attached")
    assert registry.source_names == []


def test_bad_source_raises_type_error():
    registry = MetricsRegistry()
    registry.attach("bad", lambda: 42)
    with pytest.raises(TypeError):
        registry.snapshot()
