"""Tests for span analysis: timelines, transitions and latency tables."""

import pytest

from repro.network.message import TimestampedMessage
from repro.obs.spans import message_timelines, stage_latency_rows, transitions
from repro.obs.telemetry import Telemetry


def _message(client, sequence):
    return TimestampedMessage(client_id=client, timestamp=0.0, sequence_number=sequence)


def _record_pipeline(telemetry, client, sequence, start, step, shard=0):
    for index, stage in enumerate(("client_send", "channel_deliver", "shard_intake")):
        telemetry.stage(
            stage,
            _message(client, sequence),
            start + index * step,
            shard=shard if stage == "shard_intake" else None,
            wall=100.0 + index,
        )


def test_first_record_per_stage_wins():
    telemetry = Telemetry()
    message = _message("a", 0)
    telemetry.stage("shard_intake", message, 1.0, shard=0)
    telemetry.stage("shard_intake", message, 9.0, shard=1)  # failover replay
    timelines = message_timelines(telemetry.stage_records)
    (timeline,) = timelines.values()
    assert len(timeline) == 1
    assert timeline[0].sim_time == 1.0
    assert timeline[0].shard == 0


def test_timelines_are_pipeline_ordered_even_when_recorded_out_of_order():
    telemetry = Telemetry()
    message = _message("a", 0)
    telemetry.stage("shard_intake", message, 2.0, shard=0)
    telemetry.stage("client_send", message, 0.0)
    timeline = message_timelines(telemetry.stage_records)[("a", 0)]
    assert [record.stage for record in timeline] == ["client_send", "shard_intake"]


def test_unknown_stages_are_ignored():
    telemetry = Telemetry()
    telemetry.stage("not_a_stage", _message("a", 0), 0.0)
    assert message_timelines(telemetry.stage_records) == {}


def test_transitions_have_deltas_and_total_row():
    telemetry = Telemetry()
    _record_pipeline(telemetry, "a", 0, start=1.0, step=0.5, shard=3)
    result = transitions(telemetry)
    names = [transition.name for transition in result]
    assert names == [
        "client_send->channel_deliver",
        "channel_deliver->shard_intake",
        "total (client_send->shard_intake)",
    ]
    hop = result[1]
    assert hop.sim_delta == pytest.approx(0.5)
    assert hop.shard == 3  # attributed to the destination stage's shard
    total = result[-1]
    assert total.sim_delta == pytest.approx(1.0)
    assert total.wall_delta == pytest.approx(2.0)


def test_single_stage_message_produces_no_transitions():
    telemetry = Telemetry()
    telemetry.stage("client_send", _message("a", 0), 0.0)
    assert transitions(telemetry) == []


def test_stage_latency_rows_share_keys_and_are_pipeline_sorted():
    telemetry = Telemetry()
    _record_pipeline(telemetry, "a", 0, start=0.0, step=0.25)
    _record_pipeline(telemetry, "b", 0, start=1.0, step=0.75)
    rows = stage_latency_rows(telemetry)
    keys = [tuple(row) for row in rows]
    assert len(set(keys)) == 1  # format_table requires uniform keys
    assert [row["stage"] for row in rows] == [
        "client_send->channel_deliver",
        "channel_deliver->shard_intake",
        "total (client_send->shard_intake)",
    ]
    first = rows[0]
    assert first["count"] == 2
    assert first["sim_mean_ms"] == pytest.approx(500.0)  # mean of 250ms and 750ms


def test_stage_latency_rows_group_by_client_and_shard():
    telemetry = Telemetry()
    _record_pipeline(telemetry, "a", 0, start=0.0, step=0.25, shard=0)
    _record_pipeline(telemetry, "b", 0, start=0.0, step=0.25, shard=1)
    by_client = stage_latency_rows(telemetry, group_by="client")
    assert {row["client"] for row in by_client} == {"a", "b"}
    by_shard = stage_latency_rows(telemetry, group_by="shard")
    assert {row["shard"] for row in by_shard} >= {0, 1}
    with pytest.raises(ValueError):
        stage_latency_rows(telemetry, group_by="nope")
