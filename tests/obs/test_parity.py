"""The telemetry layer's headline guarantees.

* **Disabled parity** — a run without telemetry is bitwise identical to an
  instrumented run: same merged order, same engine counters, same RNG
  consumption (the ``duplication`` fault would diverge on any stray draw).
* **Determinism** — same seed, same simulated-time trace; wall-clock stamps
  are the only permitted difference between reruns.
* **Overhead** — with telemetry disabled the residual cost is one no-op
  guard per call site, bounded to <2% of the uninstrumented runtime.
"""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import NO_TELEMETRY, Telemetry
from repro.obs.workload import run_instrumented_workload
from repro.workloads.chaos import ChaosSettings, run_chaos_scenario

SMALL = ChaosSettings(num_clients=6, num_shards=2, messages_per_client=3, seed=11)


def test_disabled_run_is_bitwise_identical_to_instrumented_run():
    # duplication consumes one RNG draw per in-window send: any telemetry
    # draw would shift the stream and change the report
    bare = run_chaos_scenario(fault="duplication", settings=SMALL, telemetry=None)
    instrumented = run_chaos_scenario(
        fault="duplication", settings=SMALL, telemetry=Telemetry()
    )
    assert bare == instrumented  # frozen dataclass: field-wise equality


def test_engine_counters_match_with_and_without_telemetry():
    settings = ChaosSettings(num_clients=6, num_shards=2, messages_per_client=3, seed=3)
    reports = [
        run_chaos_scenario(fault="reorder", settings=settings, telemetry=telemetry)
        for telemetry in (None, Telemetry())
    ]
    assert reports[0].as_row() == reports[1].as_row()


def test_same_seed_same_sim_trace():
    first = run_instrumented_workload("chaos", num_shards=2, num_clients=6, seed=5)
    second = run_instrumented_workload("chaos", num_shards=2, num_clients=6, seed=5)
    fingerprint = first.telemetry.sim_fingerprint()
    assert fingerprint  # the run actually recorded something
    assert fingerprint == second.telemetry.sim_fingerprint()


def test_different_seeds_differ():
    first = run_instrumented_workload("chaos", num_shards=2, num_clients=6, seed=5)
    second = run_instrumented_workload("chaos", num_shards=2, num_clients=6, seed=6)
    assert first.telemetry.sim_fingerprint() != second.telemetry.sim_fingerprint()


@settings(max_examples=5, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    fault=st.sampled_from(["none", "duplication", "delay", "crash"]),
)
def test_sim_trace_determinism_property(seed, fault):
    settings_ = ChaosSettings(num_clients=4, num_shards=2, messages_per_client=2, seed=seed)
    fingerprints = []
    for _ in range(2):
        telemetry = Telemetry()
        run_chaos_scenario(fault=fault, settings=settings_, telemetry=telemetry)
        fingerprints.append(telemetry.sim_fingerprint())
    assert fingerprints[0] == fingerprints[1]


def test_disabled_overhead_below_two_percent():
    """Projected worst-case guard cost is <2% of the uninstrumented runtime.

    Differencing two full runs is too noisy for CI, so the bound is computed
    directly: (cost of one disabled-telemetry guard) x (a generous multiple
    of the actual instrumentation call count) against the measured runtime.
    """
    settings = ChaosSettings(num_clients=8, num_shards=2, messages_per_client=4, seed=7)

    baseline = min(
        _timed(lambda: run_chaos_scenario(fault="delay", settings=settings)) for _ in range(3)
    )

    telemetry = Telemetry()
    run_chaos_scenario(fault="delay", settings=settings, telemetry=telemetry)
    recorded = len(telemetry.stage_records) + len(telemetry.event_records)
    counter_bumps = sum(
        telemetry.registry.snapshot()["counters"].values()
    )
    # every record/bump sits behind exactly one `if obs.enabled:` guard; x10
    # head-room covers guards on paths that record nothing
    projected_guards = 10 * (recorded + counter_bumps)

    iterations = 200_000
    start = time.perf_counter()
    for _ in range(iterations):
        if NO_TELEMETRY.enabled:  # pragma: no cover - never taken
            raise AssertionError
    per_guard = (time.perf_counter() - start) / iterations

    assert projected_guards * per_guard < 0.02 * baseline


def _timed(thunk):
    start = time.perf_counter()
    thunk()
    return time.perf_counter() - start
