"""Tests for parametric clock-error distribution families."""

import numpy as np
import pytest

from repro.distributions.base import DistributionError
from repro.distributions.parametric import (
    GaussianDistribution,
    LaplaceDistribution,
    ShiftedLogNormalDistribution,
    StudentTDistribution,
    UniformDistribution,
)

ALL_DISTRIBUTIONS = [
    GaussianDistribution(0.5, 2.0),
    UniformDistribution(-3.0, 5.0),
    LaplaceDistribution(1.0, 2.0),
    StudentTDistribution(0.0, 1.0, dof=5.0),
    ShiftedLogNormalDistribution(-1.0, 0.0, 0.5),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.family)
def test_pdf_integrates_to_one_over_support(dist):
    lo, hi = dist.support(1 - 1e-9)
    xs = np.linspace(lo, hi, 20001)
    mass = np.trapezoid(dist.pdf(xs), xs)
    assert mass == pytest.approx(1.0, abs=1e-3)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.family)
def test_cdf_is_monotone_and_bounded(dist):
    lo, hi = dist.support(1 - 1e-9)
    xs = np.linspace(lo, hi, 512)
    cdf = dist.cdf(xs)
    assert np.all(np.diff(cdf) >= -1e-12)
    assert cdf[0] <= 1e-3
    assert cdf[-1] >= 1 - 1e-3


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.family)
def test_sample_statistics_match_moments(dist, rng):
    samples = np.asarray(dist.sample(rng, size=60000), dtype=float)
    assert samples.mean() == pytest.approx(dist.mean, abs=5 * dist.std / np.sqrt(60000) + 0.05)
    assert samples.std() == pytest.approx(dist.std, rel=0.15)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.family)
def test_quantile_inverts_cdf(dist):
    for q in (0.05, 0.25, 0.5, 0.75, 0.95):
        x = dist.quantile(q)
        assert float(dist.cdf(np.asarray(x))) == pytest.approx(q, abs=5e-3)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.family)
def test_scalar_sample_is_float_like(dist, rng):
    value = dist.sample(rng)
    assert np.ndim(value) == 0


def test_gaussian_moments():
    dist = GaussianDistribution(2.0, 3.0)
    assert dist.mean == 2.0
    assert dist.std == 3.0
    assert dist.variance == 9.0


def test_gaussian_zero_std_is_degenerate_point_mass():
    dist = GaussianDistribution(1.0, 0.0)
    assert dist.quantile(0.3) == 1.0
    assert float(dist.cdf(np.asarray(0.9))) == 0.0
    assert float(dist.cdf(np.asarray(1.1))) == 1.0


def test_gaussian_negative_std_rejected():
    with pytest.raises(DistributionError):
        GaussianDistribution(0.0, -1.0)


def test_uniform_moments_and_support():
    dist = UniformDistribution(-2.0, 6.0)
    assert dist.mean == 2.0
    assert dist.variance == pytest.approx(64.0 / 12.0)
    assert dist.support() == (-2.0, 6.0)


def test_uniform_invalid_bounds_rejected():
    with pytest.raises(DistributionError):
        UniformDistribution(1.0, 1.0)


def test_laplace_variance():
    dist = LaplaceDistribution(0.0, 2.0)
    assert dist.variance == pytest.approx(8.0)


def test_laplace_invalid_scale_rejected():
    with pytest.raises(DistributionError):
        LaplaceDistribution(0.0, 0.0)


def test_student_t_requires_dof_above_two():
    with pytest.raises(DistributionError):
        StudentTDistribution(0.0, 1.0, dof=2.0)


def test_student_t_variance_inflated_by_dof():
    dist = StudentTDistribution(0.0, 1.0, dof=4.0)
    assert dist.variance == pytest.approx(2.0)


def test_lognormal_is_skewed_right():
    dist = ShiftedLogNormalDistribution(0.0, 0.0, 0.8)
    median = dist.quantile(0.5)
    assert dist.mean > median  # right skew: mean above median


def test_lognormal_support_starts_at_shift():
    dist = ShiftedLogNormalDistribution(-5.0, 0.0, 0.5)
    lo, _hi = dist.support()
    assert lo == pytest.approx(-5.0)
    assert float(dist.pdf(np.asarray(-6.0))) == 0.0


def test_quantile_rejects_out_of_range_levels():
    dist = GaussianDistribution(0.0, 1.0)
    with pytest.raises(DistributionError):
        dist.quantile(1.5)


def test_negated_distribution_mirrors_moments():
    dist = ShiftedLogNormalDistribution(0.0, 0.0, 0.5)
    negated = dist.negated()
    assert negated.mean == pytest.approx(-dist.mean, rel=1e-2)
    assert negated.std == pytest.approx(dist.std, rel=5e-2)
