"""Property-based tests for distribution invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributions.difference import difference_distribution, gaussian_difference
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution, UniformDistribution

means = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)
stds = st.floats(min_value=1e-3, max_value=50.0, allow_nan=False, allow_infinity=False)


@given(mean=means, std=stds, x=means)
@settings(max_examples=60, deadline=None)
def test_gaussian_cdf_bounded_and_monotone(mean, std, x):
    dist = GaussianDistribution(mean, std)
    lower = float(dist.cdf(np.asarray(x)))
    upper = float(dist.cdf(np.asarray(x + 1.0)))
    assert 0.0 <= lower <= 1.0
    assert upper >= lower - 1e-12


@given(mean=means, std=stds, q=st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=60, deadline=None)
def test_gaussian_quantile_round_trips(mean, std, q):
    dist = GaussianDistribution(mean, std)
    assert float(dist.cdf(np.asarray(dist.quantile(q)))) == np.float64(np.clip(q, 0, 1)) or abs(
        float(dist.cdf(np.asarray(dist.quantile(q)))) - q
    ) < 1e-9


@given(mean_i=means, std_i=stds, mean_j=means, std_j=stds)
@settings(max_examples=60, deadline=None)
def test_gaussian_difference_moments_compose(mean_i, std_i, mean_j, std_j):
    diff = gaussian_difference(GaussianDistribution(mean_i, std_i), GaussianDistribution(mean_j, std_j))
    assert np.isclose(diff.mean, mean_j - mean_i)
    assert np.isclose(diff.std, np.hypot(std_i, std_j))


@given(
    low=st.floats(min_value=-10, max_value=0, allow_nan=False),
    width=st.floats(min_value=0.1, max_value=10, allow_nan=False),
    threshold=st.floats(min_value=-30, max_value=30, allow_nan=False),
)
@settings(max_examples=40, deadline=None)
def test_tail_probability_complementarity(low, width, threshold):
    dist_i = UniformDistribution(low, low + width)
    dist_j = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(dist_i, dist_j, method="fft", num_points=512)
    total = diff.tail_probability(threshold) + diff.cdf(threshold)
    assert 0.99 <= total <= 1.01


@given(samples=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False), min_size=8, max_size=200))
@settings(max_examples=40, deadline=None)
def test_empirical_from_samples_always_normalised(samples):
    samples = np.asarray(samples, dtype=float)
    if np.ptp(samples) == 0:
        samples = samples + np.linspace(0, 1e-6, samples.size)
    dist = EmpiricalDistribution.from_samples(samples, bins=32)
    assert np.trapezoid(dist.density, dist.grid_x) == np.float64(1.0) or abs(
        np.trapezoid(dist.density, dist.grid_x) - 1.0
    ) < 1e-6
    lo, hi = dist.support()
    assert lo <= samples.min()
    assert hi >= samples.max()
