"""Tests for distribution estimation from probe samples."""

import numpy as np
import pytest

from repro.distributions.base import DistributionError
from repro.distributions.estimation import (
    estimate_empirical,
    estimate_gaussian,
    fit_best_distribution,
)
from repro.distributions.parametric import (
    GaussianDistribution,
    ShiftedLogNormalDistribution,
    UniformDistribution,
)


def test_gaussian_estimate_recovers_parameters(rng):
    truth = GaussianDistribution(5.0, 2.0)
    samples = truth.sample(rng, size=5000)
    estimate = estimate_gaussian(samples)
    assert estimate.family == "gaussian"
    assert estimate.mean == pytest.approx(5.0, abs=0.1)
    assert estimate.std == pytest.approx(2.0, abs=0.1)
    assert estimate.sample_count == 5000


def test_gaussian_estimate_handles_constant_samples():
    estimate = estimate_gaussian(np.full(10, 3.0))
    assert estimate.mean == pytest.approx(3.0)
    assert estimate.std > 0  # degenerate std replaced by a tiny positive value


def test_empirical_estimate_matches_sample_moments(rng):
    samples = rng.normal(1.0, 0.5, size=3000)
    estimate = estimate_empirical(samples, bins=64)
    assert estimate.family == "empirical"
    assert estimate.mean == pytest.approx(1.0, abs=0.05)
    assert estimate.std == pytest.approx(0.5, abs=0.05)


def test_empirical_kde_variant(rng):
    samples = rng.normal(0.0, 1.0, size=500)
    estimate = estimate_empirical(samples, kde=True)
    assert estimate.mean == pytest.approx(0.0, abs=0.15)


def test_model_selection_prefers_gaussian_for_gaussian_data(rng):
    samples = rng.normal(0.0, 1.0, size=3000)
    best = fit_best_distribution(samples)
    assert best.family == "gaussian"


def test_model_selection_prefers_skewed_family_for_lognormal_data(rng):
    truth = ShiftedLogNormalDistribution(0.0, 0.0, 0.9)
    samples = truth.sample(rng, size=3000)
    best = fit_best_distribution(samples)
    assert best.family in {"shifted-lognormal", "laplace"}
    assert best.family != "gaussian"


def test_model_selection_prefers_uniform_for_uniform_data(rng):
    truth = UniformDistribution(-1.0, 1.0)
    samples = truth.sample(rng, size=4000)
    best = fit_best_distribution(samples)
    assert best.family == "uniform"


def test_candidate_filtering_respected(rng):
    samples = rng.normal(0.0, 1.0, size=500)
    best = fit_best_distribution(samples, candidates={"gaussian": False})
    assert best.family != "gaussian"


def test_estimators_reject_insufficient_or_invalid_samples():
    with pytest.raises(DistributionError):
        estimate_gaussian(np.array([1.0]))
    with pytest.raises(DistributionError):
        fit_best_distribution(np.array([1.0, 2.0]))
    with pytest.raises(DistributionError):
        estimate_gaussian(np.array([np.nan, 1.0, 2.0]))
    with pytest.raises(DistributionError):
        estimate_gaussian(np.array([[1.0, 2.0], [3.0, 4.0]]))


def test_aic_penalises_worse_fits(rng):
    samples = rng.normal(0.0, 1.0, size=2000)
    gaussian = estimate_gaussian(samples)
    best = fit_best_distribution(samples)
    assert best.aic <= gaussian.aic + 1e-9


def test_fit_best_distribution_can_consider_empirical_candidate():
    import numpy as np

    from repro.distributions.estimation import fit_best_distribution

    rng = np.random.default_rng(6)
    # strongly trimodal offsets: no single parametric family fits well
    samples = np.concatenate(
        [rng.normal(-5.0, 0.05, 400), rng.normal(0.0, 0.05, 400), rng.normal(5.0, 0.05, 400)]
    )
    parametric = fit_best_distribution(samples)
    assert parametric.family != "empirical"  # disabled by default
    with_empirical = fit_best_distribution(samples, candidates={"empirical": True})
    assert with_empirical.family == "empirical"
    assert with_empirical.aic < parametric.aic
