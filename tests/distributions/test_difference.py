"""Tests for the difference-distribution wrapper used by the precedence model."""

import numpy as np
import pytest
from scipy import stats

from repro.distributions.base import DistributionError
from repro.distributions.difference import (
    difference_distribution,
    gaussian_difference,
)
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution, UniformDistribution


def test_gaussian_difference_closed_form_moments():
    a = GaussianDistribution(1.0, 3.0)
    b = GaussianDistribution(4.0, 4.0)
    diff = gaussian_difference(a, b)
    assert diff.exact
    assert diff.mean == pytest.approx(3.0)
    assert diff.std == pytest.approx(5.0)


def test_auto_method_uses_closed_form_for_gaussians():
    a = GaussianDistribution(0.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="auto")
    assert diff.exact


def test_auto_method_falls_back_to_fft_for_non_gaussian():
    a = UniformDistribution(-1.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="auto")
    assert not diff.exact


def test_tail_probability_matches_normal_sf():
    a = GaussianDistribution(0.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b)
    for threshold in (-2.0, 0.0, 1.5):
        expected = stats.norm.sf(threshold, loc=0.0, scale=np.sqrt(2.0))
        assert diff.tail_probability(threshold) == pytest.approx(expected, abs=1e-9)


def test_fft_path_matches_closed_form_probabilities():
    a = GaussianDistribution(0.5, 2.0)
    b = GaussianDistribution(-0.5, 1.0)
    exact = difference_distribution(a, b, method="gaussian")
    numeric = difference_distribution(a, b, method="fft", num_points=4096)
    for x in (-3.0, -1.0, 0.0, 0.5, 2.0):
        assert numeric.cdf(x) == pytest.approx(exact.cdf(x), abs=5e-3)


def test_direct_method_also_available():
    a = GaussianDistribution(0.0, 1.0)
    b = UniformDistribution(-1.0, 1.0)
    numeric = difference_distribution(a, b, method="direct", num_points=512)
    assert 0.4 < numeric.cdf(0.0) < 0.6


def test_quantile_and_cdf_are_consistent():
    a = MixtureDistribution(
        [GaussianDistribution(-1.0, 0.5), GaussianDistribution(2.0, 0.5)], [0.5, 0.5]
    )
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="fft")
    for q in (0.1, 0.5, 0.9):
        assert diff.cdf(diff.quantile(q)) == pytest.approx(q, abs=0.02)


def test_gaussian_method_requires_gaussian_inputs():
    with pytest.raises(DistributionError):
        difference_distribution(UniformDistribution(0, 1), GaussianDistribution(0, 1), method="gaussian")


def test_unknown_method_rejected():
    with pytest.raises(DistributionError):
        difference_distribution(GaussianDistribution(0, 1), GaussianDistribution(0, 1), method="magic")


def test_cdf_clipped_to_unit_interval():
    a = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, a)
    assert diff.cdf(1e9) == 1.0
    assert diff.cdf(-1e9) == 0.0
    assert diff.tail_probability(1e9) == 0.0
