"""Tests for the difference-distribution wrapper used by the precedence model."""

import numpy as np
import pytest
from scipy import stats

from repro.distributions.base import DistributionError
from repro.distributions.difference import (
    difference_distribution,
    gaussian_difference,
)
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution, UniformDistribution


def test_gaussian_difference_closed_form_moments():
    a = GaussianDistribution(1.0, 3.0)
    b = GaussianDistribution(4.0, 4.0)
    diff = gaussian_difference(a, b)
    assert diff.exact
    assert diff.mean == pytest.approx(3.0)
    assert diff.std == pytest.approx(5.0)


def test_auto_method_uses_closed_form_for_gaussians():
    a = GaussianDistribution(0.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="auto")
    assert diff.exact


def test_auto_method_falls_back_to_fft_for_non_gaussian():
    a = UniformDistribution(-1.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="auto")
    assert not diff.exact


def test_tail_probability_matches_normal_sf():
    a = GaussianDistribution(0.0, 1.0)
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b)
    for threshold in (-2.0, 0.0, 1.5):
        expected = stats.norm.sf(threshold, loc=0.0, scale=np.sqrt(2.0))
        assert diff.tail_probability(threshold) == pytest.approx(expected, abs=1e-9)


def test_fft_path_matches_closed_form_probabilities():
    a = GaussianDistribution(0.5, 2.0)
    b = GaussianDistribution(-0.5, 1.0)
    exact = difference_distribution(a, b, method="gaussian")
    numeric = difference_distribution(a, b, method="fft", num_points=4096)
    for x in (-3.0, -1.0, 0.0, 0.5, 2.0):
        assert numeric.cdf(x) == pytest.approx(exact.cdf(x), abs=5e-3)


def test_direct_method_also_available():
    a = GaussianDistribution(0.0, 1.0)
    b = UniformDistribution(-1.0, 1.0)
    numeric = difference_distribution(a, b, method="direct", num_points=512)
    assert 0.4 < numeric.cdf(0.0) < 0.6


def test_quantile_and_cdf_are_consistent():
    a = MixtureDistribution(
        [GaussianDistribution(-1.0, 0.5), GaussianDistribution(2.0, 0.5)], [0.5, 0.5]
    )
    b = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, b, method="fft")
    for q in (0.1, 0.5, 0.9):
        assert diff.cdf(diff.quantile(q)) == pytest.approx(q, abs=0.02)


def test_gaussian_method_requires_gaussian_inputs():
    with pytest.raises(DistributionError):
        difference_distribution(UniformDistribution(0, 1), GaussianDistribution(0, 1), method="gaussian")


def test_unknown_method_rejected():
    with pytest.raises(DistributionError):
        difference_distribution(GaussianDistribution(0, 1), GaussianDistribution(0, 1), method="magic")


def test_cdf_clipped_to_unit_interval():
    a = GaussianDistribution(0.0, 1.0)
    diff = difference_distribution(a, a)
    assert diff.cdf(1e9) == 1.0
    assert diff.cdf(-1e9) == 0.0
    assert diff.tail_probability(1e9) == 0.0


# --------------------------------------------------------------------------
# Regression: sign/convention reconciliation for asymmetric distributions.
#
# The module used to document the paper's theta-convention formula
# ``P(i precedes j) = P(delta > T_i - T_j)`` on top of the epsilon-convention
# density it actually computes (``delta = eps_j - eps_i``).  For asymmetric
# error distributions the two readings disagree; the precedence model's
# ``cdf(T_j - T_i)`` (now exposed as ``preceding_probability``) is the
# correct one.  Verified against Monte-Carlo ground truth on both numerical
# paths.
# --------------------------------------------------------------------------


_ASYMMETRIC_PAIR_CACHE = {}


def _asymmetric_pair():
    """Two strongly skewed empirical error distributions plus raw samples."""
    from repro.distributions.empirical import EmpiricalDistribution

    if not _ASYMMETRIC_PAIR_CACHE:
        rng = np.random.default_rng(42)
        samples_i = rng.standard_exponential(30_000) / 2.0 - 0.2
        samples_j = 0.1 - rng.standard_exponential(30_000) / 0.9
        dist_i = EmpiricalDistribution.from_kde(samples_i, num_points=256)
        dist_j = EmpiricalDistribution.from_kde(samples_j, num_points=256)
        _ASYMMETRIC_PAIR_CACHE["pair"] = (dist_i, dist_j, samples_i, samples_j)
    return _ASYMMETRIC_PAIR_CACHE["pair"]


@pytest.mark.parametrize("method", ["fft", "direct"])
def test_asymmetric_preceding_probability_matches_monte_carlo(method):
    from repro.core.probability import PrecedenceModel
    from repro.network.message import TimestampedMessage

    dist_i, dist_j, samples_i, samples_j = _asymmetric_pair()
    t_i, t_j = 0.05, 0.3
    ground_truth = float(np.mean((samples_j - samples_i) < (t_j - t_i)))

    model = PrecedenceModel(method=method)
    model.register_client("i", dist_i)
    model.register_client("j", dist_j)
    message_i = TimestampedMessage(client_id="i", timestamp=t_i)
    message_j = TimestampedMessage(client_id="j", timestamp=t_j)
    forward = model.preceding_probability(message_i, message_j)
    backward = model.preceding_probability(message_j, message_i)

    assert forward + backward == pytest.approx(1.0, abs=1e-6)
    assert forward == pytest.approx(ground_truth, abs=0.02)
    # the convention-checked wrapper agrees with the model path
    difference = model.pair_difference("i", "j")
    assert difference.preceding_probability(t_i, t_j) == forward


@pytest.mark.parametrize("method", ["fft", "direct"])
def test_theta_convention_tail_formula_is_not_the_preceding_probability(method):
    """The previously documented ``tail_probability(T_i - T_j)`` reading is
    measurably wrong for skewed errors — pin the distinction."""
    dist_i, dist_j, samples_i, samples_j = _asymmetric_pair()
    t_i, t_j = 0.05, 0.3
    ground_truth = float(np.mean((samples_j - samples_i) < (t_j - t_i)))
    difference = difference_distribution(dist_i, dist_j, method=method)
    correct = difference.preceding_probability(t_i, t_j)
    theta_reading = difference.tail_probability(t_i - t_j)
    assert correct == pytest.approx(ground_truth, abs=0.02)
    assert abs(theta_reading - ground_truth) > 0.1


def test_table_interpolation_matches_scalar_cdf_bitwise():
    """The engine's pair-table kernel interpolates the exact arrays
    ``cdf_table`` exposes: element-wise bit-identical to the scalar
    ``preceding_probability`` path (the fast path's parity contract)."""
    import numpy as np

    from repro.core.engine import _interp_table
    from repro.distributions.difference import difference_distribution
    from repro.distributions.empirical import EmpiricalDistribution
    from repro.distributions.parametric import GaussianDistribution

    rng = np.random.default_rng(4)
    empirical = EmpiricalDistribution.from_samples(rng.normal(0.0, 0.5, 300), bins=64)
    gaussian = GaussianDistribution(0.1, 0.3)
    difference = difference_distribution(empirical, gaussian, method="fft", num_points=512)
    timestamps_i = rng.normal(0.0, 2.0, 50)
    timestamp_j = 0.25
    batch = _interp_table(timestamp_j - timestamps_i, difference.cdf_table())
    for value, timestamp_i in zip(batch, timestamps_i):
        assert value == difference.preceding_probability(float(timestamp_i), timestamp_j)


def test_cdf_table_exposed_only_for_grid_backed_differences():
    import numpy as np

    from repro.distributions.difference import difference_distribution
    from repro.distributions.empirical import EmpiricalDistribution
    from repro.distributions.parametric import GaussianDistribution

    rng = np.random.default_rng(5)
    empirical = EmpiricalDistribution.from_samples(rng.normal(0.0, 0.5, 300), bins=64)
    gaussian = GaussianDistribution(0.0, 0.3)
    grid_backed = difference_distribution(empirical, gaussian, method="fft", num_points=512)
    assert grid_backed.cdf_table() is not None
    closed_form = difference_distribution(gaussian, gaussian, method="auto")
    assert closed_form.cdf_table() is None
