"""Tests for empirical (sample- and grid-based) distributions."""

import numpy as np
import pytest

from repro.distributions.base import DistributionError
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution


def test_from_samples_recovers_gaussian_moments(rng):
    truth = GaussianDistribution(3.0, 2.0)
    samples = truth.sample(rng, size=20000)
    empirical = EmpiricalDistribution.from_samples(samples, bins=100)
    assert empirical.mean == pytest.approx(3.0, abs=0.1)
    assert empirical.std == pytest.approx(2.0, abs=0.1)


def test_from_kde_recovers_gaussian_moments(rng):
    truth = GaussianDistribution(-1.0, 0.5)
    samples = truth.sample(rng, size=4000)
    empirical = EmpiricalDistribution.from_kde(samples)
    assert empirical.mean == pytest.approx(-1.0, abs=0.1)
    assert empirical.std == pytest.approx(0.5, abs=0.1)


def test_from_density_normalises_input():
    xs = np.linspace(-1.0, 1.0, 101)
    density = np.ones_like(xs) * 5.0  # unnormalised uniform
    empirical = EmpiricalDistribution.from_density(xs, density)
    assert np.trapezoid(empirical.density, empirical.grid_x) == pytest.approx(1.0)
    assert empirical.mean == pytest.approx(0.0, abs=1e-9)


def test_cdf_monotone_and_quantile_consistent(rng):
    samples = rng.normal(0.0, 1.0, size=5000)
    empirical = EmpiricalDistribution.from_samples(samples)
    xs = np.linspace(*empirical.support(), 256)
    cdf = empirical.cdf(xs)
    assert np.all(np.diff(cdf) >= -1e-12)
    for q in (0.1, 0.5, 0.9):
        assert float(empirical.cdf(np.asarray(empirical.quantile(q)))) == pytest.approx(q, abs=0.02)


def test_pdf_is_zero_outside_grid():
    xs = np.linspace(0.0, 1.0, 11)
    empirical = EmpiricalDistribution.from_density(xs, np.ones_like(xs))
    assert float(empirical.pdf(np.asarray(-1.0))) == 0.0
    assert float(empirical.pdf(np.asarray(2.0))) == 0.0
    assert float(empirical.cdf(np.asarray(-1.0))) == 0.0
    assert float(empirical.cdf(np.asarray(2.0))) == 1.0


def test_sampling_from_samples_bootstraps(rng):
    source = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
    empirical = EmpiricalDistribution.from_samples(source, bins=8)
    draws = np.asarray(empirical.sample(rng, size=100))
    assert set(np.unique(draws)).issubset(set(source))


def test_sampling_from_density_uses_inverse_cdf(rng):
    xs = np.linspace(0.0, 1.0, 101)
    empirical = EmpiricalDistribution.from_density(xs, np.ones_like(xs))
    draws = np.asarray(empirical.sample(rng, size=2000))
    assert draws.min() >= 0.0
    assert draws.max() <= 1.0
    assert draws.mean() == pytest.approx(0.5, abs=0.05)


def test_samples_accessor_returns_original_or_grid(rng):
    raw = rng.normal(size=50)
    from_samples = EmpiricalDistribution.from_samples(raw)
    assert np.allclose(np.sort(from_samples.samples()), np.sort(raw))
    xs = np.linspace(0, 1, 20)
    from_density = EmpiricalDistribution.from_density(xs, np.ones_like(xs))
    assert np.allclose(from_density.samples(), xs)


def test_invalid_construction_rejected():
    with pytest.raises(DistributionError):
        EmpiricalDistribution(np.array([0.0]), np.array([1.0]))
    with pytest.raises(DistributionError):
        EmpiricalDistribution(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
    with pytest.raises(DistributionError):
        EmpiricalDistribution(np.array([0.0, 1.0]), np.array([-1.0, -1.0]))
    with pytest.raises(DistributionError):
        EmpiricalDistribution(np.array([0.0, 1.0]), np.array([0.0, 0.0]))
    with pytest.raises(DistributionError):
        EmpiricalDistribution.from_samples(np.array([1.0]))


def test_support_honors_coverage():
    """Regression: ``support(coverage)`` used to ignore its argument and
    return the raw grid bounds, padding included."""
    xs = np.linspace(0.0, 1.0, 101)
    empirical = EmpiricalDistribution.from_density(xs, np.ones_like(xs))
    lo, hi = empirical.support(0.5)  # central half of a uniform on [0, 1]
    assert lo == pytest.approx(0.25, abs=0.01)
    assert hi == pytest.approx(0.75, abs=0.01)
    full_lo, full_hi = empirical.support()
    assert full_lo == pytest.approx(0.0, abs=1e-6)
    assert full_hi == pytest.approx(1.0, abs=1e-6)


def test_support_trims_zero_density_padding():
    """Histogram padding bins carry no mass and must not inflate the support
    (which feeds every convolution grid)."""
    xs = np.linspace(-10.0, 10.0, 201)
    density = np.where(np.abs(xs) <= 1.0, 1.0, 0.0)
    empirical = EmpiricalDistribution.from_density(xs, density)
    lo, hi = empirical.support()
    assert lo >= -1.2
    assert hi <= 1.2


def test_quantile_on_flat_cdf_segment_returns_left_edge():
    """Regression: a zero-density gap makes the CDF flat; ``np.interp`` over
    the duplicated ordinates picked an arbitrary grid point.  The quantile
    must be the generalised inverse (the left edge of the gap)."""
    xs = np.array([0.0, 1.0, 2.0, 3.0, 4.0, 5.0])
    density = np.array([1.0, 1.0, 0.0, 0.0, 1.0, 1.0])
    empirical = EmpiricalDistribution.from_density(xs, density)
    gap_mass = float(empirical.cdf(np.asarray(2.0)))
    # the CDF is flat on [2, 3]; exactly at the flat value the generalised
    # inverse is the left edge of the gap, not an arbitrary point inside it
    assert gap_mass == pytest.approx(0.5)
    assert empirical.quantile(gap_mass) == pytest.approx(2.0, abs=1e-9)
    # marginally above the flat value: interpolation resumes after the gap
    assert empirical.quantile(gap_mass + 1e-6) > 3.0
    # monotonicity across the gap region
    qs = np.linspace(0.0, 1.0, 101)
    values = [empirical.quantile(float(q)) for q in qs]
    assert all(b >= a for a, b in zip(values, values[1:]))


def test_quantile_matches_interp_on_strictly_increasing_cdf(rng):
    samples = rng.normal(0.0, 1.0, size=4000)
    empirical = EmpiricalDistribution.from_samples(samples)
    grid, cdf = empirical.cdf_table()
    for q in (0.01, 0.25, 0.5, 0.9, 0.999):
        assert empirical.quantile(q) == pytest.approx(
            float(np.interp(q, cdf, grid)), rel=1e-9, abs=1e-12
        )


def test_cdf_table_backs_the_cdf():
    xs = np.linspace(-1.0, 1.0, 51)
    empirical = EmpiricalDistribution.from_density(xs, np.ones_like(xs))
    grid, cdf = empirical.cdf_table()
    probe = np.linspace(-1.5, 1.5, 40)
    assert np.array_equal(
        empirical.cdf(probe), np.interp(probe, grid, cdf, left=0.0, right=1.0)
    )
