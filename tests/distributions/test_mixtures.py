"""Tests for mixture distributions."""

import numpy as np
import pytest

from repro.distributions.base import DistributionError
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution, UniformDistribution


def bimodal():
    return MixtureDistribution(
        [GaussianDistribution(-5.0, 1.0), GaussianDistribution(5.0, 1.0)], [0.5, 0.5]
    )


def test_mixture_mean_is_weighted_average():
    mixture = MixtureDistribution(
        [GaussianDistribution(0.0, 1.0), GaussianDistribution(10.0, 1.0)], [0.25, 0.75]
    )
    assert mixture.mean == pytest.approx(7.5)


def test_mixture_variance_includes_between_component_spread():
    mixture = bimodal()
    # law of total variance: 1 + 25 = 26
    assert mixture.variance == pytest.approx(26.0)


def test_weights_are_normalised():
    mixture = MixtureDistribution(
        [GaussianDistribution(0.0, 1.0), GaussianDistribution(1.0, 1.0)], [2.0, 6.0]
    )
    assert np.allclose(mixture.weights, [0.25, 0.75])


def test_pdf_integrates_to_one():
    mixture = bimodal()
    lo, hi = mixture.support()
    xs = np.linspace(lo, hi, 10001)
    assert np.trapezoid(mixture.pdf(xs), xs) == pytest.approx(1.0, abs=1e-3)


def test_cdf_reaches_half_between_symmetric_modes():
    mixture = bimodal()
    assert float(mixture.cdf(np.asarray(0.0))) == pytest.approx(0.5, abs=1e-6)


def test_sampling_visits_both_modes(rng):
    mixture = bimodal()
    samples = np.asarray(mixture.sample(rng, size=4000))
    assert (samples < 0).mean() == pytest.approx(0.5, abs=0.05)


def test_scalar_sampling(rng):
    assert np.ndim(bimodal().sample(rng)) == 0


def test_support_spans_all_components():
    mixture = MixtureDistribution(
        [UniformDistribution(-1.0, 0.0), UniformDistribution(5.0, 7.0)], [0.5, 0.5]
    )
    lo, hi = mixture.support()
    assert lo <= -1.0
    assert hi >= 7.0


def test_invalid_mixtures_rejected():
    with pytest.raises(DistributionError):
        MixtureDistribution([], [])
    with pytest.raises(DistributionError):
        MixtureDistribution([GaussianDistribution(0, 1)], [0.5, 0.5])
    with pytest.raises(DistributionError):
        MixtureDistribution([GaussianDistribution(0, 1)], [-1.0])
    with pytest.raises(DistributionError):
        MixtureDistribution([GaussianDistribution(0, 1)], [0.0])
