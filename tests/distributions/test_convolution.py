"""Tests for direct and FFT convolution of offset densities."""

import numpy as np
import pytest

from repro.distributions.base import DistributionError
from repro.distributions.convolution import convolve_direct, convolve_fft, cross_correlation_grid
from repro.distributions.parametric import GaussianDistribution, UniformDistribution


def test_fft_and_direct_agree_for_gaussians():
    a = GaussianDistribution(1.0, 2.0)
    b = GaussianDistribution(-0.5, 1.0)
    deltas_fft, density_fft = convolve_fft(a, b, num_points=1024)
    deltas_direct, density_direct = convolve_direct(a, b, num_points=1024)
    assert np.allclose(deltas_fft, deltas_direct)
    assert np.allclose(density_fft, density_direct, atol=1e-6)


def test_gaussian_difference_matches_closed_form():
    a = GaussianDistribution(2.0, 1.5)
    b = GaussianDistribution(-1.0, 2.0)
    deltas, density = convolve_fft(a, b, num_points=4096)
    expected_mean = b.mean - a.mean
    expected_std = np.sqrt(a.variance + b.variance)
    mean = np.trapezoid(deltas * density, deltas)
    var = np.trapezoid((deltas - mean) ** 2 * density, deltas)
    assert mean == pytest.approx(expected_mean, abs=0.02)
    assert np.sqrt(var) == pytest.approx(expected_std, rel=0.02)


def test_uniform_difference_is_triangular():
    a = UniformDistribution(0.0, 1.0)
    b = UniformDistribution(0.0, 1.0)
    deltas, density = convolve_fft(a, b, num_points=2048)
    # difference of independent U(0,1) is triangular on [-1, 1] with peak 1 at 0
    peak_index = int(np.argmax(density))
    assert deltas[peak_index] == pytest.approx(0.0, abs=0.01)
    assert density[peak_index] == pytest.approx(1.0, rel=0.05)
    # density decays to (numerically) nothing at the edges of the [-1, 1] support
    assert float(np.interp(-0.99, deltas, density)) < 0.05


def test_density_is_normalised_and_non_negative():
    a = GaussianDistribution(0.0, 3.0)
    b = UniformDistribution(-2.0, 2.0)
    deltas, density = convolve_fft(a, b)
    assert np.all(density >= 0)
    assert np.trapezoid(density, deltas) == pytest.approx(1.0, abs=1e-6)


def test_cross_correlation_grid_spans_both_supports():
    a = GaussianDistribution(-10.0, 1.0)
    b = GaussianDistribution(10.0, 1.0)
    xs, pdf_a, pdf_b, step = cross_correlation_grid(a, b, num_points=256)
    assert xs[0] < -10.0
    assert xs[-1] > 10.0
    assert step == pytest.approx(xs[1] - xs[0])
    assert pdf_a.shape == xs.shape
    assert pdf_b.shape == xs.shape


def test_too_few_grid_points_rejected():
    a = GaussianDistribution(0.0, 1.0)
    with pytest.raises(DistributionError):
        cross_correlation_grid(a, a, num_points=4)
