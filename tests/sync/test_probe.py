"""Tests for the four-timestamp synchronization probe exchange."""

import numpy as np
import pytest

from repro.clocks.local import LocalClock
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import ConstantDelay, UniformJitterDelay
from repro.simulation.event_loop import EventLoop
from repro.sync.probe import ProbeExchange


def make_exchange(offset_mean=0.0, offset_std=0.0, delay=0.001, jitter=0.0, seed=0, processing=0.0):
    loop = EventLoop()
    clock = LocalClock(loop, GaussianDistribution(offset_mean, offset_std), np.random.default_rng(seed))
    delay_model = UniformJitterDelay(delay, jitter) if jitter > 0 else ConstantDelay(delay)
    return ProbeExchange(
        loop,
        "client",
        clock,
        forward_delay=delay_model,
        backward_delay=delay_model,
        rng=np.random.default_rng(seed + 1),
        server_processing_time=processing,
    )


def test_probe_offset_exact_for_symmetric_delays_and_fixed_offset():
    exchange = make_exchange(offset_mean=0.005, offset_std=0.0, delay=0.001)
    probe = exchange.run_probe()
    # client clock runs 5ms ahead; theta (client - sequencer) estimate should be +5ms
    assert probe.client_offset_estimate == pytest.approx(0.005, abs=1e-9)


def test_round_trip_delay_estimate_matches_true_delays():
    exchange = make_exchange(delay=0.002, processing=0.0005)
    probe = exchange.run_probe()
    assert probe.round_trip_delay == pytest.approx(0.004, abs=1e-9)


def test_processing_time_does_not_bias_offset():
    exchange = make_exchange(offset_mean=0.003, delay=0.001, processing=0.01)
    probe = exchange.run_probe()
    assert probe.client_offset_estimate == pytest.approx(0.003, abs=1e-9)


def test_asymmetric_jitter_spreads_offset_estimates():
    exchange = make_exchange(offset_mean=0.0, offset_std=0.0, delay=0.001, jitter=0.002, seed=3)
    offsets = [probe.client_offset_estimate for probe in exchange.run_probes(200)]
    assert np.std(offsets) > 0


def test_probe_offset_estimates_track_true_offset_distribution():
    exchange = make_exchange(offset_mean=0.01, offset_std=0.002, delay=0.0005, seed=5)
    offsets = np.array([probe.client_offset_estimate for probe in exchange.run_probes(2000)])
    assert offsets.mean() == pytest.approx(0.01, abs=5e-4)


def test_run_probes_accumulates_history():
    exchange = make_exchange()
    exchange.run_probes(5)
    exchange.run_probe()
    assert len(exchange.probes) == 6


def test_negative_count_rejected():
    exchange = make_exchange()
    with pytest.raises(ValueError):
        exchange.run_probes(-1)


def test_negative_processing_time_rejected():
    with pytest.raises(ValueError):
        make_exchange(processing=-1.0)
