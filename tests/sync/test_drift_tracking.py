"""Tests for drift tracking and regime-shift detection."""

import numpy as np
import pytest

from repro.sync.drift import (
    AdaptiveOffsetLearner,
    DriftTracker,
    RegimeShiftDetector,
)


def test_drift_fit_recovers_linear_trend(rng):
    tracker = DriftTracker()
    rate = 5e-6  # 5 ppm
    for t in np.linspace(0.0, 100.0, 200):
        tracker.observe(t, 0.001 + rate * t + rng.normal(0.0, 1e-7))
    fit = tracker.fit()
    assert fit.rate == pytest.approx(rate, rel=0.05)
    assert fit.intercept == pytest.approx(0.001, abs=1e-5)
    assert fit.rate_ppm == pytest.approx(5.0, rel=0.05)
    assert fit.offset_at(50.0) == pytest.approx(0.001 + rate * 50.0, abs=1e-5)


def test_detrended_offsets_remove_the_trend(rng):
    tracker = DriftTracker()
    for t in np.linspace(0.0, 50.0, 100):
        tracker.observe(t, 1e-5 * t + rng.normal(0.0, 1e-6))
    detrended = tracker.detrended_offsets()
    # residuals should carry no correlation with time
    times = np.linspace(0.0, 50.0, 100)
    correlation = np.corrcoef(times, detrended)[0, 1]
    assert abs(correlation) < 0.2
    assert np.std(detrended) < 5e-6


def test_drift_tracker_window_and_validation():
    tracker = DriftTracker(window=16)
    with pytest.raises(ValueError):
        tracker.fit()
    for t in range(32):
        tracker.observe(float(t), 0.0)
    assert tracker.observation_count == 16
    with pytest.raises(ValueError):
        DriftTracker(window=2)


def test_regime_detector_flags_mean_jump(rng):
    detector = RegimeShiftDetector(baseline_window=256, recent_window=16, z_threshold=4.0)
    for _ in range(300):
        detector.observe(float(rng.normal(0.0, 1e-4)))
    assert detector.shifts_detected == 0
    shifted = False
    for _ in range(32):
        report = detector.observe(float(rng.normal(5e-3, 1e-4)))
        shifted = shifted or report.shifted
    assert shifted
    assert detector.shifts_detected >= 1


def test_regime_detector_flags_spread_blowup(rng):
    detector = RegimeShiftDetector(baseline_window=256, recent_window=16, spread_ratio_threshold=3.0)
    for _ in range(300):
        detector.observe(float(rng.normal(0.0, 1e-4)))
    shifted = False
    for _ in range(32):
        report = detector.observe(float(rng.normal(0.0, 5e-3)))
        shifted = shifted or report.shifted
    assert shifted


def test_regime_detector_quiet_under_stationary_noise(rng):
    detector = RegimeShiftDetector(z_threshold=5.0)
    for _ in range(800):
        detector.observe(float(rng.normal(0.0, 1e-4)))
    assert detector.shifts_detected == 0


def test_regime_detector_validation():
    with pytest.raises(ValueError):
        RegimeShiftDetector(baseline_window=8)
    with pytest.raises(ValueError):
        RegimeShiftDetector(recent_window=2)
    with pytest.raises(ValueError):
        RegimeShiftDetector(baseline_window=32, recent_window=32)
    with pytest.raises(ValueError):
        RegimeShiftDetector(z_threshold=0.0)
    with pytest.raises(ValueError):
        RegimeShiftDetector(spread_ratio_threshold=1.0)


def test_adaptive_learner_relearns_after_shift(rng):
    adaptive = AdaptiveOffsetLearner(
        detector=RegimeShiftDetector(baseline_window=128, recent_window=16, z_threshold=4.0)
    )
    for _ in range(200):
        adaptive.observe_offset(float(rng.normal(0.0, 1e-4)))
    before = adaptive.estimate()
    assert before.mean == pytest.approx(0.0, abs=5e-5)

    # abrupt temperature event: offsets jump to +5 ms
    for _ in range(200):
        adaptive.observe_offset(float(rng.normal(5e-3, 1e-4)))
    assert adaptive.relearn_count >= 1
    after = adaptive.estimate()
    # the estimate reflects the new regime, not a smeared mixture of both
    assert after.mean == pytest.approx(5e-3, abs=5e-4)
    assert after.std < 1e-3


def test_adaptive_learner_without_shift_behaves_like_plain_learner(rng):
    adaptive = AdaptiveOffsetLearner()
    for _ in range(100):
        adaptive.observe_offset(float(rng.normal(1e-3, 2e-4)))
    assert adaptive.relearn_count == 0
    assert adaptive.can_estimate()
    estimate = adaptive.estimate()
    assert estimate.mean == pytest.approx(1e-3, abs=1e-4)
