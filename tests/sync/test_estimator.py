"""Tests for probe-based offset estimators."""

import numpy as np
import pytest

from repro.sync.estimator import OffsetEstimator, offset_from_probe
from repro.sync.probe import SyncProbe


def make_probe(t1, t2, t3, t4, client="c"):
    return SyncProbe(client_id=client, t1=t1, t2=t2, t3=t3, t4=t4, true_offset_forward=0.0, true_offset_backward=0.0)


def test_offset_from_probe_matches_ntp_formula():
    # client ahead by 5: t1 = 105 when true 100; server replies at 100.001
    probe = make_probe(t1=105.0, t2=100.001, t3=100.001, t4=105.002)
    assert offset_from_probe(probe) == pytest.approx(5.0, abs=1e-6)


def test_estimator_median_is_robust_to_outliers():
    # nine symmetric probes (offset estimate 0) plus one gross outlier
    probes = [make_probe(10.0, 10.001, 10.001, 10.002) for _ in range(9)]
    probes.append(make_probe(10.0, 30.0, 30.0, 10.002))
    estimator = OffsetEstimator()
    assert estimator.estimate_offset(probes) == pytest.approx(0.0, abs=1e-9)


def test_best_fraction_keeps_lowest_rtt_probes():
    clean = make_probe(0.0, 0.001, 0.001, 0.002)          # rtt 2ms
    noisy = make_probe(0.0, 0.050, 0.050, 0.100)           # rtt 100ms
    estimator = OffsetEstimator(best_fraction=0.5)
    offsets = estimator.offsets([clean, noisy])
    assert offsets.size == 1
    assert offsets[0] == pytest.approx(offset_from_probe(clean))


def test_uncertainty_is_zero_for_single_probe():
    estimator = OffsetEstimator()
    assert estimator.estimate_uncertainty([make_probe(0.0, 0.001, 0.001, 0.002)]) == 0.0


def test_uncertainty_positive_for_spread_probes():
    probes = [make_probe(0.0, 0.001 * k, 0.001 * k, 0.002) for k in range(1, 6)]
    assert OffsetEstimator().estimate_uncertainty(probes) > 0


def test_empty_probe_list_rejected_for_point_estimate():
    with pytest.raises(ValueError):
        OffsetEstimator().estimate_offset([])


def test_empty_probe_list_gives_empty_offsets():
    assert OffsetEstimator().offsets([]).size == 0


def test_invalid_best_fraction_rejected():
    with pytest.raises(ValueError):
        OffsetEstimator(best_fraction=0.0)
    with pytest.raises(ValueError):
        OffsetEstimator(best_fraction=1.5)
