"""Tests for the probe-driven distribution refresh loop."""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.simulation.event_loop import EventLoop
from repro.sync.estimator import OffsetEstimator
from repro.sync.refresh import DistributionRefreshLoop
from repro.workloads.learned import synthesize_probe


class RecordingTarget:
    """Minimal update_client_distribution sink."""

    def __init__(self):
        self.updates = []

    def update_client_distribution(self, client_id, distribution):
        self.updates.append((client_id, distribution))


def test_refresh_fires_every_n_probes_once_estimable():
    target = RecordingTarget()
    loop = DistributionRefreshLoop(target, refresh_every=4, min_observations=8)
    rng = np.random.default_rng(0)
    for k in range(16):
        loop.observe_probe(synthesize_probe("a", float(rng.normal(0, 0.1)), 0.001))
    # budgets at probes 4 and 8 lack min_observations at 4 only; refreshes
    # happen at 8, 12 and 16
    assert loop.stats.probes_observed == 16
    assert loop.stats.skipped == 1
    assert loop.stats.refreshes == 3
    assert len(target.updates) == 3
    assert all(client == "a" for client, _ in target.updates)
    assert loop.stats.last_family["a"] == "empirical"


def test_refresh_all_sweeps_every_known_client():
    target = RecordingTarget()
    loop = DistributionRefreshLoop(target, refresh_every=100, min_observations=4)
    rng = np.random.default_rng(1)
    for client in ("a", "b"):
        for _ in range(6):
            loop.observe_probe(synthesize_probe(client, float(rng.normal(0, 1)), 0.001))
    pushed = loop.refresh_all()
    assert set(pushed) == {"a", "b"}
    assert loop.stats.refreshes == 2
    assert loop.stats.as_dict()["clients_refreshed"] == 2


def test_refresh_loop_filters_congested_probes():
    """Wired with an RTT filter, refreshed estimates ignore congested probes."""
    target = RecordingTarget()
    loop = DistributionRefreshLoop(
        target,
        method="gaussian",
        refresh_every=20,
        min_observations=4,
        estimator=OffsetEstimator(best_fraction=0.5),
    )
    rng = np.random.default_rng(2)
    for k in range(10):
        loop.observe_probe(synthesize_probe("a", float(rng.normal(0, 0.01)), 0.001))
    for k in range(10):
        loop.observe_probe(synthesize_probe("a", 5.0, 0.5))
    (client, distribution), = target.updates
    assert client == "a"
    assert abs(distribution.mean) < 0.1


def test_refresh_loop_drives_a_running_sequencer():
    """End to end: probes reshape the distribution the sequencer uses."""
    event_loop = EventLoop()
    sequencer = OnlineTommySequencer(
        event_loop,
        {"a": GaussianDistribution(0.0, 10.0), "b": GaussianDistribution(0.0, 0.01)},
        TommyConfig(p_safe=0.99, completeness_mode="none", convolution_points=512),
    )
    refresh = DistributionRefreshLoop(sequencer, refresh_every=16, min_observations=8)
    rng = np.random.default_rng(3)
    for _ in range(16):
        refresh.observe_probe(synthesize_probe("a", float(rng.normal(0, 0.01)), 0.001))
    assert sequencer.distribution_refreshes == 1
    assert isinstance(sequencer.model.distribution_for("a"), EmpiricalDistribution)
    # the learned distribution is far tighter than the 10s-sigma prior
    assert sequencer.model.distribution_for("a").std < 1.0


def test_invalid_configuration_rejected():
    target = RecordingTarget()
    with pytest.raises(ValueError):
        DistributionRefreshLoop(target, refresh_every=0)
    with pytest.raises(ValueError):
        DistributionRefreshLoop(target, min_observations=1)
    with pytest.raises(TypeError):
        DistributionRefreshLoop(object())


def test_unknown_client_probes_are_counted_not_fatal():
    """Probes can precede a client's registration: the refresh must skip
    (and count) instead of raising from inside an event-loop callback."""
    event_loop = EventLoop()
    sequencer = OnlineTommySequencer(
        event_loop, {"a": GaussianDistribution(0.0, 1.0)}, TommyConfig()
    )
    refresh = DistributionRefreshLoop(sequencer, refresh_every=8, min_observations=4)
    rng = np.random.default_rng(6)
    for _ in range(8):
        refresh.observe_probe(synthesize_probe("ghost", float(rng.normal(0, 0.01)), 0.001))
    assert refresh.stats.unknown_clients == 1
    assert refresh.stats.refreshes == 0
    # once the client registers, the next budget succeeds
    sequencer.register_client("ghost", GaussianDistribution(0.0, 1.0))
    for _ in range(8):
        refresh.observe_probe(synthesize_probe("ghost", float(rng.normal(0, 0.01)), 0.001))
    assert refresh.stats.refreshes == 1
