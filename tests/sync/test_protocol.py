"""Tests for the round-based synchronization protocol."""

import numpy as np
import pytest

from repro.clocks.local import LocalClock
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import ConstantDelay
from repro.simulation.event_loop import EventLoop
from repro.sync.protocol import SyncProtocol


def build_protocol(loop, num_clients=3, publish=None, round_interval=1.0):
    protocol = SyncProtocol(loop, probes_per_round=8, round_interval=round_interval, publish=publish)
    for index in range(num_clients):
        client_id = f"c{index}"
        clock = LocalClock(
            loop, GaussianDistribution(0.001 * index, 0.0002), np.random.default_rng(index)
        )
        protocol.add_client(
            client_id,
            clock,
            forward_delay=ConstantDelay(0.0005),
            backward_delay=ConstantDelay(0.0005),
            rng=np.random.default_rng(100 + index),
        )
    return protocol


def test_rounds_accumulate_probes_for_every_client():
    loop = EventLoop()
    protocol = build_protocol(loop)
    protocol.run_rounds(3)
    assert protocol.rounds_completed == 3
    for session in protocol.sessions.values():
        assert session.learner.probe_count == 24


def test_estimates_converge_to_seeded_means():
    loop = EventLoop()
    protocol = build_protocol(loop)
    protocol.run_rounds(20)
    estimates = protocol.estimates()
    assert set(estimates) == {"c0", "c1", "c2"}
    for index, client_id in enumerate(["c0", "c1", "c2"]):
        assert estimates[client_id].mean == pytest.approx(0.001 * index, abs=3e-4)


def test_publish_callback_receives_estimates():
    loop = EventLoop()
    published = []
    protocol = build_protocol(loop, publish=lambda cid, est: published.append((cid, est)))
    protocol.run_rounds(2)
    assert {cid for cid, _ in published} == {"c0", "c1", "c2"}


def test_periodic_rounds_run_on_event_loop():
    loop = EventLoop()
    protocol = build_protocol(loop, round_interval=0.5)
    protocol.start()
    loop.run(until=2.6)
    assert protocol.rounds_completed >= 4
    protocol.stop()
    completed = protocol.rounds_completed
    loop.schedule_at(10.0, lambda: None)
    loop.run()
    assert protocol.rounds_completed == completed


def test_duplicate_client_rejected():
    loop = EventLoop()
    protocol = build_protocol(loop, num_clients=1)
    clock = LocalClock(loop, GaussianDistribution(0, 1e-3), np.random.default_rng(0))
    with pytest.raises(ValueError):
        protocol.add_client(
            "c0", clock, ConstantDelay(0.001), ConstantDelay(0.001), np.random.default_rng(1)
        )


def test_invalid_configuration_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        SyncProtocol(loop, probes_per_round=0)
    with pytest.raises(ValueError):
        SyncProtocol(loop, round_interval=0.0)
