"""Tests for the per-client offset-distribution learner."""

import numpy as np
import pytest

from repro.distributions.parametric import GaussianDistribution
from repro.sync.learner import OffsetDistributionLearner
from repro.sync.probe import SyncProbe


def offset_probe(offset):
    """A probe whose NTP offset estimate equals ``offset`` exactly."""
    return SyncProbe(
        client_id="c",
        t1=100.0 + offset,
        t2=100.0005,
        t3=100.0005,
        t4=100.001 + offset,
        true_offset_forward=offset,
        true_offset_backward=offset,
    )


def test_learner_recovers_gaussian_parameters(rng):
    truth = GaussianDistribution(0.002, 0.0005)
    learner = OffsetDistributionLearner(window=4096, method="gaussian")
    for value in truth.sample(rng, size=3000):
        learner.observe_offset(float(value))
    estimate = learner.estimate()
    assert estimate.mean == pytest.approx(0.002, abs=1e-4)
    assert estimate.std == pytest.approx(0.0005, abs=1e-4)


def test_learner_consumes_probes():
    learner = OffsetDistributionLearner(window=64, method="gaussian")
    for offset in np.linspace(-0.001, 0.001, 32):
        learner.observe_probe(offset_probe(float(offset)))
    assert learner.observation_count == 32
    assert learner.probe_count == 32
    estimate = learner.estimate()
    assert estimate.mean == pytest.approx(0.0, abs=1e-4)


def test_window_discards_old_observations():
    learner = OffsetDistributionLearner(window=10, method="gaussian")
    for _ in range(10):
        learner.observe_offset(100.0)
    for _ in range(10):
        learner.observe_offset(0.0)
    assert learner.observation_count == 10
    assert learner.estimate().mean == pytest.approx(0.0, abs=1e-9)


def test_can_estimate_threshold():
    learner = OffsetDistributionLearner()
    assert not learner.can_estimate()
    for k in range(8):
        learner.observe_offset(float(k))
    assert learner.can_estimate()


def test_empirical_and_auto_methods_produce_estimates(rng):
    for method in ("empirical", "auto"):
        learner = OffsetDistributionLearner(window=256, method=method)
        for value in rng.normal(0.0, 1.0, size=200):
            learner.observe_offset(float(value))
        estimate = learner.estimate()
        assert estimate.mean == pytest.approx(0.0, abs=0.3)


def test_estimate_requires_observations():
    with pytest.raises(ValueError):
        OffsetDistributionLearner().estimate()


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        OffsetDistributionLearner(window=1)
    with pytest.raises(ValueError):
        OffsetDistributionLearner(method="bogus")


def test_rtt_filter_applies_across_the_window_not_per_probe():
    """Regression: ``observe_probe`` used to filter each probe in isolation
    (``offsets([probe])``), which always kept the probe and silently disabled
    low-RTT filtering.  The filter must act across the retained window."""
    from repro.sync.estimator import OffsetEstimator
    from repro.workloads.learned import synthesize_probe

    learner = OffsetDistributionLearner(
        window=64, method="gaussian", estimator=OffsetEstimator(best_fraction=0.5)
    )
    # 10 clean probes (offset ~0, small RTT) + 10 congested probes (offset 5,
    # huge RTT): the congested half must be excluded from the estimate
    for k in range(10):
        learner.observe_probe(synthesize_probe("c", offset=0.001 * k, round_trip=0.001))
    for k in range(10):
        learner.observe_probe(synthesize_probe("c", offset=5.0, round_trip=0.5))
    assert learner.probe_count == 20
    assert learner.observation_count == 10  # half retained
    offsets = learner.offsets()
    assert offsets.size == 10
    assert offsets.max() < 0.1  # no congested observation survived
    estimate = learner.estimate()
    assert abs(estimate.mean) < 0.1


def test_probe_window_bounds_retained_probes():
    from repro.workloads.learned import synthesize_probe

    learner = OffsetDistributionLearner(window=8, method="gaussian")
    for k in range(20):
        learner.observe_probe(synthesize_probe("c", offset=float(k), round_trip=0.001))
    # only the 8 most recent probes are retained
    assert learner.observation_count == 8
    assert learner.offsets().min() == 12.0
