"""LiveDispatcher semantics: watermark discipline, dedupe, late arrivals,
and bitwise parity with the frozen ``SimBackend`` path."""

from __future__ import annotations

import math

import pytest

from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs import Telemetry
from repro.runtime.base import ClusterWorkload
from repro.runtime.live import LIVE_RUNTIMES, LiveClusterSpec, LiveDispatcher
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario


def _workload(num_clients: int = 10, num_shards: int = 3, seed: int = 29) -> ClusterWorkload:
    scenario = build_cluster_scenario(
        num_clients=num_clients, messages_per_client=5, seed=seed
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=num_shards, config=TommyConfig(seed=seed)
    )


def _feed(dispatcher: LiveDispatcher, workload: ClusterWorkload, sources: int = 3) -> None:
    """Round-robin the frozen messages over several sources, advancing the
    watermark every few submissions like a real intake loop would."""
    names = [f"src-{index}" for index in range(sources)]
    for name in names:
        dispatcher.open_source(name)
    for index, message in enumerate(workload.messages_by_true_time()):
        dispatcher.submit(names[index % sources], message)
        if index % 4 == 3:
            dispatcher.advance()
    for name in names:
        dispatcher.close_source(name)
    dispatcher.advance()


@pytest.mark.parametrize("runtime", LIVE_RUNTIMES)
def test_dispatcher_parity_with_sim_backend(runtime):
    workload = _workload()
    reference = SimBackend().run(workload).fingerprint()

    spec = LiveClusterSpec.from_workload(workload)
    kwargs = {"num_workers": 2} if runtime == "procs" else {}
    with LiveDispatcher(spec, runtime=runtime, **kwargs) as dispatcher:
        _feed(dispatcher, workload)
        outcome = dispatcher.finish()

    assert outcome.backend == f"live-{runtime}"
    assert outcome.message_count == len(workload.messages)
    assert outcome.fingerprint() == reference
    assert outcome.details["late_arrivals"] == 0


def test_spec_from_workload_mirrors_frozen_parameters():
    workload = _workload(num_clients=6, num_shards=2)
    spec = LiveClusterSpec.from_workload(workload)
    assert spec.num_shards == 2
    assert sorted(spec.client_ids()) == sorted(workload.client_ids)
    assert spec.config == workload.config


def test_duplicate_submit_rejected_before_routing():
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    client = sorted(spec.client_ids())[0]
    with LiveDispatcher(spec, runtime="sim") as dispatcher:
        dispatcher.open_source("a")
        first = TimestampedMessage(
            client_id=client, timestamp=1.0, true_time=1.0, message_id=7
        )
        assert dispatcher.submit("a", first) is True
        assert dispatcher.submit("a", first) is False
        assert dispatcher.gate.duplicates_suppressed == 1
        assert dispatcher.admitted == 1
        dispatcher.close_source("a")
        outcome = dispatcher.finish()
    assert outcome.message_count == 1


def test_unknown_client_raises_key_error():
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    with LiveDispatcher(spec, runtime="sim") as dispatcher:
        dispatcher.open_source("a")
        with pytest.raises(KeyError):
            dispatcher.submit(
                "a",
                TimestampedMessage(
                    client_id="nobody", timestamp=1.0, true_time=1.0, message_id=1
                ),
            )
        dispatcher.close_source("a")
        dispatcher.finish()


def test_watermark_is_min_over_open_sources():
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    clients = sorted(spec.client_ids())
    with LiveDispatcher(spec, runtime="sim") as dispatcher:
        dispatcher.open_source("fast")
        dispatcher.open_source("slow")
        assert math.isinf(dispatcher.watermark) and dispatcher.watermark < 0

        dispatcher.submit(
            "fast",
            TimestampedMessage(
                client_id=clients[0], timestamp=9.0, true_time=9.0, message_id=1
            ),
        )
        # the slow source has seen nothing: the global watermark holds at -inf
        assert math.isinf(dispatcher.watermark) and dispatcher.watermark < 0

        dispatcher.submit(
            "slow",
            TimestampedMessage(
                client_id=clients[1], timestamp=4.0, true_time=4.0, message_id=2
            ),
        )
        assert dispatcher.watermark == 4.0

        dispatcher.close_source("slow")
        assert dispatcher.watermark == 9.0
        dispatcher.close_source("fast")
        assert math.isinf(dispatcher.watermark)
        outcome = dispatcher.finish()
    assert outcome.message_count == 2


def test_late_arrival_is_clamped_and_counted():
    telemetry = Telemetry()
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    clients = sorted(spec.client_ids())
    with LiveDispatcher(spec, runtime="sim", telemetry=telemetry) as dispatcher:
        dispatcher.open_source("a")
        dispatcher.submit(
            "a",
            TimestampedMessage(
                client_id=clients[0], timestamp=5.0, true_time=5.0, message_id=1
            ),
        )
        dispatcher.advance()
        # FIFO contract violated: vtime below the already-advanced watermark
        dispatcher.submit(
            "a",
            TimestampedMessage(
                client_id=clients[1], timestamp=1.0, true_time=1.0, message_id=2
            ),
        )
        dispatcher.close_source("a")
        outcome = dispatcher.finish()
    assert dispatcher.late_arrivals == 1
    assert outcome.details["late_arrivals"] == 1
    # the late message is clamped to "now", not dropped
    assert outcome.message_count == 2


def test_finish_is_idempotent_and_submit_after_finish_raises():
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    client = sorted(spec.client_ids())[0]
    dispatcher = LiveDispatcher(spec, runtime="sim")
    dispatcher.open_source("a")
    dispatcher.submit(
        "a",
        TimestampedMessage(client_id=client, timestamp=1.0, true_time=1.0, message_id=1),
    )
    dispatcher.close_source("a")
    first = dispatcher.finish()
    second = dispatcher.finish()
    assert first is second
    with pytest.raises(RuntimeError):
        dispatcher.submit(
            "a",
            TimestampedMessage(
                client_id=client, timestamp=2.0, true_time=2.0, message_id=2
            ),
        )


def test_heartbeat_advances_source_watermark():
    spec = LiveClusterSpec.from_workload(_workload(num_clients=4, num_shards=2))
    clients = sorted(spec.client_ids())
    with LiveDispatcher(spec, runtime="sim") as dispatcher:
        dispatcher.open_source("a")
        dispatcher.submit_heartbeat(
            "a", Heartbeat(client_id=clients[0], timestamp=7.0, true_time=7.0)
        )
        assert dispatcher.watermark == 7.0
        dispatcher.close_source("a")
        dispatcher.finish()
