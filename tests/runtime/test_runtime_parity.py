"""Cross-backend parity: sim and procs must produce one merged order.

The contract this file pins is the PR's acceptance criterion: the same
frozen workload (message timestamps generated once) run through the
deterministic sim backend and through real worker processes yields a
bitwise-equal merged order — per-shard batch streams included — for any
worker count and merge topology.
"""

from __future__ import annotations

import pytest

from repro.cluster.merge import merge_fingerprint
from repro.core.config import TommyConfig
from repro.obs.telemetry import Telemetry
from repro.runtime.base import ClusterWorkload
from repro.runtime.procs import ProcBackend
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario


def _workload(num_shards=4, num_clients=8, messages_per_client=4, **kwargs):
    scenario = build_cluster_scenario(
        num_clients, messages_per_client=messages_per_client, seed=13
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=num_shards, config=TommyConfig(seed=13), **kwargs
    )


def _batch_stream_fingerprint(shard_batches):
    return [
        [(batch.rank, tuple(m.key for m in batch.messages)) for batch in stream]
        for stream in shard_batches
    ]


def test_sim_vs_procs_merged_order_bitwise_equal():
    workload = _workload(num_shards=4)
    sim = SimBackend().run(workload)
    with ProcBackend() as backend:
        procs = backend.run(workload)
    assert procs.num_workers == 4
    assert sim.fingerprint() == procs.fingerprint()
    # parity holds at per-shard stream granularity too, not just post-merge
    assert _batch_stream_fingerprint(sim.shard_batches) == _batch_stream_fingerprint(
        procs.shard_batches
    )


@pytest.mark.parametrize("num_workers", [1, 2, 4])
def test_worker_count_never_changes_the_order(num_workers):
    workload = _workload(num_shards=4)
    sim = SimBackend().run(workload)
    with ProcBackend(num_workers=num_workers) as backend:
        procs = backend.run(workload)
    assert procs.num_workers == num_workers
    assert sim.fingerprint() == procs.fingerprint()


def test_tree_topology_parity_across_backends():
    workload = _workload(num_shards=4, merge_topology="binary", merge_fanout=2)
    sim = SimBackend().run(workload)
    with ProcBackend() as backend:
        procs = backend.run(workload)
    assert sim.fingerprint() == procs.fingerprint()


def test_procs_matches_offline_oracle_merge():
    """The streamed coordinator merge equals an offline re-merge of the
    collected per-shard streams through the cluster's own merger."""
    from repro.cluster.sharded import ShardedSequencer
    from repro.simulation.event_loop import EventLoop

    workload = _workload(num_shards=2, num_clients=6, messages_per_client=3)
    with ProcBackend() as backend:
        procs = backend.run(workload)
    cluster = ShardedSequencer(
        EventLoop(),
        workload.client_distributions,
        num_shards=workload.num_shards,
        config=workload.config,
        streaming_merge=False,
    )
    offline = cluster.merger.merge(procs.shard_batches)
    assert merge_fingerprint(offline) == procs.fingerprint()


def test_single_shard_degenerate_parity():
    workload = _workload(num_shards=1, num_clients=4, messages_per_client=3)
    sim = SimBackend().run(workload)
    with ProcBackend() as backend:
        procs = backend.run(workload)
    assert sim.fingerprint() == procs.fingerprint()


def test_telemetry_absorbed_from_workers_covers_pipeline_stages():
    workload = _workload(num_shards=2, num_clients=6, messages_per_client=3)
    telemetry = Telemetry()
    with ProcBackend(telemetry=telemetry) as backend:
        backend.run(workload)
    stages = {record.stage for record in telemetry.stage_records}
    # worker-side sequencing stages and coordinator-side merge stages all
    # land in the one absorbed hub
    assert {"shard_intake", "engine_append", "batch_emit"} <= stages
    assert {"merge_observe", "merge_commit"} <= stages
    shards = {record.shard for record in telemetry.stage_records if record.shard is not None}
    assert shards == {0, 1}
