"""ProcBackend lifecycle: worker placement, crash surfacing, cleanup."""

from __future__ import annotations

import multiprocessing as mp

import pytest

from repro.core.config import TommyConfig
from repro.runtime.base import ClusterWorkload
from repro.runtime.procs import ProcBackend, RestartPolicy, WorkerCrashed
from repro.workloads.cluster import build_cluster_scenario


def _workload(num_shards=4, num_clients=8, messages_per_client=3):
    scenario = build_cluster_scenario(
        num_clients, messages_per_client=messages_per_client, seed=13
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=num_shards, config=TommyConfig(seed=13)
    )


def _no_orphans():
    for child in mp.active_children():
        child.join(timeout=2.0)
    return not mp.active_children()


def test_workers_capped_by_shard_count():
    backend = ProcBackend(num_workers=8)
    assert backend.workers_for(3) == 3
    assert ProcBackend(num_workers=2).workers_for(5) == 2
    assert ProcBackend().workers_for(4) == 4


def test_shards_spread_round_robin_over_workers():
    workload = _workload(num_shards=4)
    with ProcBackend(num_workers=2) as backend:
        outcome = backend.run(workload)
    assert outcome.num_workers == 2
    assert outcome.details["shards_per_worker"] == [2, 2]
    assert _no_orphans()


def test_worker_hard_exit_raises_with_shard_id():
    # max_restarts=0 restores the fail-fast behaviour this test pins down
    workload = _workload()
    backend = ProcBackend(
        inject_crash=2, crash_mode="exit", restart_policy=RestartPolicy(max_restarts=0)
    )
    with pytest.raises(WorkerCrashed) as excinfo:
        backend.run(workload)
    assert 2 in excinfo.value.shard_ids
    assert _no_orphans()


def test_worker_exception_raises_with_shard_id_and_traceback():
    workload = _workload()
    backend = ProcBackend(
        inject_crash=1, crash_mode="error", restart_policy=RestartPolicy(max_restarts=0)
    )
    with pytest.raises(WorkerCrashed) as excinfo:
        backend.run(workload)
    assert excinfo.value.shard_ids == (1,)
    assert "injected failure" in str(excinfo.value)
    assert _no_orphans()


def test_per_shard_summaries_reported():
    workload = _workload(num_shards=2, num_clients=6)
    with ProcBackend() as backend:
        outcome = backend.run(workload)
    per_shard = outcome.details["per_shard"]
    assert sorted(per_shard) == [0, 1]
    total = sum(summary["message_count"] for summary in per_shard.values())
    assert total == len(workload.messages)
    assert _no_orphans()
