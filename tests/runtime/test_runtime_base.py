"""Runtime seam: protocols, clock handles and the workload container."""

from __future__ import annotations

import pytest

from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.runtime.base import (
    RUNTIME_NAMES,
    ClockHandle,
    ClusterWorkload,
    Scheduler,
    SchedulerClock,
    WallClock,
    clock_of,
    resolve_backend,
)
from repro.runtime.procs import ProcBackend
from repro.runtime.sim import SimBackend
from repro.simulation.event_loop import EventLoop


def _workload(num_clients=4, num_shards=2, messages_per_client=2):
    distributions = {
        f"c{i}": GaussianDistribution(0.0, 0.001 * (i + 1)) for i in range(num_clients)
    }
    messages = []
    for i in range(num_clients):
        for j in range(messages_per_client):
            t = 0.01 * (j * num_clients + i)
            messages.append(
                TimestampedMessage(client_id=f"c{i}", timestamp=t, true_time=t)
            )
    return ClusterWorkload(
        messages=tuple(messages),
        client_distributions=distributions,
        num_shards=num_shards,
        config=TommyConfig(seed=5),
    )


def test_event_loop_satisfies_scheduler_protocol():
    loop = EventLoop()
    assert isinstance(loop, Scheduler)


def test_loop_clock_handle_tracks_simulated_time():
    loop = EventLoop()
    clock = clock_of(loop)
    assert isinstance(clock, ClockHandle)
    assert clock.now() == 0.0
    loop.schedule_at(1.25, lambda: None)
    loop.run()
    assert clock.now() == 1.25
    # the native handle is cached on the loop
    assert clock_of(loop) is clock


def test_scheduler_clock_wraps_foreign_schedulers():
    class Bare:
        now = 3.5

        def schedule_at(self, *a, **k):
            raise NotImplementedError

        def schedule_after(self, *a, **k):
            raise NotImplementedError

        def cancel(self, event):
            raise NotImplementedError

    clock = clock_of(Bare())
    assert isinstance(clock, SchedulerClock)
    assert clock.now() == 3.5


def test_wall_clock_is_monotone():
    clock = WallClock()
    assert isinstance(clock, ClockHandle)
    first = clock.now()
    assert clock.now() >= first


def test_workload_validation():
    with pytest.raises(ValueError, match="num_shards"):
        _workload(num_shards=0)
    with pytest.raises(ValueError, match="unregistered"):
        ClusterWorkload(
            messages=(TimestampedMessage(client_id="ghost", timestamp=0.0, true_time=0.0),),
            client_distributions={},
            num_shards=1,
        )


def test_closing_heartbeat_covers_whole_workload():
    workload = _workload()
    end_time, beacon = workload.closing_heartbeat()
    latest = max(m.true_time for m in workload.messages)
    assert end_time == pytest.approx(latest + workload.heartbeat_slack)
    assert beacon == pytest.approx(
        max(m.timestamp for m in workload.messages) + workload.heartbeat_slack
    )
    silent = ClusterWorkload(
        messages=workload.messages,
        client_distributions=workload.client_distributions,
        num_shards=2,
        final_heartbeats=False,
    )
    assert silent.closing_heartbeat() is None


def test_router_assignments_cover_every_client_exactly_once():
    workload = _workload(num_clients=7, num_shards=3)
    assignments = workload.shard_assignments()
    flat = [client for shard in assignments for client in shard]
    assert sorted(flat) == sorted(workload.client_ids)
    assert len(flat) == len(set(flat))


def test_resolve_backend_names():
    assert isinstance(resolve_backend("sim"), SimBackend)
    assert isinstance(resolve_backend("procs"), ProcBackend)
    assert isinstance(resolve_backend("procs", num_workers=2), ProcBackend)
    with pytest.raises(ValueError, match="unknown runtime"):
        resolve_backend("threads")
    assert RUNTIME_NAMES == ("sim", "procs")


def test_backends_are_context_managers():
    with resolve_backend("sim") as backend:
        assert backend.name == "sim"
    with resolve_backend("procs") as backend:
        assert backend.name == "procs"


def test_runtime_outcome_throughput():
    workload = _workload()
    outcome = SimBackend().run(workload)
    assert outcome.message_count == len(workload.messages)
    assert outcome.messages_per_second > 0
    assert outcome.fingerprint()  # non-empty merged order
