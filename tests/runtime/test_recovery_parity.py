"""Crash-matrix recovery parity: restarted procs runs stay bitwise equal to sim.

The supervision layer's contract is that worker death and restart-with-replay
are invisible in the output: the frozen ``ShardTask`` replays
deterministically, the coordinator's observation-cursor gate drops the
already-observed prefix, and the merged order comes out bitwise equal to
``SimBackend`` on the same workload.  The default parametrization covers each
crash mode (hard kill / exception / clean-exit-with-unfinished-shards), each
worker count (1/2/4), both merge topologies, and both crash points
(mid-stream / after the last batch) at least once; set ``RECOVERY_MATRIX=full``
for the exhaustive product (nightly soak).
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os

import pytest

from repro.core.config import TommyConfig
from repro.obs.telemetry import Telemetry
from repro.runtime.base import ClusterWorkload
from repro.runtime.procs import ProcBackend, RestartPolicy, WorkerCrashed
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario

FAST_POLICY = RestartPolicy(max_restarts=2, backoff_base=0.01, backoff_cap=0.05)

# (crash_mode, num_workers, merge_topology, crash_point) — the reduced matrix
# touches every value of every axis at least once
_DEFAULT_CELLS = [
    ("exit", 1, "flat", "mid"),
    ("error", 2, "flat", "mid"),
    ("clean", 2, "flat", "mid"),
    ("exit", 4, "binary", "mid"),
    ("error", 1, "binary", "end"),
    ("clean", 4, "flat", "end"),
]
_FULL_CELLS = list(
    itertools.product(("exit", "error", "clean"), (1, 2, 4), ("flat", "binary"), ("mid", "end"))
)
CELLS = _FULL_CELLS if os.environ.get("RECOVERY_MATRIX") == "full" else _DEFAULT_CELLS

#: shard whose worker gets killed: non-zero so single-worker runs crash
#: mid-assignment (shards 0..1 finished, 2..3 pending) rather than up front
CRASH_SHARD = 2


def _workload(num_shards=4, num_clients=8, messages_per_client=3, merge_topology="flat"):
    scenario = build_cluster_scenario(
        num_clients, messages_per_client=messages_per_client, seed=13
    )
    return ClusterWorkload.from_scenario(
        scenario,
        num_shards=num_shards,
        config=TommyConfig(seed=13),
        merge_topology=merge_topology,
    )


def _no_orphans():
    for child in mp.active_children():
        child.join(timeout=2.0)
    return not mp.active_children()


def _sim_fingerprint(workload):
    with SimBackend() as backend:
        return backend.run(workload).fingerprint()


@pytest.mark.parametrize("crash_mode,num_workers,merge_topology,crash_point", CELLS)
def test_crash_recovery_is_bitwise_equal_to_sim(
    crash_mode, num_workers, merge_topology, crash_point
):
    workload = _workload(merge_topology=merge_topology)
    expected = _sim_fingerprint(workload)
    with ProcBackend(
        num_workers=num_workers,
        inject_crash=CRASH_SHARD,
        crash_mode=crash_mode,
        crash_point=crash_point,
        restart_policy=FAST_POLICY,
        poll_timeout=0.05,
    ) as backend:
        outcome = backend.run(workload)
    assert outcome.fingerprint() == expected
    assert outcome.details["worker_restarts"] >= 1
    assert CRASH_SHARD in outcome.details["shards_recovered"]
    assert outcome.lost_shards == ()
    assert _no_orphans()


def test_recovery_counters_reach_telemetry_registry():
    workload = _workload()
    telemetry = Telemetry()
    with ProcBackend(
        num_workers=2,
        telemetry=telemetry,
        inject_crash=CRASH_SHARD,
        crash_mode="exit",
        crash_point="mid",
        restart_policy=FAST_POLICY,
        poll_timeout=0.05,
    ) as backend:
        outcome = backend.run(workload)
    assert outcome.fingerprint() == _sim_fingerprint(workload)
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["runtime.worker_restarts"] >= 1
    assert counters["runtime.shards_recovered"] >= 1
    names = [record.name for record in telemetry.event_records if record.kind == "runtime"]
    for expected_event in ("worker_spawn", "worker_death", "worker_backoff", "worker_restart"):
        assert expected_event in names
    assert _no_orphans()


def test_exhausted_budget_excludes_lost_shards_without_raising():
    workload = _workload()
    with ProcBackend(
        num_workers=4,
        inject_crash=CRASH_SHARD,
        crash_mode="exit",
        crash_point="start",
        restart_policy=RestartPolicy(max_restarts=0),
        on_shard_loss="exclude",
        poll_timeout=0.05,
    ) as backend:
        outcome = backend.run(workload)
    # one worker per shard: exactly the crashed shard is excluded, and the
    # merge finalizes over the three survivors
    assert outcome.lost_shards == (CRASH_SHARD,)
    assert outcome.details["lost_shards"] == [CRASH_SHARD]
    merged_keys = {
        message.key for batch in outcome.merge.result.batches for message in batch.messages
    }
    survivor_keys = {
        message.key
        for shard, batches in enumerate(outcome.shard_batches)
        if shard != CRASH_SHARD
        for batch in batches
        for message in batch.messages
    }
    assert merged_keys == survivor_keys
    assert _no_orphans()


def test_clean_exit_with_unfinished_shards_does_not_hang():
    # regression: a worker exiting with code 0 while other workers stay alive
    # used to be skipped by the per-process `exitcode not in (0, None)` check
    # and the all-dead fallback never fired — the poll loop spun forever.
    # With a zero restart budget the supervisor must now surface the crash.
    workload = _workload()
    backend = ProcBackend(
        num_workers=2,
        inject_crash=CRASH_SHARD,
        crash_mode="clean",
        crash_point="start",
        restart_policy=RestartPolicy(max_restarts=0),
        poll_timeout=0.05,
    )
    with pytest.raises(WorkerCrashed) as excinfo:
        backend.run(workload)
    assert CRASH_SHARD in excinfo.value.shard_ids
    backend.close()
    backend.close()  # idempotent after a failed, partially drained run
    assert _no_orphans()


def test_restart_policy_validates_and_backs_off_exponentially():
    policy = RestartPolicy(max_restarts=3, backoff_base=0.1, backoff_cap=0.3)
    assert policy.backoff_for(0) == pytest.approx(0.1)
    assert policy.backoff_for(1) == pytest.approx(0.2)
    assert policy.backoff_for(2) == pytest.approx(0.3)  # capped
    assert RestartPolicy(backoff_base=0.0).backoff_for(5) == 0.0
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=-1)
    with pytest.raises(ValueError):
        RestartPolicy(backoff_base=-0.1)
    with pytest.raises(ValueError):
        ProcBackend(crash_point="sideways")
    with pytest.raises(ValueError):
        ProcBackend(on_shard_loss="shrug")
    with pytest.raises(ValueError):
        ProcBackend(crash_mode="unplug")
