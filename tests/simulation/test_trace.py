"""Tests for the trace recorder."""

import pytest

from repro.simulation.trace import TraceRecorder


def test_record_and_filter_by_kind_and_source():
    trace = TraceRecorder()
    trace.record(1.0, "client-a", "send", size=10)
    trace.record(2.0, "client-b", "send", size=20)
    trace.record(3.0, "client-a", "deliver")
    assert len(trace) == 3
    assert len(trace.events(kind="send")) == 2
    assert len(trace.events(source="client-a")) == 2
    assert len(trace.events(kind="send", source="client-a")) == 1


def test_disabled_recorder_ignores_events():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "x", "y")
    assert len(trace) == 0
    trace.enable()
    trace.record(2.0, "x", "y")
    assert len(trace) == 1
    trace.disable()
    trace.record(3.0, "x", "y")
    assert len(trace) == 1


def test_details_are_stored_per_event():
    trace = TraceRecorder()
    trace.record(1.0, "node", "kind", value=42)
    event = trace.events()[0]
    assert event.details["value"] == 42
    assert event.time == 1.0


def test_clear_removes_events():
    trace = TraceRecorder()
    trace.record(1.0, "x", "y")
    trace.clear()
    assert len(trace) == 0


def test_iteration_yields_events_in_order():
    trace = TraceRecorder()
    for t in (1.0, 2.0, 3.0):
        trace.record(t, "s", "k")
    assert [event.time for event in trace] == [1.0, 2.0, 3.0]


def test_unbounded_by_default():
    trace = TraceRecorder()
    assert trace.capacity is None
    for t in range(1000):
        trace.record(float(t), "s", "k")
    assert len(trace) == 1000
    assert trace.dropped_events == 0


def test_ring_buffer_keeps_newest_and_counts_dropped():
    trace = TraceRecorder(capacity=3)
    for t in (1.0, 2.0, 3.0, 4.0, 5.0):
        trace.record(t, "s", "k")
    assert trace.capacity == 3
    assert len(trace) == 3
    assert [event.time for event in trace] == [3.0, 4.0, 5.0]
    assert trace.dropped_events == 2


def test_ring_buffer_clear_resets_dropped_counter():
    trace = TraceRecorder(capacity=1)
    trace.record(1.0, "s", "k")
    trace.record(2.0, "s", "k")
    assert trace.dropped_events == 1
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped_events == 0
    trace.record(3.0, "s", "k")
    assert [event.time for event in trace] == [3.0]


def test_ring_buffer_rejects_bad_capacity():
    with pytest.raises(ValueError):
        TraceRecorder(capacity=0)
