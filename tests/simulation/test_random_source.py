"""Tests for deterministic random stream management."""

import numpy as np

from repro.simulation.random_source import RandomSource


def test_same_seed_same_stream_produces_identical_draws():
    a = RandomSource(42).stream("clock")
    b = RandomSource(42).stream("clock")
    assert np.allclose(a.normal(size=10), b.normal(size=10))


def test_different_stream_names_are_independent():
    source = RandomSource(42)
    a = source.stream("clock").normal(size=10)
    b = source.stream("network").normal(size=10)
    assert not np.allclose(a, b)


def test_stream_is_cached_and_stateful():
    source = RandomSource(1)
    first = source.stream("x").normal(size=5)
    second = source.stream("x").normal(size=5)
    assert not np.allclose(first, second)


def test_spawn_creates_derived_source():
    parent = RandomSource(7)
    child_a = parent.spawn("child")
    child_b = RandomSource(7).spawn("child")
    assert child_a.seed == child_b.seed
    assert child_a.seed != parent.seed


def test_none_seed_defaults_to_zero():
    assert RandomSource(None).seed == 0


def test_adding_streams_does_not_perturb_existing_stream():
    solo = RandomSource(3)
    solo_draws = solo.stream("a").normal(size=10)

    mixed = RandomSource(3)
    mixed.stream("b").normal(size=10)  # interleave another stream first
    mixed_draws = mixed.stream("a").normal(size=10)
    assert np.allclose(solo_draws, mixed_draws)
