"""Tests for the Entity scheduling helpers."""

from repro.simulation.entity import Entity
from repro.simulation.event_loop import EventLoop


def test_entity_exposes_loop_time():
    loop = EventLoop(start_time=4.0)
    entity = Entity(loop, "node")
    assert entity.now == 4.0
    assert entity.name == "node"
    assert entity.loop is loop


def test_call_after_schedules_relative_to_now():
    loop = EventLoop()
    entity = Entity(loop, "node")
    fired = []
    entity.call_after(2.0, fired.append, "x")
    loop.run()
    assert fired == ["x"]
    assert loop.now == 2.0


def test_call_at_schedules_absolute():
    loop = EventLoop()
    entity = Entity(loop, "node")
    fired = []
    entity.call_at(3.5, fired.append, "y")
    loop.run()
    assert loop.now == 3.5
    assert fired == ["y"]


def test_cancel_none_is_noop():
    loop = EventLoop()
    entity = Entity(loop, "node")
    entity.cancel(None)  # must not raise


def test_cancel_pending_event():
    loop = EventLoop()
    entity = Entity(loop, "node")
    fired = []
    event = entity.call_after(1.0, fired.append, "x")
    entity.cancel(event)
    loop.run()
    assert fired == []
