"""Tests for the discrete-event simulation loop."""

import pytest

from repro.simulation.event_loop import EventLoop, SimulationError


def test_events_run_in_time_order():
    loop = EventLoop()
    fired = []
    loop.schedule_at(3.0, fired.append, "c")
    loop.schedule_at(1.0, fired.append, "a")
    loop.schedule_at(2.0, fired.append, "b")
    loop.run()
    assert fired == ["a", "b", "c"]


def test_same_time_events_run_in_scheduling_order():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, fired.append, "first")
    loop.schedule_at(1.0, fired.append, "second")
    loop.schedule_at(1.0, fired.append, "third")
    loop.run()
    assert fired == ["first", "second", "third"]


def test_priority_breaks_ties_before_sequence():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, fired.append, "low", priority=5)
    loop.schedule_at(1.0, fired.append, "high", priority=-5)
    loop.run()
    assert fired == ["high", "low"]


def test_now_advances_to_executed_event_time():
    loop = EventLoop()
    loop.schedule_at(2.5, lambda: None)
    loop.run()
    assert loop.now == 2.5


def test_run_until_stops_before_later_events():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, fired.append, "early")
    loop.schedule_at(5.0, fired.append, "late")
    executed = loop.run(until=2.0)
    assert executed == 1
    assert fired == ["early"]
    assert loop.now == 2.0
    loop.run()
    assert fired == ["early", "late"]


def test_run_until_advances_time_even_with_empty_queue():
    loop = EventLoop()
    loop.run(until=7.0)
    assert loop.now == 7.0


def test_schedule_after_uses_relative_delay():
    loop = EventLoop(start_time=10.0)
    times = []
    loop.schedule_after(1.5, lambda: times.append(loop.now))
    loop.run()
    assert times == [11.5]


def test_scheduling_in_the_past_raises():
    loop = EventLoop(start_time=5.0)
    with pytest.raises(SimulationError):
        loop.schedule_at(4.0, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.schedule_after(-0.1, lambda: None)


def test_cancelled_event_does_not_fire():
    loop = EventLoop()
    fired = []
    event = loop.schedule_at(1.0, fired.append, "x")
    loop.cancel(event)
    loop.run()
    assert fired == []
    assert loop.stats()["cancelled"] == 1


def test_events_can_schedule_more_events():
    loop = EventLoop()
    fired = []

    def first():
        fired.append("first")
        loop.schedule_after(1.0, second)

    def second():
        fired.append("second")

    loop.schedule_at(1.0, first)
    loop.run()
    assert fired == ["first", "second"]
    assert loop.now == 2.0


def test_stop_halts_run():
    loop = EventLoop()
    fired = []
    loop.schedule_at(1.0, lambda: (fired.append("a"), loop.stop()))
    loop.schedule_at(2.0, fired.append, "b")
    loop.run()
    assert fired == ["a"]


def test_max_events_limits_execution():
    loop = EventLoop()
    fired = []
    for k in range(5):
        loop.schedule_at(float(k + 1), fired.append, k)
    executed = loop.run(max_events=3)
    assert executed == 3
    assert fired == [0, 1, 2]


def test_step_returns_none_when_idle():
    loop = EventLoop()
    assert loop.step() is None


def test_next_event_time_skips_cancelled():
    loop = EventLoop()
    event = loop.schedule_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    loop.cancel(event)
    assert loop.next_event_time() == 2.0


def test_callback_args_and_kwargs_are_passed():
    loop = EventLoop()
    seen = {}
    loop.schedule_at(1.0, lambda a, b=None: seen.update({"a": a, "b": b}), 1, b=2)
    loop.run()
    assert seen == {"a": 1, "b": 2}


def test_stats_track_scheduled_and_executed():
    loop = EventLoop()
    loop.schedule_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    loop.run()
    stats = loop.stats()
    assert stats["scheduled"] == 2
    assert stats["executed"] == 2


def test_heap_compaction_bounds_cancelled_event_pileup():
    # the online sequencer's cancel-and-reschedule-per-arrival pattern: a
    # 10k-arrival burst must not grow the heap with dead events
    loop = EventLoop()
    live = None
    for k in range(10_000):
        if live is not None:
            loop.cancel(live)
        live = loop.schedule_at(100.0, lambda: None)
        # compaction keeps the queue within ~2x the live event count (+1
        # for the not-yet-reaped newest cancellation)
        assert loop.pending_events <= max(EventLoop.COMPACTION_MIN_QUEUE, 3)
    stats = loop.stats()
    assert stats["compactions"] > 0
    assert stats["cancelled"] == 9_999
    executed = loop.run()
    assert executed == 1  # only the last scheduled check survives


def test_heap_compaction_preserves_execution_order():
    loop = EventLoop()
    fired = []
    keep = [loop.schedule_at(float(k), fired.append, k) for k in range(200)]
    doomed = [loop.schedule_at(float(k % 200) + 0.5, fired.append, -k) for k in range(300)]
    for event in doomed:
        loop.cancel(event)
    assert loop.stats()["compactions"] > 0
    loop.run()
    assert fired == list(range(200))


def test_small_queues_are_never_compacted():
    loop = EventLoop()
    event = loop.schedule_at(1.0, lambda: None)
    loop.schedule_at(2.0, lambda: None)
    loop.cancel(event)
    assert loop.stats()["compactions"] == 0
    assert loop.pending_events == 2  # lazy removal still applies below the floor
