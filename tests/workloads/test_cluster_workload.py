"""Tests for the cluster-scale multi-region workload builders."""

import pytest

from repro.cluster.router import RegionAffineSharding
from repro.workloads.cluster import (
    build_cluster_scenario,
    cluster_region_profiles,
    region_affine_policy,
)


def test_profiles_scale_with_region_index():
    profiles = cluster_region_profiles(num_regions=4)
    assert len(profiles) == 4
    assert [profile.name for profile in profiles] == [f"region-{i}" for i in range(4)]
    stds = [profile.clock_std for profile in profiles]
    delays = [profile.delay_median for profile in profiles]
    assert stds == sorted(stds) and stds[0] < stds[-1]
    assert delays == sorted(delays) and delays[0] < delays[-1]
    assert profiles[0].clock_bias == 0.0


def test_profiles_validation():
    with pytest.raises(ValueError):
        cluster_region_profiles(num_regions=0)


def test_build_cluster_scenario_is_deterministic_and_placed():
    first = build_cluster_scenario(24, seed=11)
    second = build_cluster_scenario(24, seed=11)
    assert first.region_of == second.region_of
    assert [m.key[0] for m in first.scenario.messages] == [m.key[0] for m in second.scenario.messages]
    assert [m.timestamp for m in first.scenario.messages] == [
        m.timestamp for m in second.scenario.messages
    ]
    assert len(first.scenario.messages) == 48  # messages_per_client defaults to 2
    assert set(first.region_of.values()) <= {f"region-{i}" for i in range(4)}


def test_region_affine_policy_matches_placement():
    placement = build_cluster_scenario(30, seed=4)
    policy = region_affine_policy(placement)
    assert isinstance(policy, RegionAffineSharding)
    loads = [0, 0]
    shard_of_region = {}
    for client_id, region in placement.region_of.items():
        shard = policy.assign(client_id, 2, loads)
        shard_of_region.setdefault(region, set()).add(shard)
    assert all(len(shards) == 1 for shards in shard_of_region.values())
