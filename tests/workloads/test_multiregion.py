"""Tests for multi-region scenario generation."""

import numpy as np
import pytest

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.metrics.ras import rank_agreement_score
from repro.sequencers.truetime import TrueTimeSequencer
from repro.workloads.multiregion import (
    DEFAULT_REGIONS,
    RegionProfile,
    build_multiregion_scenario,
)


def test_every_client_is_placed_in_a_known_region():
    multi = build_multiregion_scenario(num_clients=30, seed=1)
    assert len(multi.region_of) == 30
    region_names = {region.name for region in multi.regions}
    assert set(multi.region_of.values()) <= region_names
    placed = sum(len(multi.clients_in(name)) for name in region_names)
    assert placed == 30


def test_region_clock_quality_differs_between_profiles():
    multi = build_multiregion_scenario(num_clients=60, seed=2)
    local_stds = [multi.client_distributions[c].std for c in multi.clients_in("local")]
    remote_stds = [multi.client_distributions[c].std for c in multi.clients_in("remote")]
    assert local_stds and remote_stds
    assert np.mean(remote_stds) > 10 * np.mean(local_stds)


def test_delay_models_follow_region_profiles(rng):
    multi = build_multiregion_scenario(num_clients=40, seed=3)
    local_clients = multi.clients_in("local")
    remote_clients = multi.clients_in("remote")
    assert local_clients and remote_clients
    local_delay = multi.delay_model_for(local_clients[0]).mean
    remote_delay = multi.delay_model_for(remote_clients[0]).mean
    assert remote_delay > 10 * local_delay


def test_generation_is_deterministic_per_seed():
    a = build_multiregion_scenario(num_clients=20, seed=5)
    b = build_multiregion_scenario(num_clients=20, seed=5)
    assert a.region_of == b.region_of
    assert [m.timestamp for m in a.scenario.messages] == [m.timestamp for m in b.scenario.messages]


def test_weights_bias_placement():
    heavy_local = (
        RegionProfile(name="local", clock_std=20e-6, weight=9.0),
        RegionProfile(name="remote", clock_std=2e-3, weight=1.0),
    )
    multi = build_multiregion_scenario(num_clients=100, regions=heavy_local, seed=7)
    assert len(multi.clients_in("local")) > len(multi.clients_in("remote"))


def test_tommy_orders_multiregion_burst_at_least_as_well_as_truetime():
    multi = build_multiregion_scenario(num_clients=30, seed=11)
    messages = list(multi.scenario.messages)
    tommy = TommySequencer(multi.client_distributions, TommyConfig(threshold=0.6))
    truetime = TrueTimeSequencer(multi.client_distributions)
    tommy_score = rank_agreement_score(tommy.sequence(messages), messages).score
    truetime_score = rank_agreement_score(truetime.sequence(messages), messages).score
    assert tommy_score >= truetime_score


def test_invalid_inputs_rejected():
    with pytest.raises(ValueError):
        build_multiregion_scenario(num_clients=0)
    with pytest.raises(ValueError):
        build_multiregion_scenario(num_clients=5, regions=())
    with pytest.raises(ValueError):
        RegionProfile(name="", clock_std=1e-3)
    with pytest.raises(ValueError):
        RegionProfile(name="x", clock_std=-1.0)
    with pytest.raises(ValueError):
        RegionProfile(name="x", clock_std=1e-3, delay_median=0.0)
    with pytest.raises(ValueError):
        RegionProfile(name="x", clock_std=1e-3, weight=0.0)
