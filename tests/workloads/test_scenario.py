"""Tests for offline scenario generation."""

import numpy as np
import pytest

from repro.distributions.parametric import GaussianDistribution
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


def small_config(**kwargs):
    defaults = dict(
        num_clients=10,
        arrivals=UniformGapArrivals(messages_per_client=2, gap=1.0),
        seed=3,
    )
    defaults.update(kwargs)
    return ScenarioConfig(**defaults)


def test_scenario_produces_expected_message_count():
    scenario = build_scenario(small_config())
    assert len(scenario.messages) == 20
    assert len(scenario.clients) == 10
    assert set(scenario.client_distributions) == set(scenario.client_ids)


def test_messages_carry_ground_truth_and_noisy_timestamp():
    scenario = build_scenario(
        small_config(distribution_factory=lambda i, rng: GaussianDistribution(0.0, 5.0))
    )
    errors = [message.timestamp - message.true_time for message in scenario.messages]
    assert any(abs(error) > 0.01 for error in errors)
    assert np.std(errors) == pytest.approx(5.0, rel=0.5)


def test_zero_noise_scenario_has_exact_timestamps():
    scenario = build_scenario(
        small_config(distribution_factory=lambda i, rng: GaussianDistribution(0.0, 1e-12))
    )
    for message in scenario.messages:
        assert message.timestamp == pytest.approx(message.true_time, abs=1e-9)


def test_scenario_is_deterministic_for_a_seed():
    a = build_scenario(small_config(seed=42))
    b = build_scenario(small_config(seed=42))
    assert [m.timestamp for m in a.messages] == [m.timestamp for m in b.messages]
    assert [m.true_time for m in a.messages] == [m.true_time for m in b.messages]


def test_different_seeds_differ():
    a = build_scenario(small_config(seed=1))
    b = build_scenario(small_config(seed=2))
    assert [m.timestamp for m in a.messages] != [m.timestamp for m in b.messages]


def test_messages_by_client_groups_in_true_time_order():
    scenario = build_scenario(small_config())
    grouped = scenario.messages_by_client()
    assert set(grouped) == set(scenario.client_ids)
    for client_messages in grouped.values():
        true_times = [message.true_time for message in client_messages]
        assert true_times == sorted(true_times)


def test_messages_by_true_time_is_sorted():
    scenario = build_scenario(small_config())
    ordered = scenario.messages_by_true_time()
    assert [m.true_time for m in ordered] == sorted(m.true_time for m in ordered)


def test_default_factory_assigns_positive_sigmas():
    scenario = build_scenario(small_config(default_sigma=10.0))
    for distribution in scenario.client_distributions.values():
        assert distribution.std > 0


def test_invalid_configuration_rejected():
    with pytest.raises(ValueError):
        ScenarioConfig(num_clients=0)
    with pytest.raises(ValueError):
        ScenarioConfig(default_sigma=-1.0)
