"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.workloads.arrivals import BurstArrivals, PoissonArrivals, UniformGapArrivals


def test_uniform_gap_round_robins_clients(rng):
    arrivals = UniformGapArrivals(messages_per_client=2, gap=1.0)
    times = arrivals.generate(["a", "b"], rng)
    assert sorted(times) == ["a", "b"]
    assert len(times["a"]) == 2
    assert len(times["b"]) == 2
    merged = sorted(times["a"] + times["b"])
    gaps = np.diff(merged)
    assert np.allclose(gaps, 1.0)


def test_uniform_gap_zero_gap_still_strictly_increasing(rng):
    arrivals = UniformGapArrivals(messages_per_client=3, gap=0.0)
    times = arrivals.generate(["a", "b"], rng)
    merged = sorted(times["a"] + times["b"])
    assert all(later > earlier for earlier, later in zip(merged, merged[1:]))


def test_uniform_gap_jitter_varies_spacing(rng):
    arrivals = UniformGapArrivals(messages_per_client=10, gap=1.0, jitter_fraction=0.5)
    times = arrivals.generate(["a", "b", "c"], rng)
    merged = sorted(sum(times.values(), []))
    gaps = np.diff(merged)
    assert gaps.std() > 0


def test_uniform_gap_per_client_times_are_sorted(rng):
    arrivals = UniformGapArrivals(messages_per_client=5, gap=0.5, start_time=100.0)
    times = arrivals.generate(["a", "b"], rng)
    for client_times in times.values():
        assert client_times == sorted(client_times)
        assert client_times[0] >= 100.0


def test_uniform_gap_invalid_parameters():
    with pytest.raises(ValueError):
        UniformGapArrivals(messages_per_client=0, gap=1.0)
    with pytest.raises(ValueError):
        UniformGapArrivals(messages_per_client=1, gap=-1.0)
    with pytest.raises(ValueError):
        UniformGapArrivals(messages_per_client=1, gap=1.0, jitter_fraction=1.0)


def test_poisson_rate_controls_expected_count(rng):
    arrivals = PoissonArrivals(rate_per_client=50.0, horizon=10.0)
    times = arrivals.generate(["a"], rng)
    assert len(times["a"]) == pytest.approx(500, rel=0.2)
    assert all(0.0 < t <= 10.0 for t in times["a"])


def test_poisson_invalid_parameters():
    with pytest.raises(ValueError):
        PoissonArrivals(rate_per_client=0.0, horizon=1.0)
    with pytest.raises(ValueError):
        PoissonArrivals(rate_per_client=1.0, horizon=0.0)


def test_burst_every_client_reacts_after_the_event(rng):
    arrivals = BurstArrivals(event_time=5.0, reaction_median=0.001, reaction_sigma=0.3)
    times = arrivals.generate([f"c{k}" for k in range(20)], rng)
    assert len(times) == 20
    for client_times in times.values():
        assert len(client_times) == 1
        assert client_times[0] > 5.0


def test_burst_followups_extend_each_clients_burst(rng):
    arrivals = BurstArrivals(followups=3, followup_gap=0.001)
    times = arrivals.generate(["a"], rng)
    assert len(times["a"]) == 4
    assert times["a"] == sorted(times["a"])


def test_burst_invalid_parameters():
    with pytest.raises(ValueError):
        BurstArrivals(reaction_median=0.0)
    with pytest.raises(ValueError):
        BurstArrivals(followups=-1)
    with pytest.raises(ValueError):
        BurstArrivals(followup_gap=0.0)
