"""Tests for the learned workload (non-Gaussian clocks + probe streams)."""

import numpy as np
import pytest

from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.workloads.learned import build_learned_workload, synthesize_probe


def test_synthesize_probe_reproduces_offset_and_rtt_exactly():
    probe = synthesize_probe("c", offset=0.125, round_trip=0.004, when=100.0)
    assert probe.client_offset_estimate == pytest.approx(0.125, abs=1e-12)
    assert probe.round_trip_delay == pytest.approx(0.004, abs=1e-12)
    with pytest.raises(ValueError):
        synthesize_probe("c", offset=0.0, round_trip=-1.0)


def test_workload_shape_and_determinism():
    workload = build_learned_workload(num_clients=6, probes_per_client=24, seed=5)
    assert len(workload.probe_streams) == 6
    assert workload.probe_count == 6 * 24
    assert set(workload.probe_streams) == set(workload.truth)
    assert set(workload.static_gaussians) == set(workload.truth)
    for distribution in workload.truth.values():
        assert isinstance(distribution, MixtureDistribution)
    for guess in workload.static_gaussians.values():
        assert isinstance(guess, GaussianDistribution)
    again = build_learned_workload(num_clients=6, probes_per_client=24, seed=5)
    first = workload.probe_streams["client-0000"]
    second = again.probe_streams["client-0000"]
    assert [p.t1 for p in first] == [p.t1 for p in second]


def test_congested_probes_have_inflated_rtt_and_biased_offsets():
    workload = build_learned_workload(
        num_clients=4,
        probes_per_client=200,
        congested_fraction=0.3,
        base_rtt=1e-3,
        congestion_delay=0.05,
        seed=7,
    )
    for client_id, stream in workload.probe_streams.items():
        rtts = np.asarray([probe.round_trip_delay for probe in stream])
        congested = rtts > 2e-3
        assert 0.1 < congested.mean() < 0.5
        offsets = np.asarray([probe.client_offset_estimate for probe in stream])
        # congestion biases the offset reading upward, far beyond the clock std
        assert offsets[congested].mean() > offsets[~congested].mean() + 10.0


def test_invalid_congested_fraction_rejected():
    with pytest.raises(ValueError):
        build_learned_workload(congested_fraction=1.0)
