"""Tests for the command-line experiment harness."""

import os

import pytest

from repro.cli import EXPERIMENTS, build_parser, main, run_experiment


def test_parser_defaults():
    args = build_parser().parse_args(["thresholds"])
    assert args.experiment == "thresholds"
    assert args.num_clients == 60
    assert args.threshold == 0.75


def test_every_registered_experiment_produces_rows():
    args = build_parser().parse_args(["--num-clients", "10", "--seed", "2", "baselines"])
    for name in ("baselines", "thresholds", "scaling"):
        rows = run_experiment(name, args)
        assert rows
        assert isinstance(rows[0], dict)


def test_unknown_experiment_rejected():
    args = build_parser().parse_args(["baselines"])
    with pytest.raises(ValueError):
        run_experiment("nope", args)


def test_main_prints_table_and_writes_csv(tmp_path, capsys):
    exit_code = main(["--num-clients", "10", "--seed", "3", "--csv-dir", str(tmp_path), "baselines"])
    assert exit_code == 0
    captured = capsys.readouterr().out
    assert "ABL-BASE" in captured
    assert "tommy" in captured
    csv_path = tmp_path / "baselines.csv"
    assert csv_path.exists()
    content = csv_path.read_text()
    assert content.splitlines()[0].startswith("sequencer")


def test_experiment_registry_matches_titles():
    from repro.cli import TITLES

    assert set(EXPERIMENTS) == set(TITLES)
