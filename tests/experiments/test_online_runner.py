"""Tests for the end-to-end online experiment runner."""

import pytest

from repro.core.config import TommyConfig
from repro.experiments.online_runner import OnlineExperimentSettings, run_online_experiment


def test_online_experiment_sequences_every_message():
    settings = OnlineExperimentSettings(num_clients=5, messages_per_client=2, run_duration=2.0, seed=3)
    outcome = run_online_experiment(settings)
    assert outcome.comparison.batches.message_count == 10
    assert outcome.emitted_batches >= 1
    assert outcome.latency.count == 10
    assert outcome.latency.mean > 0


def test_online_experiment_row_is_table_ready():
    outcome = run_online_experiment(OnlineExperimentSettings(num_clients=4, run_duration=1.5, seed=5))
    row = outcome.as_row()
    assert {"mean_latency", "p95_latency", "emitted_batches", "ras"} <= set(row)


def test_higher_p_safe_increases_latency():
    low = run_online_experiment(
        OnlineExperimentSettings(num_clients=4, config=TommyConfig(p_safe=0.9), run_duration=3.0, seed=7)
    )
    high = run_online_experiment(
        OnlineExperimentSettings(num_clients=4, config=TommyConfig(p_safe=0.9999), run_duration=3.0, seed=7)
    )
    assert high.latency.mean >= low.latency.mean


def test_invalid_settings_rejected():
    with pytest.raises(ValueError):
        OnlineExperimentSettings(num_clients=0)
    with pytest.raises(ValueError):
        OnlineExperimentSettings(run_duration=0.0)
