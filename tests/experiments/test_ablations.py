"""Tests for the ablation sweeps (experiments ABL-*)."""

import pytest

from repro.experiments.ablations import (
    run_baseline_comparison,
    run_distribution_ablation,
    run_learning_ablation,
    run_scaling_sweep,
    run_threshold_sweep,
)


def test_threshold_sweep_reports_batches_monotone_in_threshold():
    rows = run_threshold_sweep(thresholds=(0.55, 0.75, 0.95), num_clients=25, seed=1)
    assert [row["threshold"] for row in rows] == [0.55, 0.75, 0.95]
    batch_counts = [row["batches"] for row in rows]
    assert batch_counts[0] >= batch_counts[1] >= batch_counts[2]


def test_distribution_ablation_covers_gaussian_and_non_gaussian():
    rows = run_distribution_ablation(num_clients=12)
    families = {row["family"] for row in rows}
    assert "gaussian/closed-form" in families
    assert any("fft" in family for family in families)
    closed = next(row for row in rows if row["family"] == "gaussian/closed-form")
    fft = next(row for row in rows if row["family"] == "gaussian/fft")
    # identical workload, same statistical answer regardless of the numerical path
    assert abs(closed["ras"] - fft["ras"]) <= 2


def test_learning_ablation_includes_seeded_upper_bound():
    rows = run_learning_ablation(probe_counts=(16, 128), num_clients=20)
    assert rows[0]["probes"] == 0
    assert [row["probes"] for row in rows[1:]] == [16, 128]
    # seeded distributions are the upper bound the paper describes (allowing noise)
    assert rows[0]["ras"] >= max(row["ras"] for row in rows[1:]) - 10


def test_scaling_sweep_reports_runtime_and_clients():
    rows = run_scaling_sweep(client_counts=(10, 20), seed=3)
    assert [row["clients"] for row in rows] == [10, 20]
    assert all(row["sequencing_seconds"] >= 0 for row in rows)


def test_baseline_comparison_includes_all_four_sequencers():
    rows = run_baseline_comparison(num_clients=20)
    names = [row["sequencer"] for row in rows]
    assert names == ["fifo", "wfo", "truetime", "tommy"]
    tommy = rows[-1]
    truetime = rows[-2]
    # Tommy must never do worse than the conservative TrueTime baseline here
    assert tommy["ras"] >= truetime["ras"]
