"""Tests for text/CSV reporting."""

import pytest

from repro.experiments.reporting import format_table, rows_to_csv


def test_format_table_aligns_columns():
    rows = [{"name": "tommy", "ras": 120}, {"name": "truetime", "ras": 0}]
    table = format_table(rows, title="Comparison")
    lines = table.splitlines()
    assert lines[0] == "Comparison"
    assert "name" in lines[1] and "ras" in lines[1]
    assert len(lines) == 5
    assert "tommy" in lines[3]


def test_format_table_empty_rows():
    assert "(no rows)" in format_table([])
    assert format_table([], title="Empty").startswith("Empty")


def test_format_table_rejects_mismatched_keys():
    with pytest.raises(ValueError):
        format_table([{"a": 1}, {"b": 2}])


def test_rows_to_csv_round_trip():
    rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
    csv_text = rows_to_csv(rows)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1,a"
    assert lines[2] == "2,b"


def test_rows_to_csv_empty():
    assert rows_to_csv([]) == ""


def test_rows_to_csv_rejects_mismatched_keys():
    with pytest.raises(ValueError):
        rows_to_csv([{"a": 1}, {"b": 2}])
