"""Tests for the cluster shard-count x client-count sweep."""

from repro.experiments.cluster_sweep import (
    ClusterRunOutcome,
    run_cluster_scenario,
    run_cluster_sweep,
)


def test_single_run_reports_complete_outcome():
    outcome = run_cluster_scenario(num_clients=16, num_shards=2, seed=2)
    assert isinstance(outcome, ClusterRunOutcome)
    assert outcome.num_shards == 2
    assert outcome.message_count == 32
    assert sum(outcome.per_shard_emitted) == 32
    assert outcome.comparison.result.message_count == 32
    assert outcome.failovers == 0
    assert outcome.per_shard_throughput > 0
    assert outcome.total_throughput == outcome.per_shard_throughput * 2


def test_sweep_rows_have_report_schema():
    rows = run_cluster_sweep(shard_counts=(1, 2), client_counts=(12,), seed=2)
    assert len(rows) == 2
    expected_keys = {
        "shards",
        "clients",
        "policy",
        "runtime",
        "workers",
        "merge_topology",
        "ras",
        "ras_normalized",
        "incorrect_pairs",
        "batches",
        "merged_cross_shard",
        "merge_latency_ms",
        "pruned_pairs",
        "streaming_ms",
        "streaming_parity",
        "restarts",
        "lost_shards",
        "shard_throughput",
        "total_throughput",
        "wall_seconds",
    }
    for row in rows:
        assert set(row) == expected_keys
        # the live streaming merge reproduces the offline re-merge exactly
        assert row["streaming_parity"] is True
        assert row["streaming_ms"] is not None
    assert [row["shards"] for row in rows] == [1, 2]
    # single shard needs no cross-shard merging, multi-shard uses region placement
    assert rows[0]["merged_cross_shard"] == 0
    assert rows[0]["policy"] == "hash"
    assert rows[1]["policy"] == "region"


def test_sweep_quality_holds_across_shard_counts():
    rows = run_cluster_sweep(shard_counts=(1, 4), client_counts=(24,), seed=6)
    by_shards = {row["shards"]: row for row in rows}
    # merged cross-shard order stays within a small margin of single-shard fairness
    assert by_shards[4]["ras_normalized"] >= by_shards[1]["ras_normalized"] - 0.05
    assert by_shards[4]["ras"] > 0
