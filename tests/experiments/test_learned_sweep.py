"""Tests for the static-Gaussian vs live-learned experiment sweep."""

from repro.experiments.learned_sweep import run_learned_sweep


def test_sweep_produces_all_modes_and_live_learning_beats_static():
    rows = run_learned_sweep(
        probe_budgets=(24,),
        num_clients=8,
        messages_per_client=2,
        seed=23,
    )
    by_mode = {row["mode"]: row for row in rows}
    assert set(by_mode) == {"static-gaussian", "live-learned", "oracle-seeded"}
    static = by_mode["static-gaussian"]
    live = by_mode["live-learned"]
    oracle = by_mode["oracle-seeded"]
    # the live pipeline actually refreshed the running sequencer ...
    assert live["refreshes"] > 0
    assert static["refreshes"] == 0
    # ... through the vectorized table kernel, never the scalar fallback
    assert live["table_evals"] > 0
    assert live["scalar_evals"] == 0
    # and recovered fairness the mis-fitted static guess cannot express
    assert live["ras_normalized"] > static["ras_normalized"]
    assert oracle["ras_normalized"] > static["ras_normalized"]


def test_sweep_rows_carry_probe_budget():
    rows = run_learned_sweep(probe_budgets=(16, 32), num_clients=6, seed=11)
    budgets = sorted({row["probes_per_client"] for row in rows})
    assert budgets == [16, 32]
    assert len(rows) == 6
