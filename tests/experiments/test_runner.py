"""Tests for the scenario comparison runner."""

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.runner import evaluate_result, run_comparison
from repro.sequencers.truetime import TrueTimeSequencer
from repro.sequencers.wfo import WaitsForOneSequencer
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


def small_scenario():
    return build_scenario(
        ScenarioConfig(
            num_clients=12,
            arrivals=UniformGapArrivals(messages_per_client=1, gap=5.0),
            distribution_factory=lambda i, rng: GaussianDistribution(0.0, 10.0),
            seed=4,
        )
    )


def test_run_comparison_scores_every_sequencer():
    scenario = small_scenario()
    sequencers = {
        "tommy": TommySequencer(scenario.client_distributions, TommyConfig()),
        "truetime": TrueTimeSequencer(scenario.client_distributions),
        "wfo": WaitsForOneSequencer(),
    }
    comparisons = run_comparison(scenario, sequencers)
    assert [c.sequencer_name for c in comparisons] == ["tommy", "truetime", "wfo"]
    for comparison in comparisons:
        assert comparison.ras.total_pairs == 12 * 11 // 2
        row = comparison.as_row()
        assert set(row) >= {"sequencer", "ras", "accuracy", "batches"}


def test_evaluate_result_consistency_between_metrics():
    scenario = small_scenario()
    sequencer = WaitsForOneSequencer()
    result = sequencer.sequence(list(scenario.messages))
    comparison = evaluate_result("wfo", result, list(scenario.messages))
    assert comparison.pairwise.comparable_pairs == comparison.ras.total_pairs
    assert comparison.batches.message_count == len(scenario.messages)
    # normalised RAS and accuracy - inversion rate describe the same quantity
    assert abs(
        comparison.ras.normalized_score
        - (comparison.pairwise.accuracy - comparison.pairwise.inversion_rate)
    ) < 1e-9
