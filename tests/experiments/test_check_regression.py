"""The CI bench-regression gate (benchmarks/check_regression.py)."""

import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
SCRIPT = REPO / "benchmarks" / "check_regression.py"


def run_gate(tmp_path, records, baselines=None):
    results = tmp_path / "bench-results.jsonl"
    results.write_text("\n".join(json.dumps(record) for record in records) + "\n")
    command = [sys.executable, str(SCRIPT), str(results)]
    if baselines is not None:
        path = tmp_path / "baselines.json"
        path.write_text(json.dumps(baselines))
        command += ["--baselines", str(path)]
    return subprocess.run(command, capture_output=True, text=True)


BASELINES = {
    "tolerance": 0.5,
    "benchmarks": {
        "demo": {
            "flags": ["parity"],
            "floors": {"speedup": 4.0},
            "equals": {"scalar_evals": 0},
        }
    },
}


def good_record(**overrides):
    row = {"parity": True, "speedup": 6.0, "scalar_evals": 0}
    row.update(overrides)
    return {"benchmark": "demo", "rows": [row], "wall_time": 1.0}


def test_passes_on_healthy_records(tmp_path):
    outcome = run_gate(tmp_path, [good_record()], BASELINES)
    assert outcome.returncode == 0, outcome.stderr
    assert "no bench regressions" in outcome.stdout


def test_tolerance_absorbs_timing_noise(tmp_path):
    # floor 4.0 with tolerance 0.5 means 2.0 still passes, 1.9 fails
    assert run_gate(tmp_path, [good_record(speedup=2.0)], BASELINES).returncode == 0
    outcome = run_gate(tmp_path, [good_record(speedup=1.9)], BASELINES)
    assert outcome.returncode == 1
    assert "below floor" in outcome.stderr


def test_parity_flag_regression_fails_without_tolerance(tmp_path):
    outcome = run_gate(tmp_path, [good_record(parity=False)], BASELINES)
    assert outcome.returncode == 1
    assert "parity regression" in outcome.stderr


def test_stringified_flags_are_understood(tmp_path):
    # record_result serialises with default=str, so flags may arrive as text
    assert run_gate(tmp_path, [good_record(parity="True")], BASELINES).returncode == 0
    assert run_gate(tmp_path, [good_record(parity="False")], BASELINES).returncode == 1


def test_exact_work_counter_mismatch_fails(tmp_path):
    outcome = run_gate(tmp_path, [good_record(scalar_evals=3)], BASELINES)
    assert outcome.returncode == 1
    assert "baseline requires 0" in outcome.stderr


def test_missing_baselined_benchmark_fails(tmp_path):
    other = {"benchmark": "other", "rows": [{"x": 1}], "wall_time": 1.0}
    outcome = run_gate(tmp_path, [other], BASELINES)
    assert outcome.returncode == 1
    assert "no recorded rows" in outcome.stderr


def test_unbaselined_benchmark_is_reported_but_passes(tmp_path):
    records = [good_record(), {"benchmark": "new-bench", "rows": [{"x": 1}], "wall_time": 1.0}]
    outcome = run_gate(tmp_path, records, BASELINES)
    assert outcome.returncode == 0
    assert "new-bench" in outcome.stdout


def test_committed_baselines_accept_a_real_smoke_run(tmp_path):
    # the committed floors must pass records shaped like the CI smoke runs
    records = [
        {
            "benchmark": "engine_parity",
            "rows": [{"parity": True, "speedup": 8.0, "engine_scalar_evals": 0}],
            "wall_time": 1.0,
        },
        {
            "benchmark": "empirical_kernel",
            "rows": [{"parity": True, "speedup": 6.0, "fast_scalar_evals": 0}],
            "wall_time": 1.0,
        },
        {
            "benchmark": "merge_kernel",
            "rows": [
                {
                    "parity": True,
                    "streaming_parity": True,
                    "midstream_parity": True,
                    "speedup": 20.0,
                    "pruned_fraction": 0.2,
                }
            ],
            "wall_time": 1.0,
        },
        {
            "benchmark": "tree_merge",
            "rows": [
                {
                    "parity": True,
                    "counter_parity": True,
                    "speedup": 3.6,
                    "pruned_fraction": 0.75,
                }
            ],
            "wall_time": 1.0,
        },
        {
            "benchmark": "runtime_procs",
            "rows": [
                {
                    "parity_serial": True,
                    "parity_wide": True,
                    "scaling_1_to_n": 0.66,
                    "procs_x1_msgs_per_s": 1500.0,
                }
            ],
            "wall_time": 1.0,
        },
        {
            "benchmark": "recovery",
            "rows": [
                {
                    "parity_clean": True,
                    "parity_recovered": True,
                    "worker_restarts": 1,
                    "lost_shards": 0,
                    "recovery_efficiency": 0.3,
                }
            ],
            "wall_time": 1.0,
        },
    ]
    outcome = run_gate(tmp_path, records)  # default committed baselines.json
    assert outcome.returncode == 0, outcome.stderr + outcome.stdout
