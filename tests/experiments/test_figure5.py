"""Tests for the Figure 5 reproduction harness (experiment FIG5)."""

import pytest

from repro.experiments.figure5 import Figure5Settings, figure5_rows, run_figure5, run_figure5_point


SMALL = Figure5Settings(
    num_clients=25,
    sigma_values=(1.0, 60.0),
    gap_values=(5.0, 40.0),
    seed=9,
)


def test_sweep_produces_one_point_per_setting():
    points = run_figure5(SMALL)
    assert len(points) == 4
    combos = {(point.clock_std, point.message_gap) for point in points}
    assert combos == {(1.0, 5.0), (60.0, 5.0), (1.0, 40.0), (60.0, 40.0)}


def test_low_clock_error_both_systems_comparable():
    point = run_figure5_point(0.5, 40.0, SMALL)
    max_pairs = point.message_count * (point.message_count - 1) // 2
    assert point.tommy_ras >= 0.9 * max_pairs
    assert point.truetime_ras >= 0.9 * max_pairs


def test_tommy_wins_when_gap_small_relative_to_clock_error():
    """The paper's headline claim: Tommy outperforms TrueTime when the
    inter-message gap shrinks and/or clock errors grow."""
    point = run_figure5_point(60.0, 5.0, SMALL)
    assert point.tommy_ras > point.truetime_ras
    assert point.tommy_batches >= point.truetime_batches


def test_truetime_never_negative_tommy_may_be():
    points = run_figure5(SMALL)
    for point in points:
        assert point.truetime_ras >= 0


def test_rows_are_table_ready():
    points = run_figure5(SMALL)
    rows = figure5_rows(points)
    assert len(rows) == len(points)
    assert set(rows[0]) >= {"clock_std", "gap", "tommy_ras", "truetime_ras"}


def test_invalid_settings_rejected():
    with pytest.raises(ValueError):
        Figure5Settings(num_clients=1)
    with pytest.raises(ValueError):
        Figure5Settings(sigma_heterogeneity=1.0)
