"""Tests for the FIFO sequencer."""

import pytest

from repro.sequencers.fifo import FifoSequencer
from tests.conftest import make_message


def test_ranks_follow_input_order_by_default():
    messages = [make_message("a", 3.0), make_message("b", 1.0), make_message("c", 2.0)]
    result = FifoSequencer().sequence(messages)
    ranks = result.rank_of()
    assert ranks[messages[0].key] == 0
    assert ranks[messages[1].key] == 1
    assert ranks[messages[2].key] == 2


def test_explicit_arrival_order_overrides_input_order():
    messages = [make_message("a", 3.0), make_message("b", 1.0)]
    result = FifoSequencer().sequence(messages, arrival_order=[messages[1], messages[0]])
    ranks = result.rank_of()
    assert ranks[messages[1].key] == 0
    assert ranks[messages[0].key] == 1


def test_arrival_order_must_match_message_set():
    messages = [make_message("a", 1.0), make_message("b", 2.0)]
    with pytest.raises(ValueError):
        FifoSequencer().sequence(messages, arrival_order=[messages[0]])


def test_batch_size_groups_consecutive_arrivals():
    messages = [make_message("a", float(k)) for k in range(5)]
    result = FifoSequencer(batch_size=2).sequence(messages)
    assert result.batch_sizes == (2, 2, 1)


def test_duplicate_messages_rejected():
    message = make_message("a", 1.0)
    with pytest.raises(ValueError):
        FifoSequencer().sequence([message, message])


def test_invalid_batch_size_rejected():
    with pytest.raises(ValueError):
        FifoSequencer(batch_size=0)


def test_empty_input_gives_empty_result():
    assert FifoSequencer().sequence([]).batch_count == 0
