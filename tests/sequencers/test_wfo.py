"""Tests for the WaitsForOne sequencer."""

import pytest

from repro.sequencers.wfo import WaitsForOneSequencer
from tests.conftest import make_message


def test_offline_wfo_sorts_by_reported_timestamp():
    messages = [make_message("a", 3.0), make_message("b", 1.0), make_message("c", 2.0)]
    result = WaitsForOneSequencer().sequence(messages)
    ordered = result.messages_in_rank_order()
    assert [m.timestamp for m in ordered] == [1.0, 2.0, 3.0]
    assert result.batch_sizes == (1, 1, 1)


def test_wfo_is_fair_when_clocks_are_perfect():
    # reported timestamps equal true times -> WFO recovers the true order
    messages = [make_message("a", 1.0), make_message("b", 1.5), make_message("a", 2.0)]
    result = WaitsForOneSequencer().sequence(messages)
    ranks = result.rank_of()
    ordered_true = sorted(messages, key=lambda m: m.true_time)
    assert [ranks[m.key] for m in ordered_true] == [0, 1, 2]


def test_wfo_misorders_when_clock_error_dominates():
    early_but_late_clock = make_message("a", timestamp=5.0, true_time=1.0)
    late_but_early_clock = make_message("b", timestamp=2.0, true_time=3.0)
    result = WaitsForOneSequencer().sequence([early_but_late_clock, late_but_early_clock])
    ranks = result.rank_of()
    assert ranks[late_but_early_clock.key] < ranks[early_but_late_clock.key]


def test_release_order_replays_online_algorithm():
    streams = {
        "a": [make_message("a", 1.0), make_message("a", 4.0)],
        "b": [make_message("b", 2.0), make_message("b", 3.0)],
    }
    released = WaitsForOneSequencer().release_order(streams)
    assert [m.timestamp for m in released] == [1.0, 2.0, 3.0, 4.0]


def test_release_order_requires_per_client_timestamp_order():
    streams = {"a": [make_message("a", 2.0), make_message("a", 1.0)]}
    with pytest.raises(ValueError):
        WaitsForOneSequencer().release_order(streams)


def test_release_order_handles_exhausted_clients():
    streams = {
        "a": [make_message("a", 1.0)],
        "b": [make_message("b", 2.0), make_message("b", 3.0), make_message("b", 4.0)],
    }
    released = WaitsForOneSequencer().release_order(streams)
    assert [m.timestamp for m in released] == [1.0, 2.0, 3.0, 4.0]


def test_empty_input_gives_empty_result():
    assert WaitsForOneSequencer().sequence([]).batch_count == 0
