"""Tests for the omniscient oracle sequencer."""

import pytest

from repro.network.message import TimestampedMessage
from repro.sequencers.oracle import OracleSequencer
from tests.conftest import make_message


def test_oracle_orders_by_true_time_ignoring_timestamps():
    messages = [
        make_message("a", timestamp=10.0, true_time=3.0),
        make_message("b", timestamp=1.0, true_time=5.0),
        make_message("c", timestamp=5.0, true_time=1.0),
    ]
    result = OracleSequencer().sequence(messages)
    ordered = result.messages_in_rank_order()
    assert [m.true_time for m in ordered] == [1.0, 3.0, 5.0]
    assert result.batch_sizes == (1, 1, 1)


def test_oracle_requires_ground_truth():
    message = TimestampedMessage(client_id="a", timestamp=1.0, true_time=None)
    with pytest.raises(ValueError):
        OracleSequencer().sequence([message])


def test_oracle_empty_input():
    assert OracleSequencer().sequence([]).batch_count == 0
