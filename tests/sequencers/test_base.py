"""Tests for the sequencer result type and helpers."""

import pytest

from repro.network.message import SequencedBatch, TimestampedMessage
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def test_result_requires_consecutive_ranks():
    message = TimestampedMessage(client_id="a", timestamp=1.0)
    with pytest.raises(ValueError):
        SequencingResult(batches=(SequencedBatch(rank=1, messages=(message,)),))


def test_rank_of_maps_every_message():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("a", 3.0)]
    result = SequencingResult(batches=batches_from_groups([[messages[0]], messages[1:]]))
    ranks = result.rank_of()
    assert ranks[messages[0].key] == 0
    assert ranks[messages[1].key] == 1
    assert ranks[messages[2].key] == 1


def test_counts_and_sizes():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = SequencingResult(batches=batches_from_groups([messages[:2], messages[2:]]))
    assert result.message_count == 3
    assert result.batch_count == 2
    assert result.batch_sizes == (2, 1)
    assert len(result.messages_in_rank_order()) == 3


def test_empty_result_is_valid():
    result = SequencingResult(batches=())
    assert result.message_count == 0
    assert result.batch_count == 0
    assert result.rank_of() == {}
