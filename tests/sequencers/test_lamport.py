"""Tests for Lamport clocks, vector clocks and happened-before."""

from repro.sequencers.lamport import (
    LamportClock,
    VectorClock,
    causal_order,
    concurrent,
    happened_before,
)


def test_local_events_on_one_process_are_ordered():
    clock = LamportClock("p1")
    first = clock.tick("a")
    second = clock.tick("b")
    assert happened_before(first, second)
    assert not happened_before(second, first)


def test_send_receive_creates_cross_process_ordering():
    p1, p2 = LamportClock("p1"), LamportClock("p2")
    sent = p1.send("m")
    received = p2.receive(sent)
    later = p2.tick()
    assert happened_before(sent, received)
    assert happened_before(sent, later)
    assert received.lamport_time > sent.lamport_time


def test_independent_events_are_concurrent():
    p1, p2 = LamportClock("p1"), LamportClock("p2")
    a = p1.tick()
    b = p2.tick()
    assert concurrent(a, b)
    assert not happened_before(a, b)
    assert not happened_before(b, a)


def test_concurrency_is_exactly_the_gap_tommy_targets():
    """Messages from different clients with no communication are concurrent."""
    clients = [LamportClock(f"client-{k}") for k in range(5)]
    events = [client.tick("submit-order") for client in clients]
    for i, a in enumerate(events):
        for j, b in enumerate(events):
            if i != j:
                assert concurrent(a, b)


def test_vector_clock_dominance():
    assert VectorClock.dominates({"a": 2, "b": 1}, {"a": 1, "b": 1})
    assert not VectorClock.dominates({"a": 1, "b": 1}, {"a": 2, "b": 1})
    assert not VectorClock.dominates({"a": 1}, {"a": 1})


def test_vector_clock_concurrency():
    assert VectorClock.concurrent({"a": 2, "b": 0}, {"a": 0, "b": 2})
    assert not VectorClock.concurrent({"a": 1}, {"a": 1})


def test_receive_merges_vector_entries():
    p1, p2 = LamportClock("p1"), LamportClock("p2")
    p1.tick()
    message = p1.send()
    received = p2.receive(message)
    vector = received.vector_clock()
    assert vector["p1"] == 2
    assert vector["p2"] == 1


def test_causal_order_linearisation_respects_happened_before():
    p1, p2 = LamportClock("p1"), LamportClock("p2")
    a = p1.tick()
    m = p1.send()
    r = p2.receive(m)
    b = p2.tick()
    linearised, pairs = causal_order([a, m, r, b])
    position = {event.event_id: index for index, event in enumerate(linearised)}
    for before_id, after_id in pairs:
        assert position[before_id] < position[after_id]
    assert (a.event_id, b.event_id) in pairs  # transitivity through the message


def test_happened_before_is_irreflexive_and_antisymmetric():
    clock = LamportClock("p")
    event = clock.tick()
    later = clock.tick()
    assert not happened_before(event, event)
    assert not (happened_before(event, later) and happened_before(later, event))
