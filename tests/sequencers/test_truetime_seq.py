"""Tests for the TrueTime baseline sequencer."""

import pytest

from repro.distributions.parametric import GaussianDistribution
from repro.sequencers.truetime import TrueTimeSequencer
from tests.conftest import make_message


def sequencer_for(sigmas, multiplier=3.0):
    return TrueTimeSequencer(
        {client: GaussianDistribution(0.0, sigma) for client, sigma in sigmas.items()},
        sigma_multiplier=multiplier,
    )


def test_disjoint_intervals_get_distinct_ranks():
    sequencer = sequencer_for({"a": 0.1, "b": 0.1})
    messages = [make_message("a", 0.0), make_message("b", 10.0)]
    result = sequencer.sequence(messages)
    assert result.batch_sizes == (1, 1)
    ranks = result.rank_of()
    assert ranks[messages[0].key] == 0
    assert ranks[messages[1].key] == 1


def test_overlapping_intervals_share_a_rank():
    sequencer = sequencer_for({"a": 5.0, "b": 5.0})
    messages = [make_message("a", 0.0), make_message("b", 1.0)]
    result = sequencer.sequence(messages)
    assert result.batch_count == 1
    assert result.batch_sizes == (3 - 1,)


def test_transitive_overlap_clusters_chain_into_one_batch():
    # a overlaps b, b overlaps c, but a does not overlap c: all share a batch
    sequencer = sequencer_for({"a": 1.0, "b": 1.0, "c": 1.0}, multiplier=1.0)
    messages = [make_message("a", 0.0), make_message("b", 1.5), make_message("c", 3.0)]
    result = sequencer.sequence(messages)
    assert result.batch_count == 1


def test_interval_uses_client_specific_sigma():
    sequencer = sequencer_for({"wide": 10.0, "narrow": 0.01})
    wide = sequencer.interval_for(make_message("wide", 0.0))
    narrow = sequencer.interval_for(make_message("narrow", 0.0))
    assert wide.width == pytest.approx(60.0)
    assert narrow.width == pytest.approx(0.06)


def test_interval_centers_on_mean_corrected_timestamp():
    sequencer = TrueTimeSequencer({"biased": GaussianDistribution(2.0, 1.0)})
    interval = sequencer.interval_for(make_message("biased", 10.0))
    assert interval.midpoint == pytest.approx(8.0)


def test_unknown_client_rejected():
    sequencer = sequencer_for({"a": 1.0})
    with pytest.raises(KeyError):
        sequencer.sequence([make_message("mystery", 1.0)])


def test_register_client_adds_distribution():
    sequencer = sequencer_for({"a": 1.0})
    sequencer.register_client("b", GaussianDistribution(0.0, 1.0))
    result = sequencer.sequence([make_message("a", 0.0), make_message("b", 100.0)])
    assert result.batch_count == 2


def test_invalid_multiplier_rejected():
    with pytest.raises(ValueError):
        sequencer_for({"a": 1.0}, multiplier=0.0)


def test_empty_input_gives_empty_result():
    assert sequencer_for({"a": 1.0}).sequence([]).batch_count == 0
