"""Tests for the Rank Agreement Score."""

import pytest

from repro.metrics.ras import rank_agreement_score
from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def result_from_groups(groups):
    return SequencingResult(batches=batches_from_groups(groups))


def test_perfect_order_scores_plus_one_per_pair():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([[m] for m in messages])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.correct_pairs == 3
    assert breakdown.incorrect_pairs == 0
    assert breakdown.indifferent_pairs == 0
    assert breakdown.score == 3
    assert breakdown.normalized_score == 1.0
    assert breakdown.decisiveness == 1.0


def test_reversed_order_scores_minus_one_per_pair():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([[messages[2]], [messages[1]], [messages[0]]])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.score == -3
    assert breakdown.normalized_score == -1.0


def test_single_batch_is_all_indifference():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([messages])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.score == 0
    assert breakdown.indifferent_pairs == 3
    assert breakdown.decisiveness == 0.0


def test_mixed_outcome_counts_each_pair_once():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    c = make_message("c", 3.0)
    # ranks: a=0, c=1, b=1  -> pair (a,b) correct, (a,c) correct, (b,c) indifferent
    result = result_from_groups([[a], [c, b]])
    breakdown = rank_agreement_score(result, [a, b, c])
    assert breakdown.correct_pairs == 2
    assert breakdown.indifferent_pairs == 1
    assert breakdown.incorrect_pairs == 0
    assert breakdown.total_pairs == 3


def test_equal_true_times_are_skipped():
    a = make_message("a", timestamp=1.0, true_time=5.0)
    b = make_message("b", timestamp=2.0, true_time=5.0)
    result = result_from_groups([[a], [b]])
    breakdown = rank_agreement_score(result, [a, b])
    assert breakdown.total_pairs == 0
    assert breakdown.normalized_score == 0.0


def test_missing_ground_truth_rejected():
    a = TimestampedMessage(client_id="a", timestamp=1.0, true_time=None)
    result = result_from_groups([[a]])
    with pytest.raises(ValueError):
        rank_agreement_score(result, [a])


def test_message_missing_from_result_rejected():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    result = result_from_groups([[a]])
    with pytest.raises(ValueError):
        rank_agreement_score(result, [a, b])


def test_score_matches_paper_sum_semantics():
    """Figure 5's y-axis is the sum over all pairs of +1/-1/0."""
    messages = [make_message(f"c{k}", float(k)) for k in range(5)]
    # correct order except the last two messages swapped
    order = [messages[0], messages[1], messages[2], messages[4], messages[3]]
    result = result_from_groups([[m] for m in order])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.correct_pairs == 9
    assert breakdown.incorrect_pairs == 1
    assert breakdown.score == 8


def _loop_reference(result, messages):
    """The original O(n^2) per-pair classification (reference oracle)."""
    ranks = result.rank_of()
    ordered = [(message.true_time, ranks[message.key]) for message in messages]
    correct = incorrect = indifferent = 0
    n = len(ordered)
    for i in range(n):
        true_i, rank_i = ordered[i]
        for j in range(i + 1, n):
            true_j, rank_j = ordered[j]
            if true_i == true_j:
                continue
            if rank_i == rank_j:
                indifferent += 1
            elif (true_i < true_j) == (rank_i < rank_j):
                correct += 1
            else:
                incorrect += 1
    return correct, incorrect, indifferent


def test_inversion_counting_matches_pair_loop_on_randomized_results():
    """Property test: the vectorized RAS equals the per-pair loop on random
    batchings with duplicated true times and every batch-size mix."""
    import numpy as np

    rng = np.random.default_rng(42)
    for trial in range(40):
        n = int(rng.integers(2, 40))
        # duplicated true times exercise the skipped-pair accounting
        true_times = rng.integers(0, max(2, n // 2), size=n).astype(float)
        messages = [
            make_message(f"c{k}", float(k), true_time=float(true_times[k]))
            for k in range(n)
        ]
        shuffled = list(messages)
        rng.shuffle(shuffled)
        groups = []
        index = 0
        while index < len(shuffled):
            size = int(rng.integers(1, 4))
            groups.append(shuffled[index : index + size])
            index += size
        result = result_from_groups(groups)
        breakdown = rank_agreement_score(result, messages)
        correct, incorrect, indifferent = _loop_reference(result, messages)
        assert breakdown.correct_pairs == correct
        assert breakdown.incorrect_pairs == incorrect
        assert breakdown.indifferent_pairs == indifferent
