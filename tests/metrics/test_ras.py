"""Tests for the Rank Agreement Score."""

import pytest

from repro.metrics.ras import rank_agreement_score
from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def result_from_groups(groups):
    return SequencingResult(batches=batches_from_groups(groups))


def test_perfect_order_scores_plus_one_per_pair():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([[m] for m in messages])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.correct_pairs == 3
    assert breakdown.incorrect_pairs == 0
    assert breakdown.indifferent_pairs == 0
    assert breakdown.score == 3
    assert breakdown.normalized_score == 1.0
    assert breakdown.decisiveness == 1.0


def test_reversed_order_scores_minus_one_per_pair():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([[messages[2]], [messages[1]], [messages[0]]])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.score == -3
    assert breakdown.normalized_score == -1.0


def test_single_batch_is_all_indifference():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = result_from_groups([messages])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.score == 0
    assert breakdown.indifferent_pairs == 3
    assert breakdown.decisiveness == 0.0


def test_mixed_outcome_counts_each_pair_once():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    c = make_message("c", 3.0)
    # ranks: a=0, c=1, b=1  -> pair (a,b) correct, (a,c) correct, (b,c) indifferent
    result = result_from_groups([[a], [c, b]])
    breakdown = rank_agreement_score(result, [a, b, c])
    assert breakdown.correct_pairs == 2
    assert breakdown.indifferent_pairs == 1
    assert breakdown.incorrect_pairs == 0
    assert breakdown.total_pairs == 3


def test_equal_true_times_are_skipped():
    a = make_message("a", timestamp=1.0, true_time=5.0)
    b = make_message("b", timestamp=2.0, true_time=5.0)
    result = result_from_groups([[a], [b]])
    breakdown = rank_agreement_score(result, [a, b])
    assert breakdown.total_pairs == 0
    assert breakdown.normalized_score == 0.0


def test_missing_ground_truth_rejected():
    a = TimestampedMessage(client_id="a", timestamp=1.0, true_time=None)
    result = result_from_groups([[a]])
    with pytest.raises(ValueError):
        rank_agreement_score(result, [a])


def test_message_missing_from_result_rejected():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    result = result_from_groups([[a]])
    with pytest.raises(ValueError):
        rank_agreement_score(result, [a, b])


def test_score_matches_paper_sum_semantics():
    """Figure 5's y-axis is the sum over all pairs of +1/-1/0."""
    messages = [make_message(f"c{k}", float(k)) for k in range(5)]
    # correct order except the last two messages swapped
    order = [messages[0], messages[1], messages[2], messages[4], messages[3]]
    result = result_from_groups([[m] for m in order])
    breakdown = rank_agreement_score(result, messages)
    assert breakdown.correct_pairs == 9
    assert breakdown.incorrect_pairs == 1
    assert breakdown.score == 8
