"""Tests for latency summaries."""

import pytest

from repro.metrics.latency import summarize_latencies


def test_summary_of_known_values():
    summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.p50 == pytest.approx(2.5)
    assert summary.maximum == 4.0
    assert summary.p99 <= 4.0


def test_empty_summary_is_all_zero():
    summary = summarize_latencies([])
    assert summary.count == 0
    assert summary.mean == 0.0
    assert summary.maximum == 0.0


def test_as_dict_round_trip():
    summary = summarize_latencies([1.0, 1.0])
    d = summary.as_dict()
    assert d["count"] == 2
    assert d["mean"] == pytest.approx(1.0)
    assert set(d) == {"count", "mean", "p50", "p95", "p99", "max"}
