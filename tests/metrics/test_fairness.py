"""Tests for per-client fairness accounting."""

import pytest

from repro.metrics.fairness import per_client_fairness
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def test_disadvantaged_client_is_identified():
    early = make_message("victim", timestamp=10.0, true_time=1.0)
    late = make_message("lucky", timestamp=2.0, true_time=2.0)
    # sequencer inverts the pair: lucky first
    result = SequencingResult(batches=batches_from_groups([[late], [early]]))
    fairness = per_client_fairness(result, [early, late])
    assert fairness["victim"].disadvantaged_pairs == 1
    assert fairness["lucky"].advantaged_pairs == 1
    assert fairness["victim"].disadvantage_rate == 1.0
    assert fairness["lucky"].advantage_rate == 1.0


def test_correct_ordering_credits_both_clients():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    result = SequencingResult(batches=batches_from_groups([[a], [b]]))
    fairness = per_client_fairness(result, [a, b])
    assert fairness["a"].correct_pairs == 1
    assert fairness["b"].correct_pairs == 1
    assert fairness["a"].disadvantage_rate == 0.0


def test_shared_batch_counts_as_indifference_for_both():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    result = SequencingResult(batches=batches_from_groups([[a, b]]))
    fairness = per_client_fairness(result, [a, b])
    assert fairness["a"].indifferent_pairs == 1
    assert fairness["b"].indifferent_pairs == 1
    assert fairness["a"].total_pairs == 1


def test_missing_ground_truth_rejected():
    a = make_message("a", 1.0)
    b = make_message("b", 2.0)
    broken = b.__class__(client_id="b", timestamp=2.0, true_time=None)
    result = SequencingResult(batches=batches_from_groups([[a, broken]]))
    with pytest.raises(ValueError):
        per_client_fairness(result, [a, broken])


def test_rates_default_to_zero_without_pairs():
    a = make_message("a", 1.0)
    result = SequencingResult(batches=batches_from_groups([[a]]))
    fairness = per_client_fairness(result, [a])
    assert fairness["a"].total_pairs == 0
    assert fairness["a"].disadvantage_rate == 0.0
    assert fairness["a"].advantage_rate == 0.0
