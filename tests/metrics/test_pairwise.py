"""Tests for pairwise accuracy statistics."""

import pytest

from repro.metrics.pairwise import pairwise_stats
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def test_rates_sum_to_one():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    result = SequencingResult(batches=batches_from_groups([[messages[0]], messages[1:]]))
    stats = pairwise_stats(result, messages)
    assert stats.accuracy + stats.inversion_rate + stats.indifference_rate == pytest.approx(1.0)
    assert stats.comparable_pairs == 3
    assert stats.accuracy == pytest.approx(2 / 3)
    assert stats.indifference_rate == pytest.approx(1 / 3)


def test_empty_message_set_gives_zero_stats():
    result = SequencingResult(batches=())
    stats = pairwise_stats(result, [])
    assert stats.comparable_pairs == 0
    assert stats.accuracy == 0.0
