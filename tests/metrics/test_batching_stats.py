"""Tests for batch-size statistics."""

import pytest

from repro.metrics.batching_stats import batch_statistics
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def test_statistics_for_mixed_batch_sizes():
    messages = [make_message(f"c{k}", float(k)) for k in range(6)]
    result = SequencingResult(
        batches=batches_from_groups([messages[0:1], messages[1:4], messages[4:6]])
    )
    stats = batch_statistics(result)
    assert stats.batch_count == 3
    assert stats.message_count == 6
    assert stats.mean_size == pytest.approx(2.0)
    assert stats.max_size == 3
    assert stats.singleton_fraction == pytest.approx(1 / 3)
    assert stats.batches_per_message == pytest.approx(0.5)


def test_statistics_for_total_order():
    messages = [make_message(f"c{k}", float(k)) for k in range(4)]
    result = SequencingResult(batches=batches_from_groups([[m] for m in messages]))
    stats = batch_statistics(result)
    assert stats.singleton_fraction == 1.0
    assert stats.batches_per_message == 1.0
    assert stats.size_p50 == 1.0


def test_statistics_for_empty_result():
    stats = batch_statistics(SequencingResult(batches=()))
    assert stats.batch_count == 0
    assert stats.message_count == 0
    assert stats.batches_per_message == 0.0
