"""Tests for the Kendall-tau distance metric."""

import pytest

from repro.metrics.kendall import kendall_tau_distance, kendall_tau_from_result
from repro.sequencers.base import SequencingResult, batches_from_groups
from tests.conftest import make_message


def test_identical_orders_have_zero_distance():
    assert kendall_tau_distance([1, 2, 3, 4], [10, 20, 30, 40]) == 0.0


def test_reversed_orders_have_distance_one():
    assert kendall_tau_distance([1, 2, 3], [3, 2, 1]) == 1.0


def test_ties_count_half():
    # two comparable pairs; ranks tie on one of them
    assert kendall_tau_distance([1, 2, 3], [0, 0, 1]) == pytest.approx((0.5 + 0 + 0) / 3)


def test_equal_true_values_are_skipped():
    assert kendall_tau_distance([1, 1, 2], [5, 6, 7]) == 0.0


def test_length_mismatch_rejected():
    with pytest.raises(ValueError):
        kendall_tau_distance([1, 2], [1])


def test_from_result_uses_batch_ranks():
    messages = [make_message("a", 1.0), make_message("b", 2.0), make_message("c", 3.0)]
    perfect = SequencingResult(batches=batches_from_groups([[m] for m in messages]))
    assert kendall_tau_from_result(perfect, messages) == 0.0
    one_batch = SequencingResult(batches=batches_from_groups([messages]))
    assert kendall_tau_from_result(one_batch, messages) == pytest.approx(0.5)
