"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def loop() -> EventLoop:
    """Fresh event loop starting at t=0."""
    return EventLoop()


@pytest.fixture
def two_client_distributions():
    """Two zero-mean Gaussian error distributions keyed by client id."""
    return {
        "alice": GaussianDistribution(0.0, 1.0),
        "bob": GaussianDistribution(0.0, 2.0),
    }


def make_message(client_id: str, timestamp: float, true_time: float = None, seq: int = 0) -> TimestampedMessage:
    """Helper to build a message with sensible defaults."""
    return TimestampedMessage(
        client_id=client_id,
        timestamp=timestamp,
        true_time=timestamp if true_time is None else true_time,
        sequence_number=seq,
    )


@pytest.fixture
def message_factory():
    """Expose :func:`make_message` as a fixture."""
    return make_message
