"""Tests for the sealed-bid second-price auction."""

import pytest

from repro.apps.auction import Bid, SealedBidAuction


def test_second_price_rule():
    auction = SealedBidAuction()
    outcome = auction.resolve([Bid("a", 10.0), Bid("b", 8.0), Bid("c", 5.0)])
    assert outcome.winner == "a"
    assert outcome.clearing_price == 8.0
    assert outcome.had_winner


def test_single_bid_pays_reserve():
    auction = SealedBidAuction(reserve_price=2.0)
    outcome = auction.resolve([Bid("solo", 10.0)])
    assert outcome.winner == "solo"
    assert outcome.clearing_price == 2.0


def test_reserve_price_filters_low_bids():
    auction = SealedBidAuction(reserve_price=6.0)
    outcome = auction.resolve([Bid("low", 5.0), Bid("lower", 3.0)])
    assert outcome.winner is None
    assert not outcome.had_winner


def test_capacity_rejects_late_bids_so_order_matters():
    auction = SealedBidAuction(capacity=2)
    early_order = auction.resolve([Bid("a", 5.0), Bid("b", 6.0), Bid("late-high", 100.0)])
    assert early_order.winner == "b"
    assert len(early_order.rejected_late) == 1
    reordered = auction.resolve([Bid("late-high", 100.0), Bid("a", 5.0), Bid("b", 6.0)])
    assert reordered.winner == "late-high"


def test_deterministic_tie_break_by_client_id():
    auction = SealedBidAuction()
    outcome = auction.resolve([Bid("zed", 10.0), Bid("alice", 10.0)])
    assert outcome.winner == "alice"
    assert outcome.clearing_price == 10.0


def test_no_bids_yields_no_winner():
    outcome = SealedBidAuction().resolve([])
    assert outcome.winner is None
    assert outcome.clearing_price == 0.0


def test_invalid_configuration_and_bids_rejected():
    with pytest.raises(ValueError):
        SealedBidAuction(capacity=0)
    with pytest.raises(ValueError):
        SealedBidAuction(reserve_price=-1.0)
    with pytest.raises(ValueError):
        Bid("a", -5.0)
