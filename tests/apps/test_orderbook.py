"""Tests for the limit order book matching engine."""

import pytest

from repro.apps.orderbook import LimitOrderBook, Order, OrderSide


def buy(client, price, qty):
    return Order(client_id=client, side=OrderSide.BUY, price=price, quantity=qty)


def sell(client, price, qty):
    return Order(client_id=client, side=OrderSide.SELL, price=price, quantity=qty)


def test_crossing_orders_trade_at_resting_price():
    book = LimitOrderBook()
    book.submit(sell("maker", 100.0, 10))
    trades = book.submit(buy("taker", 105.0, 10))
    assert len(trades) == 1
    assert trades[0].price == 100.0
    assert trades[0].quantity == 10
    assert trades[0].buy_client == "taker"
    assert trades[0].sell_client == "maker"
    assert book.depth() == {"bids": 0, "asks": 0}


def test_non_crossing_orders_rest_in_the_book():
    book = LimitOrderBook()
    book.submit(buy("a", 99.0, 5))
    book.submit(sell("b", 101.0, 5))
    assert book.trades == []
    assert book.best_bid() == 99.0
    assert book.best_ask() == 101.0


def test_partial_fill_leaves_remainder_resting():
    book = LimitOrderBook()
    book.submit(sell("maker", 100.0, 10))
    book.submit(buy("taker", 100.0, 4))
    assert book.depth()["asks"] == 6
    trades = book.submit(buy("taker2", 100.0, 6))
    assert trades[0].quantity == 6
    assert book.depth()["asks"] == 0


def test_price_priority_better_price_fills_first():
    book = LimitOrderBook()
    book.submit(sell("expensive", 101.0, 5))
    book.submit(sell("cheap", 100.0, 5))
    trades = book.submit(buy("taker", 101.0, 5))
    assert trades[0].sell_client == "cheap"


def test_time_priority_at_same_price():
    book = LimitOrderBook()
    book.submit(sell("first", 100.0, 5))
    book.submit(sell("second", 100.0, 5))
    trades = book.submit(buy("taker", 100.0, 5))
    assert trades[0].sell_client == "first"


def test_sequencing_order_decides_who_trades():
    """The same order set produces different winners under different sequencers."""
    orders = [sell("maker", 100.0, 5), buy("fast", 100.0, 5), buy("slow", 100.0, 5)]

    book_fair = LimitOrderBook()
    book_fair.submit_all(orders)
    assert book_fair.trades[0].buy_client == "fast"

    book_unfair = LimitOrderBook()
    book_unfair.submit_all([orders[0], orders[2], orders[1]])
    assert book_unfair.trades[0].buy_client == "slow"


def test_aggressive_order_sweeps_multiple_levels():
    book = LimitOrderBook()
    book.submit(sell("a", 100.0, 3))
    book.submit(sell("b", 101.0, 3))
    trades = book.submit(buy("taker", 102.0, 6))
    assert len(trades) == 2
    assert sum(trade.quantity for trade in trades) == 6
    assert trades[0].price == 100.0
    assert trades[1].price == 101.0


def test_fills_by_client_tally():
    book = LimitOrderBook()
    book.submit(sell("maker", 100.0, 10))
    book.submit(buy("taker", 100.0, 10))
    fills = book.fills_by_client()
    assert fills["maker"] == 10
    assert fills["taker"] == 10


def test_invalid_orders_rejected():
    with pytest.raises(ValueError):
        Order(client_id="a", side=OrderSide.BUY, price=0.0, quantity=1)
    with pytest.raises(ValueError):
        Order(client_id="a", side=OrderSide.BUY, price=1.0, quantity=0)


def test_processed_order_count():
    book = LimitOrderBook()
    book.submit_all([buy("a", 99.0, 1), sell("b", 100.0, 1)])
    assert book.processed_orders == 2
