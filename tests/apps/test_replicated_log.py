"""Tests for the replicated log consumer."""

import pytest

from repro.apps.replicated_log import ReplicatedLog
from repro.network.message import SequencedBatch
from tests.conftest import make_message


def batch(rank, clients):
    return SequencedBatch(rank=rank, messages=tuple(make_message(c, float(rank)) for c in clients))


def test_apply_in_rank_order():
    log = ReplicatedLog()
    log.apply(batch(0, ["a"]))
    log.apply(batch(1, ["b", "c"]))
    assert log.next_rank == 2
    assert log.applied_message_count == 3
    assert [entry.rank for entry in log.entries] == [0, 1]


def test_rank_gap_rejected():
    log = ReplicatedLog()
    log.apply(batch(0, ["a"]))
    with pytest.raises(ValueError):
        log.apply(batch(2, ["b"]))


def test_out_of_order_rejected():
    log = ReplicatedLog()
    with pytest.raises(ValueError):
        log.apply(batch(1, ["a"]))


def test_duplicate_message_rejected():
    log = ReplicatedLog()
    first = batch(0, ["a"])
    log.apply(first)
    duplicate = SequencedBatch(rank=1, messages=first.messages)
    with pytest.raises(ValueError):
        log.apply(duplicate)


def test_contains_reflects_applied_messages():
    log = ReplicatedLog()
    applied = batch(0, ["a"])
    log.apply(applied)
    assert log.contains(applied.messages[0])
    assert not log.contains(make_message("z", 9.0))


def test_apply_all_convenience():
    log = ReplicatedLog()
    entries = log.apply_all([batch(0, ["a"]), batch(1, ["b"])])
    assert len(entries) == 2
    assert log.next_rank == 2
