#!/usr/bin/env python
"""Online sequencing on a simulated network (paper §3.5 / Appendix C).

Clients with heterogeneous clock quality send bursts of messages plus
periodic heartbeats over ordered, jittery channels.  The online Tommy
sequencer forms tentative batches as messages arrive, waits for each batch's
safe emission time T_b (and for every client to show progress past the batch
horizon), and emits ranked batches into a replicated log.  The example sweeps
p_safe to show the latency/confidence trade-off.

Run with:  python examples/online_sequencing.py
"""

from repro.apps.replicated_log import ReplicatedLog
from repro.clocks.local import LocalClock
from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.online_runner import OnlineExperimentSettings, run_online_experiment
from repro.experiments.reporting import format_table
from repro.metrics.ras import rank_agreement_score
from repro.network.link import UniformJitterDelay
from repro.network.transport import Transport
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource


def appendix_c_walkthrough() -> None:
    """Replay the Appendix C example on the discrete-event simulator."""
    print("=" * 70)
    print("Appendix C walkthrough: a noisy client forces a merged batch")
    print("=" * 70)

    loop = EventLoop(start_time=100.0)
    source = RandomSource(42)
    # Distributions the sequencer is given (what the clients learned about themselves).
    believed = {
        "c1": GaussianDistribution(0.0, 0.2),  # reasonably precise clock
        "c2": GaussianDistribution(0.4, 1.0),  # noisy, biased clock
    }
    # The offsets the clocks actually realise in this particular round: exactly the
    # distribution means, which reproduces the paper's reported timestamps
    # (t_1a = 100.0, t_2 = 100.6, t_1b = 100.3 for true times 100.0 / 100.2 / 100.3).
    realised = {
        "c1": GaussianDistribution(0.0, 1e-9),
        "c2": GaussianDistribution(0.4, 1e-9),
    }
    transport = Transport(loop, rng_factory=source.stream)
    clients = {}
    for client_id, actual in realised.items():
        clock = LocalClock(loop, actual, source.stream(f"clock:{client_id}"), resample_every_read=False)
        clients[client_id] = transport.add_client(
            client_id, clock, delay_model=UniformJitterDelay(0.005, 0.005), heartbeat_interval=0.5
        )
    sequencer = OnlineTommySequencer(loop, believed, TommyConfig(p_safe=0.999))
    transport.sequencer.on_arrival(sequencer.receive)

    loop.schedule_at(100.0, clients["c1"].send, "1a")
    loop.schedule_at(100.2, clients["c2"].send, "2")
    loop.schedule_at(100.3, clients["c1"].send, "1b")
    for client in clients.values():
        client.start_heartbeats()

    loop.run(until=110.0)
    log = ReplicatedLog()
    for emitted in sequencer.emitted_batches:
        log.apply(emitted.batch, applied_at=emitted.emitted_at)

    print(f"\nemitted {len(sequencer.emitted_batches)} batch(es):")
    for emitted in sequencer.emitted_batches:
        payloads = [message.payload for message in emitted.batch.messages]
        print(
            f"  rank {emitted.rank}: payloads={payloads}, "
            f"T_b={emitted.safe_emission_time:.3f}, emitted_at={emitted.emitted_at:.3f}"
        )
    sent = clients["c1"].sent_messages + clients["c2"].sent_messages
    ras = rank_agreement_score(sequencer.result(), sent)
    print(f"RAS: {ras.score} (correct {ras.correct_pairs}, wrong {ras.incorrect_pairs}, "
          f"indifferent {ras.indifferent_pairs})")


def psafe_sweep() -> None:
    """Latency / fairness-confidence trade-off of p_safe (§3.5)."""
    print()
    print("=" * 70)
    print("p_safe sweep: emission latency vs ordering quality")
    print("=" * 70)
    rows = []
    for p_safe in (0.9, 0.99, 0.999, 0.9999):
        outcome = run_online_experiment(
            OnlineExperimentSettings(
                num_clients=8,
                messages_per_client=3,
                clock_std=0.002,
                config=TommyConfig(p_safe=p_safe),
                seed=21,
            )
        )
        rows.append(
            {
                "p_safe": p_safe,
                "mean_latency_ms": round(outcome.latency.mean * 1e3, 3),
                "p95_latency_ms": round(outcome.latency.p95 * 1e3, 3),
                "ras": outcome.comparison.ras.score,
                "batches": outcome.comparison.batches.batch_count,
            }
        )
    print(format_table(rows))


if __name__ == "__main__":
    appendix_c_walkthrough()
    psafe_sweep()
