#!/usr/bin/env python
"""Learning clock-offset distributions from synchronization probes (paper §5).

Each client runs an NTP-style probe exchange against the sequencer, learns
its clock-error distribution from the probe offsets, and ships the estimate
to the sequencer.  The example compares fair-ordering quality when Tommy is
given (a) the ground-truth seeded distributions — the upper bound reported in
the paper's evaluation — and (b) the probe-learned estimates, for increasing
probe budgets.  It also shows Byzantine timestamp auditing catching a client
that back-dates its messages.

Run with:  python examples/learned_distributions.py
"""

import numpy as np

from repro.core.byzantine import ByzantineAuditor
from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.ablations import run_learning_ablation
from repro.experiments.reporting import format_table
from repro.network.message import TimestampedMessage


def learning_sweep() -> None:
    print("=" * 70)
    print("Seeded (ground truth) vs probe-learned offset distributions")
    print("=" * 70)
    rows = run_learning_ablation(probe_counts=(8, 32, 128, 512), num_clients=40)
    compact = [
        {
            "distributions": row["sequencer"],
            "probes_per_client": row["probes"],
            "ras": row["ras"],
            "accuracy": row["accuracy"],
            "batches": row["batches"],
        }
        for row in rows
    ]
    print(format_table(compact))
    print("With enough probes the learned estimates converge to the seeded upper bound.\n")


def byzantine_demo() -> None:
    print("=" * 70)
    print("Byzantine client: back-dated timestamps get clamped, then excluded")
    print("=" * 70)
    distributions = {
        "honest": GaussianDistribution(0.0, 0.001),
        "cheater": GaussianDistribution(0.0, 0.001),
    }
    auditor = ByzantineAuditor(
        distributions, min_network_delay=0.0005, max_network_delay=0.01, exclusion_threshold=3
    )
    sequencer = TommySequencer(distributions, TommyConfig(threshold=0.6))

    rng = np.random.default_rng(0)
    sanitized = []
    for round_index in range(6):
        arrival = 1.0 + round_index * 0.1
        honest = TimestampedMessage(
            client_id="honest",
            timestamp=arrival - 0.002 + float(rng.normal(0, 0.001)),
            true_time=arrival - 0.002,
        )
        # the cheater back-dates by a full second to jump the queue
        cheater = TimestampedMessage(
            client_id="cheater", timestamp=arrival - 1.0, true_time=arrival - 0.002
        )
        for message in (honest, cheater):
            cleaned = auditor.sanitize(message, arrival_time=arrival)
            status = "dropped" if cleaned is None else (
                "clamped" if cleaned.timestamp != message.timestamp else "ok"
            )
            print(f"  round {round_index}: {message.client_id:8s} -> {status}")
            if cleaned is not None:
                sanitized.append(cleaned)

    result = sequencer.sequence(sanitized)
    print(f"\nexcluded clients: {auditor.excluded_clients()}")
    print(f"suspicion score (cheater): {auditor.suspicion_score('cheater'):.2f}")
    print(f"sequenced {result.message_count} sanitized messages into {result.batch_count} batches")


if __name__ == "__main__":
    learning_sweep()
    byzantine_demo()
