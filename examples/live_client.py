#!/usr/bin/env python
"""Drive ``repro serve`` end-to-end over loopback sockets.

Spawns the live ingestion edge as a real subprocess (``python -m repro.cli
serve``), builds the *same* frozen workload locally from the same seed,
streams its messages through the framed socket protocol with the in-repo
:class:`~repro.edge.client.EdgeClient`, and then checks the server's printed
merge fingerprint against a local :class:`~repro.runtime.sim.SimBackend` run
— the same bitwise-parity contract the test suite enforces.

Run with:  PYTHONPATH=src python examples/live_client.py
"""

from __future__ import annotations

import asyncio
import hashlib
import re
import subprocess
import sys

from repro.core.config import TommyConfig
from repro.edge.client import replay_workload
from repro.runtime.base import ClusterWorkload
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario

NUM_CLIENTS = 12
SHARDS = 3
SEED = 13


def build_workload() -> ClusterWorkload:
    """The frozen workload both sides derive from the shared seed."""
    scenario = build_cluster_scenario(num_clients=NUM_CLIENTS, seed=SEED)
    return ClusterWorkload.from_scenario(scenario, num_shards=SHARDS, config=TommyConfig(seed=SEED))


def start_server() -> tuple[subprocess.Popen, int]:
    """Launch ``repro serve`` on a free port; return the process and port."""
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--port",
            "0",
            "--num-clients",
            str(NUM_CLIENTS),
            "--shards",
            str(SHARDS),
            "--seed",
            str(SEED),
            "--max-inflight",
            "16",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = process.stdout.readline()
    match = re.search(r"listening on .*:(\d+)", line)
    if not match:
        process.terminate()
        raise RuntimeError(f"server did not report its port: {line!r}")
    return process, int(match.group(1))


def main() -> int:
    workload = build_workload()
    expected = hashlib.sha256(
        repr(SimBackend().run(workload).fingerprint()).encode()
    ).hexdigest()[:16]

    server, port = start_server()
    print(f"serve is listening on port {port}; streaming {len(workload.messages)} messages")
    admitted = asyncio.run(
        replay_workload("127.0.0.1", port, workload, connections=3)
    )
    print(f"admitted {admitted}/{len(workload.messages)} messages over 3 connections")

    summary = server.stdout.read()
    server.wait(timeout=30)
    print(summary)
    if expected not in summary:
        print(f"FAIL: server fingerprint differs from local SimBackend ({expected})")
        return 1
    print(f"OK: socket-fed merge fingerprint matches SimBackend bitwise ({expected})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
