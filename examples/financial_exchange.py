#!/usr/bin/env python
"""Cloud financial exchange: who wins the trade under each sequencer?

The paper's motivating auction-app: a market-volatility event is broadcast to
all participants, every client fires a buy order within a few hundred
microseconds, and only one of them gets the resting liquidity.  On-prem
exchanges guarantee fairness with equal-length wires; in the cloud the
sequencer has to provide it.

This example generates many independent burst rounds, runs four sequencers
(FIFO arrival order, WaitsForOne, TrueTime, Tommy) over each round, feeds the
resulting order into a limit order book, and reports how often the client
that truly reacted first actually won the trade.

Run with:  python examples/financial_exchange.py
"""

import numpy as np

from repro.apps.orderbook import LimitOrderBook, Order, OrderSide
from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.core.total_order import FairTotalOrder
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.reporting import format_table
from repro.sequencers.fifo import FifoSequencer
from repro.sequencers.truetime import TrueTimeSequencer
from repro.sequencers.wfo import WaitsForOneSequencer
from repro.workloads.arrivals import BurstArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario

NUM_CLIENTS = 8
NUM_ROUNDS = 60
CLOCK_STD = 100e-6          # 100 microseconds of clock error
NETWORK_JITTER = 2000e-6    # up to 2 ms of one-way jitter (multi-region cloud path)
REACTION_MEDIAN = 300e-6


def run_round(seed: int) -> dict:
    """One volatility-event round; returns the winning client per sequencer."""
    scenario = build_scenario(
        ScenarioConfig(
            num_clients=NUM_CLIENTS,
            arrivals=BurstArrivals(event_time=0.0, reaction_median=REACTION_MEDIAN, reaction_sigma=0.5),
            distribution_factory=lambda i, rng: GaussianDistribution(0.0, CLOCK_STD),
            seed=seed,
        )
    )
    messages = list(scenario.messages)
    truly_first = min(messages, key=lambda m: m.true_time).client_id
    rng = np.random.default_rng(seed)

    # FIFO sees arrival order: true generation time + jittery network delay
    arrival_order = sorted(messages, key=lambda m: m.true_time + rng.uniform(0.0, NETWORK_JITTER))

    orderings = {
        "fifo": FifoSequencer().sequence(messages, arrival_order=arrival_order),
        "wfo": WaitsForOneSequencer().sequence(messages),
        "truetime": TrueTimeSequencer(scenario.client_distributions).sequence(messages),
        "tommy": TommySequencer(scenario.client_distributions, TommyConfig(threshold=0.6)).sequence(messages),
    }

    winners = {}
    for name, result in orderings.items():
        total_order = FairTotalOrder(np.random.default_rng(seed * 13 + 7))
        ordered = total_order.totalize(result)
        book = LimitOrderBook()
        book.submit(Order(client_id="resting-seller", side=OrderSide.SELL, price=100.0, quantity=1))
        for message in ordered:
            book.submit(Order(client_id=message.client_id, side=OrderSide.BUY, price=100.0, quantity=1))
        winners[name] = book.trades[0].buy_client if book.trades else None
    winners["oracle"] = truly_first
    return winners


def main() -> None:
    fair_wins = {name: 0 for name in ("fifo", "wfo", "truetime", "tommy")}
    for round_index in range(NUM_ROUNDS):
        winners = run_round(seed=1000 + round_index)
        for name in fair_wins:
            if winners[name] == winners["oracle"]:
                fair_wins[name] += 1

    rows = [
        {
            "sequencer": name,
            "fair_trade_rate": round(wins / NUM_ROUNDS, 3),
            "random_chance": round(1.0 / NUM_CLIENTS, 3),
        }
        for name, wins in fair_wins.items()
    ]
    print(format_table(rows, title=(
        f"How often the truly-first client wins the trade "
        f"({NUM_ROUNDS} volatility events, {NUM_CLIENTS} clients, "
        f"clock std {CLOCK_STD * 1e6:.0f}us, network jitter {NETWORK_JITTER * 1e6:.0f}us)"
    )))
    print("A fair sequencer pushes the rate toward 1.0; an indifferent one toward random chance.")


if __name__ == "__main__":
    main()
