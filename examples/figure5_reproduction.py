#!/usr/bin/env python
"""Regenerate the data behind the paper's Figure 5.

Sweeps the per-client clock standard deviation (x-axis) and the
inter-message gap (marker size in the paper) and reports the Rank Agreement
Score of Tommy and of the emulated Spanner-TrueTime baseline at each point.

Expected shape (matching the paper):
  * comparable scores when the clock error is small relative to the gap,
  * Tommy ahead of TrueTime once the gap shrinks and/or clock error grows
    (TrueTime's +-3 sigma intervals overlap and it stops ordering anything),
  * occasionally negative Tommy scores under extreme uncertainty while
    TrueTime never drops below zero.

Run with:            python examples/figure5_reproduction.py
Paper-scale run:     python examples/figure5_reproduction.py --paper-scale
"""

import argparse

from repro.experiments.figure5 import Figure5Settings, figure5_rows, run_figure5
from repro.experiments.reporting import format_table, rows_to_csv


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="use 500 clients as in the paper (slower) instead of the quick default",
    )
    parser.add_argument("--csv", metavar="PATH", help="also write the rows to a CSV file")
    args = parser.parse_args()

    settings = Figure5Settings(num_clients=500) if args.paper_scale else Figure5Settings()
    points = run_figure5(settings)
    rows = figure5_rows(points)
    print(
        format_table(
            rows,
            title=(
                f"Figure 5 reproduction: RAS vs clock std-dev "
                f"({settings.num_clients} clients, threshold {settings.threshold})"
            ),
        )
    )
    wins = sum(1 for point in points if point.tommy_ras >= point.truetime_ras)
    print(f"Tommy >= TrueTime at {wins}/{len(points)} sweep points.")
    if args.csv:
        with open(args.csv, "w", encoding="utf-8") as handle:
            handle.write(rows_to_csv(rows))
        print(f"rows written to {args.csv}")


if __name__ == "__main__":
    main()
