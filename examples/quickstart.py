#!/usr/bin/env python
"""Quickstart: probabilistic fair ordering of a handful of messages.

Three clients with imperfectly synchronized clocks submit timestamped
messages.  Tommy computes the likely-happened-before probabilities, orders
the messages, and groups the ones it cannot confidently separate into a
shared batch.  The script also replays the paper's Appendix B worked example
from its probability matrix.

Run with:  python examples/quickstart.py
"""

from repro import TommyConfig, TommySequencer, quick_sequence
from repro.core.relation import LikelyHappenedBefore
from repro.distributions import GaussianDistribution
from repro.network.message import TimestampedMessage


def simple_example() -> None:
    """Sequence five messages from three clients with different clock quality."""
    print("=" * 70)
    print("Quickstart: three clients, five messages")
    print("=" * 70)

    # Clock-error distribution per client: distribution of (reported - true) time.
    client_distributions = {
        "hft-shop": GaussianDistribution(mean=0.0, std=0.5),      # well synchronized
        "retail": GaussianDistribution(mean=0.0, std=2.0),        # mediocre clock
        "cross-region": GaussianDistribution(mean=1.0, std=4.0),  # biased + noisy
    }

    messages = [
        TimestampedMessage(client_id="hft-shop", timestamp=100.0, true_time=100.0),
        TimestampedMessage(client_id="retail", timestamp=101.5, true_time=101.0),
        TimestampedMessage(client_id="cross-region", timestamp=104.0, true_time=102.5),
        TimestampedMessage(client_id="hft-shop", timestamp=110.0, true_time=110.0),
        TimestampedMessage(client_id="retail", timestamp=111.0, true_time=111.2),
    ]

    result = quick_sequence(messages, client_distributions, threshold=0.75)

    print(f"\n{result.batch_count} batches for {result.message_count} messages:")
    for batch in result.batches:
        members = ", ".join(
            f"{message.client_id}@{message.timestamp:g}" for message in batch.messages
        )
        print(f"  rank {batch.rank}: [{members}]")
    print("\nboundary probabilities:", [round(p, 3) for p in result.metadata["boundary_probabilities"]])
    print("relation was transitive:", result.metadata["transitive"])


def appendix_b_example() -> None:
    """Replay the paper's Appendix B example from its probability matrix."""
    print()
    print("=" * 70)
    print("Appendix B worked example (threshold 0.75)")
    print("=" * 70)

    messages = [
        TimestampedMessage(client_id=label, timestamp=float(index), true_time=float(index))
        for index, label in enumerate("ABCD")
    ]
    matrix = [
        [0.00, 0.85, 0.65, 0.92],
        [0.15, 0.00, 0.72, 0.68],
        [0.35, 0.28, 0.00, 0.80],
        [0.08, 0.32, 0.20, 0.00],
    ]
    relation = LikelyHappenedBefore.from_matrix(messages, matrix)
    sequencer = TommySequencer(config=TommyConfig(threshold=0.75))
    result = sequencer.sequence_relation(relation)

    print("\nexpected batches: {A} < {B, C} < {D}")
    print("computed batches:")
    for batch in result.batches:
        labels = ", ".join(message.client_id for message in batch.messages)
        print(f"  rank {batch.rank}: {{{labels}}}")


if __name__ == "__main__":
    simple_example()
    appendix_b_example()
