"""ABL-BASE — burst-workload comparison against FIFO, WFO and TrueTime.

The Figures 2-4 context: a volatility-event burst is sequenced by the
arrival-order FIFO sequencer (fair only with equal-length wires), the
WaitsForOne sequencer (fair only with negligible clock error), the TrueTime
emulation and Tommy.  Prints one row per sequencer.
"""

from _bench_utils import emit

from repro.experiments.ablations import run_baseline_comparison


def run_once():
    return run_baseline_comparison(num_clients=40, clock_std=0.0001, network_jitter=0.0015, seed=17)


def test_baseline_comparison(benchmark):
    rows = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit("Baseline comparison on a volatility burst (40 clients)", rows)
    by_name = {row["sequencer"]: row for row in rows}
    assert set(by_name) == {"fifo", "wfo", "truetime", "tommy"}
    # Tommy never falls behind the conservative TrueTime baseline
    assert by_name["tommy"]["ras"] >= by_name["truetime"]["ras"]
    # the TrueTime baseline never goes negative (it refuses to order instead)
    assert by_name["truetime"]["ras"] >= 0
