"""ABL-SCALE — sequencing cost as the client count grows.

The offline pipeline evaluates O(n^2) pairwise probabilities plus a
tournament over n messages; this benchmark measures the end-to-end
sequencing time at several client counts and prints the fairness row for
each, confirming quality does not degrade with scale.
"""

from _bench_utils import BENCH_SCALING_CLIENT_COUNTS, BENCH_SEED, emit

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.ablations import run_scaling_sweep
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


def _scenario(num_clients):
    return build_scenario(
        ScenarioConfig(
            num_clients=num_clients,
            arrivals=UniformGapArrivals(messages_per_client=1, gap=10.0, jitter_fraction=0.2),
            distribution_factory=lambda i, rng: GaussianDistribution(0.0, 30.0),
            seed=BENCH_SEED,
        )
    )


def test_sequencing_50_clients(benchmark):
    scenario = _scenario(50)
    sequencer = TommySequencer(scenario.client_distributions, TommyConfig())
    result = benchmark(lambda: sequencer.sequence(list(scenario.messages)))
    assert result.message_count == 50


def test_sequencing_150_clients(benchmark):
    scenario = _scenario(150)
    sequencer = TommySequencer(scenario.client_distributions, TommyConfig())
    result = benchmark.pedantic(
        lambda: sequencer.sequence(list(scenario.messages)), rounds=2, iterations=1
    )
    assert result.message_count == 150


def test_scaling_sweep_rows(benchmark):
    rows = benchmark.pedantic(
        lambda: run_scaling_sweep(client_counts=BENCH_SCALING_CLIENT_COUNTS, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    emit("Client-count scaling", rows, benchmark="bench_scaling_sweep")
    # ordering quality holds up while cost grows with n
    assert all(row["correct_pairs"] >= row["incorrect_pairs"] for row in rows)
    assert rows[-1]["sequencing_seconds"] >= rows[0]["sequencing_seconds"]
