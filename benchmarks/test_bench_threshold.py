"""ABL-THRESH — batching-threshold trade-off (§3.4).

Regenerates the threshold sweep: a threshold near 0.5 approaches a total
order (many small batches, more pairs decided, more risk of inversions); a
threshold near 1 collapses into few large batches (high confidence, low
granularity).  Times the whole sweep and prints the rows.
"""

from _bench_utils import emit

from repro.experiments.ablations import run_threshold_sweep

THRESHOLDS = (0.55, 0.65, 0.75, 0.85, 0.95)


def run_sweep():
    return run_threshold_sweep(
        thresholds=THRESHOLDS, num_clients=40, gap=10.0, clock_std=40.0, seed=3
    )


def test_threshold_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Threshold sweep (Tommy, 40 clients, gap 10, clock std 40)", rows)
    batch_counts = [row["batches"] for row in rows]
    # granularity decreases monotonically with the threshold
    assert all(earlier >= later for earlier, later in zip(batch_counts, batch_counts[1:]))
    # every threshold decides at least as many pairs correctly as incorrectly
    assert all(row["correct_pairs"] >= row["incorrect_pairs"] for row in rows)
