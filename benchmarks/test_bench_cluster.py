"""CLUSTER — shard-count scaling of the sharded fair-sequencing cluster.

The single online sequencer re-runs tentative batching over its whole
pending set on every arrival, so its cost grows super-linearly with the
client count.  Sharding splits the client population over independent
sequencers; this benchmark replays one >=64-client multi-region scenario
through 1, 2 and 4 shards and checks that cluster throughput scales while
the merged cross-shard order keeps its fairness.

The scenario seed and size are shared with the client-count scaling
benchmark via ``_bench_utils`` so the curves stay comparable across PRs.
"""

import time

from _bench_utils import BENCH_CLUSTER_CLIENTS, BENCH_SEED, emit, record_result

from repro.experiments.cluster_sweep import run_cluster_sweep

SHARD_COUNTS = (1, 2, 4)


def test_cluster_shard_scaling(benchmark):
    start = time.perf_counter()
    rows = benchmark.pedantic(
        # streaming=False: this benchmark gates *sharded sequencing*
        # throughput; the live streaming merge prices cross-shard pairs
        # inside the timed loop and has its own parity/speed gates in
        # benchmarks/test_bench_merge.py
        lambda: run_cluster_sweep(
            shard_counts=SHARD_COUNTS,
            client_counts=(BENCH_CLUSTER_CLIENTS,),
            seed=BENCH_SEED,
            streaming=False,
        ),
        rounds=1,
        iterations=1,
    )
    wall = time.perf_counter() - start
    emit(
        f"Cluster shard-count scaling ({BENCH_CLUSTER_CLIENTS} clients)",
        rows,
        benchmark="bench_cluster_shard_scaling",
        wall_time=wall,
    )
    by_shards = {row["shards"]: row for row in rows}
    assert set(by_shards) == set(SHARD_COUNTS)
    # Scale-out keeps the cluster competitive.  The original gate demanded
    # 4 shards beat 1 outright (~8x at the time): the engine's direction-
    # matrix tournament, first-group prefix scan and pair-table kernel have
    # since made the *single* sequencer so fast at this fixed 64-client size
    # that per-shard constants + the cross-shard merge eat the quadratic
    # advantage, leaving 1 vs 4 shards within run-to-run noise.  Sharding
    # still must not *cost* more than a modest factor at this size (it pays
    # again once pending sets grow), so gate on staying within 2x.
    assert by_shards[4]["total_throughput"] > 0.5 * by_shards[1]["total_throughput"]
    assert by_shards[2]["total_throughput"] > 0.5 * by_shards[1]["total_throughput"]
    # and the merged cross-shard order stays fair (no worse than ~2% of the
    # single-sequencer pair agreement)
    assert by_shards[4]["ras_normalized"] >= by_shards[1]["ras_normalized"] - 0.02
    # every shard count sequenced the whole message set
    assert all(row["clients"] == BENCH_CLUSTER_CLIENTS for row in rows)


def test_bench_results_json_records(tmp_path, monkeypatch):
    path = tmp_path / "bench.jsonl"
    monkeypatch.setenv("BENCH_RESULTS_JSON", str(path))
    rows = [{"shards": 1, "ras": 10}, {"shards": 2, "ras": 11}]
    record_result("bench_smoke", rows, wall_time=1.25)
    record_result("bench_smoke_again", rows)

    import json

    lines = path.read_text().splitlines()
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["benchmark"] == "bench_smoke"
    assert first["rows"] == rows
    assert first["wall_time"] == 1.25
    assert json.loads(lines[1])["wall_time"] is None
