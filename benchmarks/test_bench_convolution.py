"""ABL-DIST — arbitrary distributions and the FFT convolution path (§3.3).

Two parts:

1. Micro-benchmarks of the preceding-probability machinery: the Gaussian
   closed form, FFT convolution and direct convolution of a client pair's
   error densities (the paper's log-linear vs quadratic argument).
2. The end-to-end distribution-family ablation: Tommy's fairness on
   Gaussian, skewed log-normal and mixture clock errors, via the closed form
   where possible and FFT otherwise.
"""

from _bench_utils import emit

from repro.distributions.convolution import convolve_direct, convolve_fft
from repro.distributions.difference import difference_distribution
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution, ShiftedLogNormalDistribution
from repro.experiments.ablations import run_distribution_ablation

DIST_I = MixtureDistribution(
    [GaussianDistribution(-20.0, 10.0), ShiftedLogNormalDistribution(0.0, 3.0, 0.5)], [0.6, 0.4]
)
DIST_J = GaussianDistribution(5.0, 25.0)
GAUSS_I = GaussianDistribution(0.0, 10.0)
GAUSS_J = GaussianDistribution(5.0, 25.0)


def test_gaussian_closed_form_pair(benchmark):
    result = benchmark(lambda: difference_distribution(GAUSS_I, GAUSS_J, method="gaussian"))
    assert result.exact


def test_fft_convolution_pair(benchmark):
    deltas, density = benchmark(lambda: convolve_fft(DIST_I, DIST_J, num_points=2048))
    assert deltas.shape == density.shape


def test_direct_convolution_pair(benchmark):
    deltas, density = benchmark(lambda: convolve_direct(DIST_I, DIST_J, num_points=1024))
    assert deltas.shape == density.shape


def test_distribution_family_ablation(benchmark):
    rows = benchmark.pedantic(
        lambda: run_distribution_ablation(num_clients=30), rounds=1, iterations=1
    )
    emit("Distribution-family ablation (30 clients)", rows)
    closed = next(row for row in rows if row["family"] == "gaussian/closed-form")
    fft = next(row for row in rows if row["family"] == "gaussian/fft")
    # identical statistical answer regardless of the numerical path
    assert abs(closed["ras"] - fft["ras"]) <= 2
    # the FFT path handles non-Gaussian families without inverting more pairs
    # than it gets right (on this workload the Gaussian runs stay indifferent)
    assert all(row["correct_pairs"] >= row["incorrect_pairs"] for row in rows)
    assert any(row["correct_pairs"] > 0 for row in rows)
