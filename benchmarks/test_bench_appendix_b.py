"""APPB — the Appendix B worked example as a micro-benchmark.

Times the full offline pipeline (relation -> tournament -> linear order ->
threshold batching) on the paper's four-message probability matrix and checks
the published outcome {A} < {B, C} < {D}.
"""

from _bench_utils import emit

from repro.core.config import TommyConfig
from repro.core.relation import LikelyHappenedBefore
from repro.core.sequencer import TommySequencer
from repro.network.message import TimestampedMessage

MATRIX = [
    [0.00, 0.85, 0.65, 0.92],
    [0.15, 0.00, 0.72, 0.68],
    [0.35, 0.28, 0.00, 0.80],
    [0.08, 0.32, 0.20, 0.00],
]


def run_appendix_b():
    messages = [
        TimestampedMessage(client_id=label, timestamp=float(index), true_time=float(index))
        for index, label in enumerate("ABCD")
    ]
    relation = LikelyHappenedBefore.from_matrix(messages, MATRIX)
    sequencer = TommySequencer(config=TommyConfig(threshold=0.75))
    return sequencer.sequence_relation(relation)


def test_appendix_b_pipeline(benchmark):
    result = benchmark(run_appendix_b)
    rows = [
        {"rank": batch.rank, "messages": "{" + ", ".join(m.client_id for m in batch.messages) + "}"}
        for batch in result.batches
    ]
    emit("Appendix B: batches at threshold 0.75", rows)
    assert [batch.size for batch in result.batches] == [1, 2, 1]
    assert [m.client_id for m in result.batches[1].messages] == ["B", "C"]
