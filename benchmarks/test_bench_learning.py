"""ABL-LEARN — seeded vs probe-learned offset distributions (§5).

The paper seeds clients with their true distributions and calls the result an
upper bound because estimation error is excluded.  This benchmark quantifies
that gap: Tommy's RAS with ground-truth distributions versus distributions
re-estimated from 16 / 64 / 256 probe offsets per client.
"""

from _bench_utils import emit

from repro.experiments.ablations import run_learning_ablation

PROBE_COUNTS = (16, 64, 256)


def run_sweep():
    return run_learning_ablation(probe_counts=PROBE_COUNTS, num_clients=40, seed=9)


def test_learning_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Seeded vs learned distributions (40 clients)", rows)
    seeded = rows[0]
    assert seeded["probes"] == 0
    best_learned = max(row["ras"] for row in rows[1:])
    # the seeded run is (approximately) an upper bound; learned estimates approach it
    assert seeded["ras"] >= best_learned - 20
    largest_budget = rows[-1]
    assert largest_budget["ras"] >= rows[1]["ras"] - 20
