"""Shared helpers for the benchmark harness.

Every benchmark prints the rows it regenerates (the table/figure series the
paper reports) so that running ``pytest benchmarks/ --benchmark-only -s``
reproduces both the numbers and the timing.

When the ``BENCH_RESULTS_JSON`` environment variable names a file, every
:func:`emit` additionally appends one JSON line
``{"benchmark": ..., "rows": [...], "wall_time": ...}`` to it, so the perf
trajectory across PRs is machine-readable.

The seed and scenario sizes shared by the scaling-oriented benchmarks live
here (``BENCH_SEED``, ``BENCH_SCALING_CLIENT_COUNTS``,
``BENCH_CLUSTER_CLIENTS``) so scaling curves stay comparable across PRs.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Sequence

#: Root seed shared by the client-count and shard-count scaling benchmarks.
BENCH_SEED = 13

#: Client counts swept by the offline client-count scaling benchmark.
BENCH_SCALING_CLIENT_COUNTS = (10, 25, 50, 100)

#: Scenario size for the cluster shard-count scaling benchmark.
BENCH_CLUSTER_CLIENTS = 64


def emit(
    title: str,
    rows: Sequence[Dict[str, object]],
    benchmark: Optional[str] = None,
    wall_time: Optional[float] = None,
) -> None:
    """Print a result table produced by a benchmark run.

    ``benchmark`` (defaulting to ``title``) and ``wall_time`` feed the
    machine-readable record appended when ``BENCH_RESULTS_JSON`` is set.
    """
    from repro.experiments.reporting import format_table

    print()
    print(format_table(list(rows), title=title))
    record_result(benchmark if benchmark is not None else title, rows, wall_time)


def record_result(
    benchmark: str, rows: Sequence[Dict[str, object]], wall_time: Optional[float] = None
) -> None:
    """Append one ``{benchmark, rows, wall_time}`` JSON line if configured.

    The destination is the file named by the ``BENCH_RESULTS_JSON``
    environment variable; without it this is a no-op.
    """
    path = os.environ.get("BENCH_RESULTS_JSON")
    if not path:
        return
    record = {
        "benchmark": benchmark,
        "rows": [dict(row) for row in rows],
        "wall_time": wall_time,
    }
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, default=str) + "\n")
