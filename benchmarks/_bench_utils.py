"""Shared helpers for the benchmark harness.

Every benchmark prints the rows it regenerates (the table/figure series the
paper reports) so that running ``pytest benchmarks/ --benchmark-only -s``
reproduces both the numbers and the timing.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def emit(title: str, rows: Sequence[Dict[str, object]]) -> None:
    """Print a result table produced by a benchmark run."""
    from repro.experiments.reporting import format_table

    print()
    print(format_table(list(rows), title=title))
