#!/usr/bin/env python
"""CI bench-regression gate: compare BENCH_RESULTS_JSON records to baselines.

Usage::

    python benchmarks/check_regression.py bench-results.jsonl \
        [--baselines benchmarks/baselines.json]

The results file holds one ``{"benchmark", "rows", "wall_time"}`` JSON line
per :func:`benchmarks._bench_utils.record_result` call.  For every benchmark
named in the baselines file, every recorded row is checked:

* ``flags`` — fields that must be truthy (parity bits; no tolerance: a
  parity regression is a correctness bug, not noise);
* ``floors`` — fields that must satisfy ``value >= floor * tolerance``
  (the global ``tolerance`` factor absorbs shared-runner timing noise);
* ``equals`` — fields that must match exactly (work counters such as
  "zero scalar evaluations on the fast path").

A benchmark listed in the baselines but absent from the results file fails
the gate (it means a bench was dropped from the workflow); benchmarks in
the results without a baseline entry are reported but pass, so adding a new
bench does not require a baseline in the same commit.

Exit code 0 when every check passes, 1 otherwise.  Stdlib-only, so the CI
step needs no PYTHONPATH.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List


def load_records(path: Path) -> Dict[str, List[dict]]:
    """Parse the JSONL results file into ``{benchmark: [row, ...]}``."""
    records: Dict[str, List[dict]] = {}
    for line_number, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SystemExit(f"{path}:{line_number}: not valid JSON: {error}")
        rows = record.get("rows", [])
        records.setdefault(str(record.get("benchmark")), []).extend(
            row for row in rows if isinstance(row, dict)
        )
    return records


def _as_bool(value: object) -> bool:
    # bench rows round-trip through ``json.dumps(..., default=str)``, so a
    # flag may arrive as a bool or as its string form
    if isinstance(value, str):
        return value.lower() == "true"
    return bool(value)


def check_benchmark(name: str, rows: List[dict], baseline: dict, tolerance: float) -> List[str]:
    """Return a list of violation messages for one benchmark's rows."""
    failures: List[str] = []
    if not rows:
        failures.append(f"{name}: no recorded rows (bench missing from the workflow?)")
        return failures
    for index, row in enumerate(rows):
        where = f"{name}[{index}]"
        for flag in baseline.get("flags", []):
            if flag not in row:
                failures.append(f"{where}: flag {flag!r} missing from the record")
            elif not _as_bool(row[flag]):
                failures.append(f"{where}: flag {flag!r} is {row[flag]!r} (parity regression)")
        for field, floor in baseline.get("floors", {}).items():
            if field not in row:
                failures.append(f"{where}: floored field {field!r} missing from the record")
                continue
            value = float(row[field])
            effective = float(floor) * tolerance
            if value < effective:
                failures.append(
                    f"{where}: {field} = {value:g} below floor {floor:g} "
                    f"(x{tolerance:g} tolerance = {effective:g})"
                )
        for field, expected in baseline.get("equals", {}).items():
            if field not in row:
                failures.append(f"{where}: exact field {field!r} missing from the record")
            elif row[field] != expected:
                failures.append(
                    f"{where}: {field} = {row[field]!r}, baseline requires {expected!r}"
                )
    return failures


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("results", type=Path, help="BENCH_RESULTS_JSON file (JSON lines)")
    parser.add_argument(
        "--baselines",
        type=Path,
        default=Path(__file__).resolve().parent / "baselines.json",
        help="baselines file (default: benchmarks/baselines.json)",
    )
    args = parser.parse_args(argv)

    if not args.results.exists():
        print(f"FAIL: results file {args.results} does not exist", file=sys.stderr)
        return 1
    config = json.loads(args.baselines.read_text(encoding="utf-8"))
    tolerance = float(config.get("tolerance", 1.0))
    baselines: Dict[str, dict] = config.get("benchmarks", {})
    records = load_records(args.results)

    failures: List[str] = []
    for name in sorted(baselines):
        failures.extend(check_benchmark(name, records.get(name, []), baselines[name], tolerance))

    unbaselined = sorted(set(records) - set(baselines))
    if unbaselined:
        print(f"note: benchmarks without a committed baseline (not gated): {unbaselined}")
    checked = sorted(set(records) & set(baselines))
    print(
        f"checked {len(checked)} baselined benchmark(s) {checked} "
        f"with tolerance x{tolerance:g}"
    )
    if failures:
        print(f"FAIL: {len(failures)} bench regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("OK: no bench regressions against committed baselines")
    return 0


if __name__ == "__main__":
    sys.exit(main())
