"""RECOVERY — restart-with-replay overhead of the procs supervisor.

Runs one frozen seeded cluster workload three ways:

* **sim** — the deterministic oracle (parity reference);
* **clean** — the procs backend with no fault injected;
* **crashed** — the same procs run with one worker hard-killed at its first
  streamed batch (``crash_point="mid"``), recovered by the supervisor's
  restart-with-replay path.

Asserted:

* **parity** — both procs runs stay bitwise equal to sim, crash or not (the
  PR's acceptance criterion; always asserted, every environment);
* **recovery accounting** — the crashed run records exactly one worker
  restart and recovers the killed shard;
* **overhead** — ``recovery_efficiency`` (clean wall-clock / crashed
  wall-clock) is recorded with a deliberately loose floor in
  ``baselines.json``: the crashed run pays the drain grace, one backoff and
  a full shard replay, so the ratio sits well below 1, but a collapse of an
  order of magnitude would flag a supervisor regression (e.g. a stuck drain
  loop re-entering the backoff path).

``RECOVERY_BENCH_SHARDS`` / ``RECOVERY_BENCH_CLIENTS`` /
``RECOVERY_BENCH_MESSAGES`` override the workload size (the CI smoke step
runs 8 clients x 4 messages).
"""

import os

from _bench_utils import BENCH_SEED, emit

from repro.core.config import TommyConfig
from repro.runtime.base import ClusterWorkload
from repro.runtime.procs import ProcBackend, RestartPolicy
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario

NUM_SHARDS = int(os.environ.get("RECOVERY_BENCH_SHARDS", "4"))
NUM_CLIENTS = int(os.environ.get("RECOVERY_BENCH_CLIENTS", "16"))
MESSAGES_PER_CLIENT = int(os.environ.get("RECOVERY_BENCH_MESSAGES", "12"))
CRASH_SHARD = 2
POLICY = RestartPolicy(max_restarts=2, backoff_base=0.01, backoff_cap=0.05)


def build_workload():
    scenario = build_cluster_scenario(
        NUM_CLIENTS, messages_per_client=MESSAGES_PER_CLIENT, seed=BENCH_SEED
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=NUM_SHARDS, config=TommyConfig(seed=BENCH_SEED)
    )


def run_once():
    workload = build_workload()

    sim = SimBackend().run(workload)
    with ProcBackend(num_workers=2, poll_timeout=0.05) as clean_backend:
        clean = clean_backend.run(workload)
    with ProcBackend(
        num_workers=2,
        poll_timeout=0.05,
        inject_crash=CRASH_SHARD,
        crash_mode="exit",
        crash_point="mid",
        restart_policy=POLICY,
    ) as crashed_backend:
        crashed = crashed_backend.run(workload)

    efficiency = clean.wall_seconds / max(crashed.wall_seconds, 1e-9)
    return {
        "shards": NUM_SHARDS,
        "clients": NUM_CLIENTS,
        "messages": len(workload.messages),
        "parity_clean": sim.fingerprint() == clean.fingerprint(),
        "parity_recovered": sim.fingerprint() == crashed.fingerprint(),
        "worker_restarts": crashed.details["worker_restarts"],
        "shards_recovered": len(crashed.details["shards_recovered"]),
        "lost_shards": len(crashed.lost_shards),
        "clean_wall_s": round(clean.wall_seconds, 3),
        "crashed_wall_s": round(crashed.wall_seconds, 3),
        "recovery_efficiency": round(efficiency, 3),
    }


def test_recovery_overhead_and_parity(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Restart-with-replay recovery vs clean run (parity + overhead)",
        [row],
        benchmark="recovery",
        wall_time=None,
    )
    assert row["parity_clean"], "clean procs merged order diverged from sim"
    assert row["parity_recovered"], "recovered procs merged order diverged from sim"
    assert row["worker_restarts"] == 1
    assert row["shards_recovered"] >= 1
    assert row["lost_shards"] == 0
