"""MERGE — flattened cross-shard merge kernel vs the frozen pairwise merger.

Builds one seeded 8-shard workload of emitted batch streams (Gaussian
clients, time-localised batches — the shape a real cluster drain has) and
merges it twice:

* **fast** — the current :class:`repro.cluster.merge.CrossShardMerger`: all
  messages flattened into one vectorized cross-probability evaluation,
  batch-pair means by ``np.add.reduceat`` segment reductions,
  certainty-window pruning for batch pairs that cannot overlap, and a numpy
  Kahn linearisation (networkx only materialised for cyclic tournaments);
* **pairwise** — the frozen pre-kernel implementation
  (``benchmarks/_pairwise_merge_baseline.py``): one
  ``cross_probability_matrix`` call per cross-shard batch pair inside an
  ``O(S^2 B^2)`` Python quadruple loop plus a from-scratch networkx rebuild.

Asserted:

* **parity** — identical merged orders (ranks, message keys, coalescing);
* **streaming parity** — a :class:`repro.cluster.merge.StreamingMerger`
  observing the same batches in an *interleaved shard order* reproduces the
  offline merge byte-for-byte, both mid-stream and at the end;
* **pruning** — the time-localised workload resolves a nontrivial fraction
  of batch pairs by window pruning alone;
* **speed** — >= 10x wall-clock at the full 8 shards x 64 batches size
  (skipped in CI and at reduced sizes, like the other benches).

``MERGE_BENCH_BATCHES`` overrides the per-shard batch count (the CI smoke
step runs 16).
"""

import os
import time

import numpy as np

import _pairwise_merge_baseline as baseline

from _bench_utils import BENCH_SEED, emit

from repro.cluster.merge import CrossShardMerger
from repro.core.probability import PrecedenceModel
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import SequencedBatch, TimestampedMessage

NUM_SHARDS = 8
NUM_BATCHES = int(os.environ.get("MERGE_BENCH_BATCHES", "64"))
CLIENTS_PER_SHARD = 3
MESSAGES_PER_BATCH = 3
BATCH_GAP = 0.02
ASSERT_SPEEDUP = NUM_BATCHES >= 64 and not os.environ.get("CI")


def build_workload():
    """Seeded per-shard batch streams plus the client distribution map."""
    rng = np.random.default_rng(BENCH_SEED)
    distributions = {}
    shard_clients = []
    for shard in range(NUM_SHARDS):
        clients = []
        for local in range(CLIENTS_PER_SHARD):
            client_id = f"s{shard}-c{local}"
            sigma = float(rng.uniform(0.002, 0.008))
            bias = float(rng.normal(0.0, 0.001))
            distributions[client_id] = GaussianDistribution(bias, sigma)
            clients.append(client_id)
        shard_clients.append(clients)
    streams = []
    message_id = 30_000_000
    for shard in range(NUM_SHARDS):
        stream = []
        for index in range(NUM_BATCHES):
            # deterministic per-shard stagger plus small jitter: shard streams
            # interleave densely (real coalescing work for the merge) while
            # the batch-level tournament stays transitive, the common case a
            # drain of time-ordered emissions produces
            base = (
                index * BATCH_GAP
                + shard * BATCH_GAP / NUM_SHARDS
                + float(rng.uniform(0.0, 0.1 * BATCH_GAP))
            )
            messages = []
            for _ in range(MESSAGES_PER_BATCH):
                client = shard_clients[shard][int(rng.integers(CLIENTS_PER_SHARD))]
                timestamp = base + float(rng.uniform(0.0, 0.25 * BATCH_GAP))
                messages.append(
                    TimestampedMessage(
                        client_id=client,
                        timestamp=timestamp,
                        true_time=timestamp,
                        message_id=message_id,
                    )
                )
                message_id += 1
            stream.append(
                SequencedBatch(rank=index, messages=tuple(messages), emitted_at=base)
            )
        streams.append(stream)
    return distributions, streams


def model_for(distributions):
    model = PrecedenceModel()
    for client_id, distribution in distributions.items():
        model.register_client(client_id, distribution)
    return model


def fingerprint(outcome):
    return [
        (batch.rank, tuple(message.key for message in batch.messages))
        for batch in outcome.result.batches
    ]


def interleaved_observation(streams, rng):
    """A shard-interleaved observation order respecting per-shard rank order."""
    cursors = [0] * len(streams)
    remaining = sum(len(stream) for stream in streams)
    observations = []
    while remaining:
        candidates = [s for s, stream in enumerate(streams) if cursors[s] < len(stream)]
        shard = candidates[int(rng.integers(len(candidates)))]
        observations.append((shard, streams[shard][cursors[shard]]))
        cursors[shard] += 1
        remaining -= 1
    return observations


def run_once():
    distributions, streams = build_workload()

    fast_merger = CrossShardMerger(model_for(distributions), seed=BENCH_SEED)
    start = time.perf_counter()
    fast = fast_merger.merge(streams)
    fast_wall = time.perf_counter() - start

    pairwise_merger = baseline.CrossShardMerger(model_for(distributions), seed=BENCH_SEED)
    start = time.perf_counter()
    pairwise = pairwise_merger.merge(streams)
    pairwise_wall = time.perf_counter() - start

    # streaming: observe the same batches in an interleaved shard order and
    # check parity both mid-stream and at the end
    streaming = CrossShardMerger(model_for(distributions), seed=BENCH_SEED).streaming_merger(
        num_shards=NUM_SHARDS
    )
    observations = interleaved_observation(streams, np.random.default_rng(BENCH_SEED + 1))
    halfway = len(observations) // 2
    start = time.perf_counter()
    for position, (shard, batch) in enumerate(observations):
        streaming.observe_batch(shard, batch)
        if position + 1 == halfway:
            observed = [
                [b for s, b in observations[:halfway] if s == shard_index]
                for shard_index in range(NUM_SHARDS)
            ]
            midstream_oracle = CrossShardMerger(
                model_for(distributions), seed=BENCH_SEED
            ).merge(observed)
            midstream_parity = fingerprint(streaming.result()) == fingerprint(midstream_oracle)
    final = streaming.result()
    streaming_wall = time.perf_counter() - start

    cross_pairs_total = fast.cross_pairs_evaluated + fast.cross_pairs_pruned
    return {
        "shards": NUM_SHARDS,
        "batches_per_shard": NUM_BATCHES,
        "merged_batches": fast.batch_count,
        "parity": fingerprint(fast) == fingerprint(pairwise),
        "streaming_parity": fingerprint(final) == fingerprint(fast),
        "midstream_parity": midstream_parity,
        "fast_wall_s": round(fast_wall, 4),
        "pairwise_wall_s": round(pairwise_wall, 4),
        "streaming_wall_s": round(streaming_wall, 4),
        "speedup": round(pairwise_wall / max(fast_wall, 1e-9), 2),
        "cross_pairs": cross_pairs_total,
        "kernel_pairs": fast.cross_pairs_evaluated,
        "pruned_pairs": fast.cross_pairs_pruned,
        "pruned_fraction": round(fast.cross_pairs_pruned / max(cross_pairs_total, 1), 3),
        "cycles_broken": fast.cycles_broken,
    }


def test_merge_kernel_matches_pairwise_and_is_faster(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Flattened cross-shard merge kernel vs frozen pairwise merger",
        [row],
        benchmark="merge_kernel",
        wall_time=row["fast_wall_s"] + row["pairwise_wall_s"] + row["streaming_wall_s"],
    )
    assert row["parity"], "flattened kernel diverged from the pairwise reference order"
    assert row["streaming_parity"], "streaming merger diverged from the offline merge"
    assert row["midstream_parity"], "streaming merger diverged mid-stream"
    assert row["merged_batches"] > 0
    # every cross-shard batch pair was priced exactly once, one way or another
    assert row["cross_pairs"] == (NUM_SHARDS * (NUM_SHARDS - 1) // 2) * NUM_BATCHES**2
    # the time-localised stream resolves a solid fraction by windows alone
    # (shorter smoke streams have proportionally fewer far-apart pairs)
    assert row["pruned_fraction"] > (0.25 if NUM_BATCHES >= 64 else 0.1)
    if ASSERT_SPEEDUP:
        assert row["speedup"] >= 10.0, f"merge kernel speedup {row['speedup']}x < 10x"
