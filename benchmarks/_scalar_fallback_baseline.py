"""FROZEN BASELINE — the scalar-fallback precedence engine, as it shipped.

This is a verbatim copy of ``repro/core/engine.py`` from the PR that
introduced the incremental engine (commit ``0e86236``), kept *only* as the
baseline for ``benchmarks/test_bench_empirical.py``.  On empirical/learned
client distributions this implementation silently drops to ``O(n)`` scalar
FFT-grid evaluations per arrival (one ``model.preceding_probability`` call
per pending message) and maintains its tournament as an incremental
:mod:`networkx` graph — exactly the hot-path behaviour the empirical
pair-table kernel replaced.  Do not modify except to keep it importable;
the live engine lives in :mod:`repro.core.engine`.

Original module docstring follows.

---

The online sequencer must re-derive its tentative batching on every arrival.
The original implementation rebuilt the full
:class:`~repro.core.relation.LikelyHappenedBefore` relation, the kept-edge
tournament and the strict-boundary minima from scratch each time — ``O(n^2)``
scalar probability evaluations per arrival over the pending set.  This module
keeps all of that state *incremental*:

* the pairwise preceding-probability matrix gains one row/column per arrival,
  computed as a single vectorized numpy evaluation of the §3.2 Gaussian
  closed form (scalar fallback through the
  :class:`~repro.core.probability.PrecedenceModel` for non-Gaussian clients,
  so FFT/direct methods keep working), and loses the emitted rows/columns on
  emission;
* the kept-edge tournament graph is maintained alongside the matrix — node
  and edge insertion order matches what
  :meth:`~repro.core.tournament.TournamentGraph.from_relation` would produce
  for the same pending set, so cycle detection and cycle-breaking walk the
  graph in exactly the same order as a from-scratch rebuild;
* the strict batching rule's boundary strengths are a pair of vectorized
  cumulative-minimum passes over the (order-permuted) matrix instead of a
  per-boundary scan;
* the safe-emission quantile ``Q_eps(1 - p_safe)`` is cached per
  ``(client, p_safe)`` so :meth:`safe_emission_time` is a subtraction, not a
  quantile search per message.

The engine is *behavior preserving*: for the same arrival stream it yields
byte-identical tentative groups, safe-emission times and therefore emitted
batches as the reference recompute-everything path (kept available via
``OnlineTommySequencer(..., use_engine=False)`` and property-tested against
it).  All probabilities reuse the exact floating-point expression of
:func:`~repro.core.probability.gaussian_preceding_probability`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np
from scipy import special

from repro.core.cycles import resolve_cycles
from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore, MessageKey
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage

_SQRT2 = math.sqrt(2.0)


@dataclass
class EngineStats:
    """Counters describing how the engine computed its probabilities."""

    vectorized_evaluations: int = 0
    scalar_evaluations: int = 0
    rows_appended: int = 0
    rows_removed: int = 0
    group_computations: int = 0
    cycle_resolutions: int = 0
    rebuilds: int = 0
    quantile_cache_hits: int = 0
    quantile_cache_misses: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view (for result metadata and benchmarks)."""
        return {
            "vectorized_evaluations": self.vectorized_evaluations,
            "scalar_evaluations": self.scalar_evaluations,
            "rows_appended": self.rows_appended,
            "rows_removed": self.rows_removed,
            "group_computations": self.group_computations,
            "cycle_resolutions": self.cycle_resolutions,
            "rebuilds": self.rebuilds,
            "quantile_cache_hits": self.quantile_cache_hits,
            "quantile_cache_misses": self.quantile_cache_misses,
        }

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Element-wise sum with ``other`` (for cluster-wide aggregation)."""
        return EngineStats(
            **{key: getattr(self, key) + getattr(other, key) for key in self.as_dict()}
        )


def batched_gaussian_probabilities(
    timestamps_i: np.ndarray,
    means_i: np.ndarray,
    variances_i: np.ndarray,
    timestamp_j: float,
    mean_j: float,
    variance_j: float,
) -> np.ndarray:
    """Vectorized §3.2 closed form: ``P(i precedes j)`` for arrays of ``i``.

    Bit-for-bit identical to calling
    :func:`~repro.core.probability.gaussian_preceding_probability` per
    element — the same operation order and the same ``erf`` kernel.
    """
    variance = variances_i + variance_j
    gap = (timestamp_j - timestamps_i) - (mean_j - means_i)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = gap / np.sqrt(variance)
        phi = 0.5 * (1.0 + special.erf(z / _SQRT2))
    degenerate = np.where(gap > 0, 1.0, np.where(gap < 0, 0.0, 0.5))
    return np.where(variance > 0, phi, degenerate)


def _gaussian_params(model: PrecedenceModel, client_id: str) -> Optional[Tuple[float, float]]:
    """``(mean, variance)`` when the closed form applies to ``client_id``."""
    if model.method not in {"auto", "gaussian"}:
        return None
    distribution = model.distribution_for(client_id)
    if not isinstance(distribution, GaussianDistribution):
        return None
    return (distribution.mean, distribution.variance)


def _cached_gaussian_params(
    model: PrecedenceModel,
    cache: Dict[str, Optional[Tuple[float, float]]],
    client_id: str,
) -> Optional[Tuple[float, float]]:
    """Memoized :func:`_gaussian_params` (shared by every vectorized path)."""
    if client_id not in cache:
        cache[client_id] = _gaussian_params(model, client_id)
    return cache[client_id]


def cross_probability_matrix(
    messages_a: Sequence[TimestampedMessage],
    messages_b: Sequence[TimestampedMessage],
    model: PrecedenceModel,
    stats: Optional[EngineStats] = None,
) -> np.ndarray:
    """Matrix ``M[i][j] = P(messages_a[i] precedes messages_b[j])``.

    Gaussian-eligible pairs are evaluated in one vectorized pass; other pairs
    fall back to the scalar model (preserving FFT/direct methods and their
    ``probability_evaluations`` accounting).
    """
    rows, cols = len(messages_a), len(messages_b)
    matrix = np.empty((rows, cols), dtype=float)
    if not rows or not cols:
        return matrix
    cache: Dict[str, Optional[Tuple[float, float]]] = {}

    def params(client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(model, cache, client_id)

    gauss_a = np.array([params(m.client_id) is not None for m in messages_a])
    gauss_b = np.array([params(m.client_id) is not None for m in messages_b])
    if gauss_a.any() and gauss_b.any():
        idx_a = np.flatnonzero(gauss_a)
        idx_b = np.flatnonzero(gauss_b)
        ts_a = np.array([messages_a[i].timestamp for i in idx_a])
        mu_a = np.array([params(messages_a[i].client_id)[0] for i in idx_a])
        var_a = np.array([params(messages_a[i].client_id)[1] for i in idx_a])
        for j in idx_b:
            message_j = messages_b[j]
            mu_j, var_j = params(message_j.client_id)
            matrix[idx_a, j] = batched_gaussian_probabilities(
                ts_a, mu_a, var_a, message_j.timestamp, mu_j, var_j
            )
        if stats is not None:
            stats.vectorized_evaluations += idx_a.size * idx_b.size
    if not (gauss_a.all() and gauss_b.all()):
        scalar_b = np.flatnonzero(~gauss_b)
        for i in range(rows):
            # a Gaussian row only misses the non-Gaussian columns; a
            # non-Gaussian row misses every column
            columns = scalar_b if gauss_a[i] else range(cols)
            for j in columns:
                matrix[i, j] = model.preceding_probability(messages_a[i], messages_b[j])
                if stats is not None:
                    stats.scalar_evaluations += 1
    return matrix


def build_relation(
    messages: Sequence[TimestampedMessage],
    model: PrecedenceModel,
    stats: Optional[EngineStats] = None,
) -> LikelyHappenedBefore:
    """Vectorized drop-in for :meth:`LikelyHappenedBefore.from_model`.

    Produces the same probabilities (the backward direction is stored as
    ``1 - p`` of the canonical ``i < j`` pair, exactly like ``from_model``)
    without the per-pair scalar evaluations for Gaussian clients.  Only the
    strict upper triangle is evaluated: non-Gaussian pairs cost exactly one
    scalar model call per unordered pair, the same as ``from_model``.
    """
    messages = list(messages)
    n = len(messages)
    cache: Dict[str, Optional[Tuple[float, float]]] = {}

    def params(client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(model, cache, client_id)

    gaussian = np.array([params(m.client_id) is not None for m in messages], dtype=bool)
    gaussian_matrix = None
    gaussian_positions: Dict[int, int] = {}
    if gaussian.any():
        indices = np.flatnonzero(gaussian)
        gaussian_positions = {int(index): slot for slot, index in enumerate(indices)}
        timestamps = np.array([messages[i].timestamp for i in indices])
        means = np.array([params(messages[i].client_id)[0] for i in indices])
        variances = np.array([params(messages[i].client_id)[1] for i in indices])
        gaussian_matrix = np.empty((indices.size, indices.size), dtype=float)
        for slot, index in enumerate(indices):
            # one batched column per message over the rows above it: the
            # strict upper triangle, exactly the entries consumed below
            message_j = messages[index]
            mean_j, variance_j = params(message_j.client_id)
            gaussian_matrix[:slot, slot] = batched_gaussian_probabilities(
                timestamps[:slot],
                means[:slot],
                variances[:slot],
                message_j.timestamp,
                mean_j,
                variance_j,
            )
        if stats is not None:
            stats.vectorized_evaluations += indices.size * (indices.size - 1) // 2

    probabilities: Dict[Tuple[MessageKey, MessageKey], float] = {}
    for index_i in range(n):
        key_i = messages[index_i].key
        for index_j in range(index_i + 1, n):
            key_j = messages[index_j].key
            if gaussian[index_i] and gaussian[index_j]:
                p = float(
                    gaussian_matrix[gaussian_positions[index_i], gaussian_positions[index_j]]
                )
            else:
                p = model.preceding_probability(messages[index_i], messages[index_j])
                if stats is not None:
                    stats.scalar_evaluations += 1
            probabilities[(key_i, key_j)] = p
            probabilities[(key_j, key_i)] = 1.0 - p
    return LikelyHappenedBefore(messages, probabilities)


def strict_boundary_strengths_matrix(matrix: np.ndarray) -> np.ndarray:
    """Strict-rule boundary strengths from an order-permuted matrix.

    ``matrix[a][b]`` is ``P(order[a] precedes order[b])``; the returned
    ``strengths[k] = min_{a <= k < b} matrix[a][b]`` matches
    :func:`repro.core.batching._strict_boundary_strengths` via two
    cumulative-minimum passes (down the columns, then right-to-left along the
    rows) instead of a per-boundary scan.
    """
    n = matrix.shape[0]
    if n < 2:
        return np.empty(0, dtype=float)
    column_min = np.minimum.accumulate(matrix, axis=0)
    suffix_min = np.minimum.accumulate(column_min[:, ::-1], axis=1)[:, ::-1]
    positions = np.arange(n - 1)
    return suffix_min[positions, positions + 1]


class IncrementalPrecedenceEngine:
    """Incrementally maintained precedence state over a pending message set.

    One engine instance backs one online sequencer: :meth:`add_message` on
    arrival, :meth:`remove_messages` on emission, :meth:`tentative_groups`
    whenever an emission check needs the strict batching of the current
    pending set, and :meth:`safe_emission_time` for the cached-quantile
    ``T^F`` computation.
    """

    def __init__(
        self,
        model: PrecedenceModel,
        threshold: float,
        tie_epsilon: float = 0.0,
        cycle_policy: str = "greedy",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0.5 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
        self._model = model
        self._threshold = float(threshold)
        self._tie_epsilon = float(tie_epsilon)
        self._cycle_policy = cycle_policy
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = EngineStats()

        self._messages: List[TimestampedMessage] = []
        self._index: Dict[MessageKey, int] = {}
        self._capacity = 16
        self._matrix = np.empty((self._capacity, self._capacity), dtype=float)
        self._timestamps = np.empty(self._capacity, dtype=float)
        self._means = np.empty(self._capacity, dtype=float)
        self._variances = np.empty(self._capacity, dtype=float)
        self._gaussian = np.empty(self._capacity, dtype=bool)
        self._graph = nx.DiGraph()
        self._client_params: Dict[str, Optional[Tuple[float, float]]] = {}
        self._quantiles: Dict[Tuple[str, float], float] = {}

    # ------------------------------------------------------------- properties
    @property
    def model(self) -> PrecedenceModel:
        """The scalar model backing non-Gaussian pairs and quantiles."""
        return self._model

    @property
    def size(self) -> int:
        """Number of messages currently tracked."""
        return len(self._messages)

    @property
    def message_keys(self) -> List[MessageKey]:
        """Keys of the tracked messages, in arrival order."""
        return [message.key for message in self._messages]

    def probability(self, key_a: MessageKey, key_b: MessageKey) -> float:
        """``P(key_a precedes key_b)`` from the maintained matrix."""
        return float(self._matrix[self._index[key_a], self._index[key_b]])

    def probability_matrix(self) -> np.ndarray:
        """Copy of the live pairwise matrix (arrival order, diagonal 0.5)."""
        n = self.size
        return self._matrix[:n, :n].copy()

    # ---------------------------------------------------------------- updates
    def _params_for(self, client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(self._model, self._client_params, client_id)

    def _grow(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        matrix = np.empty((capacity, capacity), dtype=float)
        n = self.size
        matrix[:n, :n] = self._matrix[:n, :n]
        self._matrix = matrix
        for name in ("_timestamps", "_means", "_variances", "_gaussian"):
            old = getattr(self, name)
            fresh = np.empty(capacity, dtype=old.dtype)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)
        self._capacity = capacity

    def add_message(self, message: TimestampedMessage) -> None:
        """Append one arrival: one vectorized row/column plus its edges."""
        key = message.key
        if key in self._index:
            raise ValueError(f"message {key!r} already tracked by the engine")
        params = self._params_for(message.client_id)
        if params is None:
            # raises KeyError for unregistered clients, mirroring the model
            self._model.distribution_for(message.client_id)
        n = self.size
        self._grow(n + 1)
        row = self._compute_row(message, params, n)
        if n:
            self._matrix[:n, n] = row
            self._matrix[n, :n] = 1.0 - row
        self._matrix[n, n] = 0.5
        self._timestamps[n] = message.timestamp
        if params is not None:
            self._means[n], self._variances[n] = params
            self._gaussian[n] = True
        else:
            self._means[n] = self._variances[n] = 0.0
            self._gaussian[n] = False
        self._graph.add_node(key)
        for position in range(n):
            self._orient(self._messages[position].key, key, float(row[position]))
        self._messages.append(message)
        self._index[key] = n
        self.stats.rows_appended += 1

    def _compute_row(
        self,
        message: TimestampedMessage,
        params: Optional[Tuple[float, float]],
        n: int,
    ) -> np.ndarray:
        """``row[i] = P(existing_i precedes message)`` over current messages."""
        row = np.empty(n, dtype=float)
        if not n:
            return row
        gauss = self._gaussian[:n] if params is not None else np.zeros(n, dtype=bool)
        if gauss.any():
            mean_j, variance_j = params
            row[gauss] = batched_gaussian_probabilities(
                self._timestamps[:n][gauss],
                self._means[:n][gauss],
                self._variances[:n][gauss],
                message.timestamp,
                mean_j,
                variance_j,
            )
            self.stats.vectorized_evaluations += int(gauss.sum())
        if not gauss.all():
            for position in np.flatnonzero(~gauss):
                row[position] = self._model.preceding_probability(
                    self._messages[position], message
                )
                self.stats.scalar_evaluations += 1
        return row

    def _orient(self, key_i: MessageKey, key_j: MessageKey, forward: float) -> None:
        """Keep one direction per pair, exactly like ``TournamentGraph.from_relation``."""
        backward = 1.0 - forward
        if abs(forward - 0.5) <= self._tie_epsilon:
            source, target, weight = (
                (key_i, key_j, forward) if key_i <= key_j else (key_j, key_i, backward)
            )
        elif forward > backward:
            source, target, weight = key_i, key_j, forward
        else:
            source, target, weight = key_j, key_i, backward
        self._graph.add_edge(source, target, probability=float(weight))

    def remove_messages(self, keys: Set[MessageKey]) -> None:
        """Drop emitted messages: compact the matrix, prune graph nodes."""
        drop = {key for key in keys if key in self._index}
        if not drop:
            return
        keep_positions = [
            position
            for position, message in enumerate(self._messages)
            if message.key not in drop
        ]
        n = self.size
        m = len(keep_positions)
        if m:
            keep = np.asarray(keep_positions, dtype=int)
            self._matrix[:m, :m] = self._matrix[np.ix_(keep, keep)]
            for name in ("_timestamps", "_means", "_variances", "_gaussian"):
                array = getattr(self, name)
                array[:m] = array[:n][keep]
        self._messages = [self._messages[position] for position in keep_positions]
        self._index = {message.key: position for position, message in enumerate(self._messages)}
        self._graph.remove_nodes_from(drop)
        self.stats.rows_removed += len(drop)

    def invalidate_client(self, client_id: str) -> None:
        """React to a (re)registered client distribution.

        Parameter and quantile caches for the client are dropped; when the
        client has tracked messages the whole matrix/graph is rebuilt so its
        pairs reflect the new distribution (the reference path recomputes
        everything per arrival and picks the change up implicitly).
        """
        self._client_params.pop(client_id, None)
        self._quantiles = {
            cache_key: value
            for cache_key, value in self._quantiles.items()
            if cache_key[0] != client_id
        }
        if any(message.client_id == client_id for message in self._messages):
            self._rebuild()

    def _rebuild(self) -> None:
        """Recompute all state by replaying the tracked messages in order."""
        messages = self._messages
        self._messages = []
        self._index = {}
        self._graph = nx.DiGraph()
        for message in messages:
            self.add_message(message)
        self.stats.rebuilds += 1

    # ------------------------------------------------------------ hot queries
    def safe_emission_time(self, message: TimestampedMessage, p_safe: float) -> float:
        """Cached-quantile ``T^F = T - Q_eps(1 - p_safe)`` (paper §3.5)."""
        if not 0.5 < p_safe < 1.0:
            raise ValueError(f"p_safe must be in (0.5, 1), got {p_safe!r}")
        cache_key = (message.client_id, p_safe)
        quantile = self._quantiles.get(cache_key)
        if quantile is None:
            quantile = self._model.distribution_for(message.client_id).quantile(1.0 - p_safe)
            self._quantiles[cache_key] = quantile
            self.stats.quantile_cache_misses += 1
        else:
            self.stats.quantile_cache_hits += 1
        return message.timestamp - quantile

    def _linear_order(self) -> List[MessageKey]:
        """The tournament's linear order, matching the reference pipeline.

        A tournament is transitive exactly when its out-degree (score)
        sequence is ``{0, .., n-1}``; in that case the unique topological
        order is the score-descending order and no graph copy is needed.
        Otherwise the graph is cyclic and the reference behaviour is
        replicated verbatim on a throwaway copy: ``resolve_cycles`` (which
        consumes the shared RNG identically) followed by the deterministic
        lexicographical topological sort.
        """
        n = self.size
        out_degree = dict(self._graph.out_degree())
        if sorted(out_degree.values()) == list(range(n)):
            return sorted(self._graph.nodes, key=lambda node: (-out_degree[node], node))
        working = self._graph.copy()
        resolve_cycles(working, self._cycle_policy, rng=self._rng)
        self.stats.cycle_resolutions += 1
        resolved_degree = dict(working.out_degree())
        return list(
            nx.lexicographical_topological_sort(
                working, key=lambda node: (-resolved_degree.get(node, 0), node)
            )
        )

    def tentative_groups(self) -> List[List[TimestampedMessage]]:
        """Strict-rule batching of the tracked set (online tentative groups)."""
        n = self.size
        if n == 0:
            return []
        self.stats.group_computations += 1
        if n == 1:
            return [[self._messages[0]]]
        order = self._linear_order()
        permutation = np.asarray([self._index[key] for key in order], dtype=int)
        permuted = self._matrix[np.ix_(permutation, permutation)]
        strengths = strict_boundary_strengths_matrix(permuted)
        groups: List[List[TimestampedMessage]] = [[self._messages[permutation[0]]]]
        for boundary, position in enumerate(permutation[1:]):
            message = self._messages[position]
            if strengths[boundary] > self._threshold:
                groups.append([message])
            else:
                groups[-1].append(message)
        return groups
