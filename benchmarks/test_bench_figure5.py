"""FIG5 — regenerate Figure 5 (RAS of Tommy vs TrueTime).

The paper's only quantitative figure: Rank Agreement Score of Tommy and the
emulated TrueTime baseline as the clock standard deviation sweeps upward, for
several inter-message gaps.  The benchmark times one full (reduced-scale)
sweep and prints the regenerated series; the paper's qualitative shape —
Tommy >= TrueTime everywhere, with the margin opening as the gap shrinks or
the clock error grows — is asserted.
"""

from _bench_utils import emit

from repro.experiments.figure5 import Figure5Settings, figure5_rows, run_figure5

SETTINGS = Figure5Settings(
    num_clients=40,
    sigma_values=(1.0, 30.0, 60.0, 90.0, 120.0),
    gap_values=(5.0, 20.0, 80.0),
    seed=7,
)


def run_sweep():
    return run_figure5(SETTINGS)


def test_figure5_sweep(benchmark):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("Figure 5: RAS vs clock std-dev (Tommy vs TrueTime)", figure5_rows(points))

    # Paper shape: Tommy is never behind the conservative baseline...
    assert all(point.tommy_ras >= point.truetime_ras for point in points)
    # ...and is strictly ahead once clock error dominates the inter-message gap.
    stressed = [p for p in points if p.clock_std >= 30.0 and p.message_gap <= 20.0]
    assert any(p.tommy_ras > p.truetime_ras for p in stressed)
    # TrueTime degrades to indifference (RAS ~ 0), never negative.
    assert all(p.truetime_ras >= 0 for p in points)
