"""APPC — online sequencing on the simulated network (Appendix C / §3.5).

Times a full discrete-event run: clients send bursts plus heartbeats over
jittery ordered channels, the online sequencer forms batches, waits for safe
emission and completeness, and emits.  Prints the fairness / emission-latency
row the run produces.
"""

from _bench_utils import emit

from repro.core.config import TommyConfig
from repro.experiments.online_runner import OnlineExperimentSettings, run_online_experiment

SETTINGS = OnlineExperimentSettings(
    num_clients=10,
    messages_per_client=3,
    clock_std=0.0008,
    config=TommyConfig(p_safe=0.999, completeness_mode="heartbeat"),
    run_duration=4.0,
    seed=11,
)


def run_once():
    return run_online_experiment(SETTINGS)


def test_online_sequencing_run(benchmark):
    outcome = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit("Online sequencing (Appendix C setting)", [outcome.as_row()])
    # every message is eventually emitted, in rank order, with positive latency
    assert (
        outcome.comparison.batches.message_count
        == SETTINGS.num_clients * SETTINGS.messages_per_client
    )
    assert outcome.latency.mean > 0
    # ordering quality: far more correct than inverted pairs
    assert outcome.comparison.ras.correct_pairs > outcome.comparison.ras.incorrect_pairs
