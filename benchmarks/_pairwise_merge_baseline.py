"""Frozen copy of the pre-flattened-kernel pairwise cross-shard merger.

This is the implementation `repro.cluster.merge` shipped before the
flattened batch-precedence kernel replaced it: one
``cross_probability_matrix`` call per cross-shard batch pair (an
``O(S^2 B^2)`` Python loop), a networkx graph rebuilt from scratch per
merge, and ``matrix.mean()`` per pair.  ``benchmarks/test_bench_merge.py``
uses it as the wall-clock and merged-order baseline; do not "fix" or
optimise it.
"""


from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.cycles import resolve_cycles
from repro.core.engine import EngineStats, PairTableCache, cross_probability_matrix
from repro.core.probability import PrecedenceModel
from repro.distributions.base import OffsetDistribution
from repro.network.message import SequencedBatch
from repro.sequencers.base import SequencingResult

#: A batch node: (shard index, position of the batch in that shard's stream).
BatchNode = Tuple[int, int]


@dataclass(frozen=True)
class MergeOutcome:
    """Result of one cross-shard merge pass."""

    result: SequencingResult
    merged_cross_shard: int
    cross_pairs_evaluated: int
    cycles_broken: int
    wall_seconds: float

    @property
    def batch_count(self) -> int:
        """Number of cluster-wide batches after merging."""
        return self.result.batch_count


class CrossShardMerger:
    """Merges per-shard emitted batches into one cluster-wide fair order."""

    def __init__(
        self,
        model: PrecedenceModel,
        threshold: float = 0.75,
        cycle_policy: str = "greedy",
        seed: int = 0,
    ) -> None:
        if not 0.5 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
        self._model = model
        self._threshold = float(threshold)
        self._cycle_policy = cycle_policy
        self._rng = np.random.default_rng(seed)
        self._engine_stats = EngineStats()
        # difference-CDF tables shared across every batch_precedence call, so
        # empirical/learned client pairs convolve once per pair, not per batch
        self._tables = PairTableCache(model, stats=self._engine_stats)

    @property
    def threshold(self) -> float:
        """Cross-shard boundary confidence threshold."""
        return self._threshold

    @property
    def model(self) -> PrecedenceModel:
        """The cluster-wide precedence model (all clients registered)."""
        return self._model

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register or refresh a client's distribution on the merge model.

        Drops the cached difference-CDF tables involving the client so the
        next merge prices its cross-shard pairs with the new distribution.
        """
        self._model.register_client(client_id, distribution)
        self._tables.invalidate_client(client_id)

    # ---------------------------------------------------------- probabilities
    @property
    def engine_stats(self) -> EngineStats:
        """Counters for the vectorized cross-pair computations performed."""
        return self._engine_stats

    def batch_precedence(self, batch_a: SequencedBatch, batch_b: SequencedBatch) -> float:
        """``P(batch_a generated before batch_b)`` at batch granularity.

        The mean over message cross pairs of the pairwise preceding
        probability (one vectorized engine evaluation of the cross matrix).
        The mean (rather than min or max) keeps the batch-level relation
        complementary, which the tournament construction requires.
        """
        matrix = cross_probability_matrix(
            batch_a.messages,
            batch_b.messages,
            self._model,
            stats=self._engine_stats,
            tables=self._tables,
        )
        if matrix.size == 0:
            return 0.5
        return float(matrix.mean())

    # ----------------------------------------------------------------- merge
    def merge(self, shard_batches: Sequence[Sequence[SequencedBatch]]) -> MergeOutcome:
        """Merge per-shard batch streams into one cluster-wide order.

        ``shard_batches[s]`` is shard ``s``'s emitted batches in rank order.
        Deterministic for fixed inputs and seed.
        """
        start = time.perf_counter()
        streams = [list(batches) for batches in shard_batches]
        nodes: List[BatchNode] = [
            (shard, index) for shard, stream in enumerate(streams) for index in range(len(stream))
        ]
        if not nodes:
            empty = SequencingResult(batches=(), metadata={"sequencer": "cluster-merge"})
            return MergeOutcome(
                result=empty,
                merged_cross_shard=0,
                cross_pairs_evaluated=0,
                cycles_broken=0,
                wall_seconds=time.perf_counter() - start,
            )

        graph = nx.DiGraph()
        graph.add_nodes_from(nodes)
        probabilities: Dict[Tuple[BatchNode, BatchNode], float] = {}

        # within-shard emission order is certain
        for shard, stream in enumerate(streams):
            for index in range(len(stream) - 1):
                graph.add_edge((shard, index), (shard, index + 1), probability=1.0)

        # cross-shard pairs: batch-level likely-happened-before
        cross_pairs = 0
        for shard_a in range(len(streams)):
            for shard_b in range(shard_a + 1, len(streams)):
                for index_a, batch_a in enumerate(streams[shard_a]):
                    for index_b, batch_b in enumerate(streams[shard_b]):
                        node_a: BatchNode = (shard_a, index_a)
                        node_b: BatchNode = (shard_b, index_b)
                        forward = self.batch_precedence(batch_a, batch_b)
                        cross_pairs += 1
                        probabilities[(node_a, node_b)] = forward
                        probabilities[(node_b, node_a)] = 1.0 - forward
                        if forward >= 0.5:
                            graph.add_edge(node_a, node_b, probability=float(forward))
                        else:
                            graph.add_edge(node_b, node_a, probability=float(1.0 - forward))

        resolution = resolve_cycles(graph, self._cycle_policy, rng=self._rng)
        out_degree = dict(graph.out_degree())
        order: List[BatchNode] = list(
            nx.lexicographical_topological_sort(
                graph, key=lambda node: (-out_degree.get(node, 0), node)
            )
        )

        # probabilistic coalescing: a cross-shard boundary needs confidence
        groups: List[List[BatchNode]] = []
        merged_cross_shard = 0
        for node in order:
            if groups:
                previous = groups[-1][-1]
                cross = previous[0] != node[0]
                confident = probabilities.get((previous, node), 1.0) > self._threshold
                if cross and not confident:
                    groups[-1].append(node)
                    merged_cross_shard += 1
                    continue
            groups.append([node])

        batches: List[SequencedBatch] = []
        for rank, group in enumerate(groups):
            messages = tuple(
                message
                for shard, index in group
                for message in streams[shard][index].messages
            )
            emitted = [
                streams[shard][index].emitted_at
                for shard, index in group
                if streams[shard][index].emitted_at is not None
            ]
            batches.append(
                SequencedBatch(
                    rank=rank,
                    messages=messages,
                    emitted_at=max(emitted) if emitted else None,
                )
            )

        wall = time.perf_counter() - start
        result = SequencingResult(
            batches=tuple(batches),
            metadata={
                "sequencer": "cluster-merge",
                "shards": len(streams),
                "threshold": self._threshold,
                "cycle_policy": self._cycle_policy,
                "merged_cross_shard": merged_cross_shard,
                "cross_pairs_evaluated": cross_pairs,
                "cycles_broken": len(resolution.removed_edges),
                "merge_wall_seconds": wall,
            },
        )
        return MergeOutcome(
            result=result,
            merged_cross_shard=merged_cross_shard,
            cross_pairs_evaluated=cross_pairs,
            cycles_broken=len(resolution.removed_edges),
            wall_seconds=wall,
        )
