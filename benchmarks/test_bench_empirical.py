"""EMPIRICAL — pair-table kernel vs the scalar fallback on learned clients.

Streams one seeded arrival workload of 64 *empirical* clients (histogram
distributions with a tight bulk and symmetric far outliers, the shape a
probe-learned estimate takes) through two engine-backed online sequencers:

* **fast** — the current engine: empirical pairs served by the vectorized
  difference-CDF pair tables, tournament kept as a numpy direction matrix,
  emission checks answered by the prefix first-group scan;
* **scalar fallback** — the engine implementation this PR replaced
  (``benchmarks/_scalar_fallback_baseline.py``, a frozen copy of the
  previous ``repro.core.engine``): every empirical pair is one scalar
  FFT-grid evaluation per arrival, the tournament an incremental networkx
  graph, every emission check a full ``O(n^2)`` boundary pass.

Asserted:

* **parity** — byte-identical emitted batch streams (ranks, message keys,
  emission times, safe-emission times);
* **work** — the fast path performs *zero* scalar probability evaluations
  (the fallback performs one per pending pair per arrival);
* **speed** — at the full benchmark size the fast path is >= 5x faster
  wall-clock.

The per-client-pair FFT convolutions (identical one-time cost on both
variants, cached in the model) are warmed outside the timed window so the
measurement isolates the streaming hot path.  ``EMPIRICAL_BENCH_MESSAGES``
overrides the stream length (the CI smoke step runs a small size); the
wall-clock gate only applies at full size outside CI, like the engine bench.
"""

import os
import time

import numpy as np

import _scalar_fallback_baseline as baseline

from _bench_utils import BENCH_CLUSTER_CLIENTS, BENCH_SEED, emit

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.empirical import EmpiricalDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop

NUM_MESSAGES = int(os.environ.get("EMPIRICAL_BENCH_MESSAGES", "2000"))
NUM_CLIENTS = BENCH_CLUSTER_CLIENTS
ASSERT_SPEEDUP = NUM_MESSAGES >= 1500 and not os.environ.get("CI")

CONFIG = TommyConfig(p_safe=0.999, completeness_mode="none", seed=BENCH_SEED)


def build_workload():
    """Deterministic empirical-client arrival stream shared by both variants.

    Each client's histogram has a tight Gaussian bulk (2-6 ms) plus ~3%
    symmetric outlier mass at +-0.6 s: the deep ``p_safe`` quantile keeps a
    few hundred messages pending (a realistic hot sequencer), while the
    median-zero bulk keeps the tournament transitive and emissions flowing.
    """
    rng = np.random.default_rng(BENCH_SEED)
    distributions = {}
    for i in range(NUM_CLIENTS):
        sigma = float(rng.uniform(0.002, 0.006))
        bulk = rng.normal(0.0, sigma, 2000)
        outliers_low = -0.6 + rng.normal(0.0, 0.05, 30)
        outliers_high = 0.6 + rng.normal(0.0, 0.05, 30)
        samples = np.concatenate([bulk, outliers_low, outliers_high])
        samples -= np.median(samples)
        distributions[f"client-{i:03d}"] = EmpiricalDistribution.from_samples(
            samples, bins=256
        )
    clients = sorted(distributions)
    arrivals = []
    t = 0.0
    for k in range(NUM_MESSAGES):
        t += float(rng.exponential(0.002))
        client = clients[int(rng.integers(NUM_CLIENTS))]
        noise = float(distributions[client].sample(rng))
        arrivals.append(
            (
                t,
                TimestampedMessage(
                    client_id=client,
                    timestamp=t + noise,
                    true_time=t,
                    message_id=20_000_000 + k,
                ),
            )
        )
    return distributions, arrivals


def run_variant(distributions, arrivals, fast):
    loop = EventLoop()
    if fast:
        sequencer = OnlineTommySequencer(loop, distributions, CONFIG)
    else:
        # the frozen scalar-fallback engine, attached behind the same online
        # sequencer so both variants share intake/emission machinery
        sequencer = OnlineTommySequencer(loop, distributions, CONFIG, use_engine=False)
        engine = baseline.IncrementalPrecedenceEngine(
            sequencer.model,
            threshold=CONFIG.threshold,
            tie_epsilon=CONFIG.tie_epsilon,
            cycle_policy=CONFIG.cycle_policy,
            rng=sequencer._rng,
        )
        # the baseline predates the first-group prefix scan: its emission
        # candidate is the head of the full tentative batching, as it was
        engine.first_tentative_group = lambda: (engine.tentative_groups() or [None])[0]
        sequencer._engine = engine
    # warm the per-pair FFT convolutions outside the timed window: a
    # one-time cost identical for both variants (cached in the model)
    clients = sorted(distributions)
    for client_a in clients:
        for client_b in clients:
            sequencer.model.pair_difference(client_a, client_b)
    for arrival_time, message in arrivals:
        loop.schedule_at(arrival_time, sequencer.receive, message)
    start = time.perf_counter()
    loop.run(until=arrivals[-1][0] + 30.0)
    sequencer.flush()
    wall = time.perf_counter() - start
    fingerprint = [
        (
            emitted.batch.rank,
            tuple(message.key for message in emitted.batch.messages),
            emitted.emitted_at,
            emitted.safe_emission_time,
        )
        for emitted in sequencer.emitted_batches
    ]
    return sequencer, wall, fingerprint


def run_once():
    distributions, arrivals = build_workload()
    fast_seq, fast_wall, fast_fp = run_variant(distributions, arrivals, fast=True)
    scalar_seq, scalar_wall, scalar_fp = run_variant(distributions, arrivals, fast=False)
    fast_stats = fast_seq.engine_stats()
    return {
        "messages": NUM_MESSAGES,
        "clients": NUM_CLIENTS,
        "batches": len(fast_fp),
        "parity": fast_fp == scalar_fp,
        "fast_wall_s": round(fast_wall, 4),
        "scalar_wall_s": round(scalar_wall, 4),
        "speedup": round(scalar_wall / max(fast_wall, 1e-9), 2),
        "fast_scalar_evals": fast_stats.scalar_evaluations,
        "fast_table_evals": fast_stats.table_evaluations,
        "pair_tables_built": fast_stats.pair_tables_built,
        "fallback_scalar_evals": scalar_seq._engine.stats.scalar_evaluations,
        "cycle_resolutions": fast_stats.cycle_resolutions,
    }


def test_empirical_kernel_matches_scalar_fallback_and_is_faster(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Empirical pair-table kernel vs scalar fallback",
        [row],
        benchmark="empirical_kernel",
        wall_time=row["fast_wall_s"] + row["scalar_wall_s"],
    )
    assert row["parity"], "fast path diverged from the scalar fallback"
    assert row["batches"] > 0
    # the whole point: zero scalar FFT evaluations on the fast path, while
    # the fallback performs one per pending pair per arrival
    assert row["fast_scalar_evals"] == 0
    assert row["fast_table_evals"] > 0
    assert row["fallback_scalar_evals"] > 10 * NUM_MESSAGES
    if ASSERT_SPEEDUP:
        assert row["speedup"] >= 5.0, f"empirical kernel speedup {row['speedup']}x < 5x"
