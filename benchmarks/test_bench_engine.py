"""ENGINE — incremental engine vs reference online hot path.

Streams the same seeded arrival workload (64 clients, 2k messages by
default) through the engine-backed online sequencer and through the original
recompute-everything reference path (``use_engine=False``), then asserts:

* **parity** — the emitted batch streams are byte-identical (ranks, message
  keys, emission times, safe-emission times);
* **work** — the engine performs at least 5x fewer scalar probability
  evaluations (it performs none on this Gaussian workload);
* **speed** — at the full benchmark size the engine is at least 3x faster
  wall-clock.

``ENGINE_BENCH_MESSAGES`` overrides the stream length (the CI smoke step
runs a small size).  The wall-clock ratio is only asserted at full size and
outside CI (``CI`` env unset): parity and evaluation counts are
deterministic, but timing on shared CI runners is not a reliable gate.
"""

import os
import time

import numpy as np

from _bench_utils import BENCH_CLUSTER_CLIENTS, BENCH_SEED, emit

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.simulation.event_loop import EventLoop

NUM_MESSAGES = int(os.environ.get("ENGINE_BENCH_MESSAGES", "2000"))
NUM_CLIENTS = BENCH_CLUSTER_CLIENTS
ASSERT_SPEEDUP = NUM_MESSAGES >= 1500 and not os.environ.get("CI")

CONFIG = TommyConfig(p_safe=0.99, completeness_mode="none", seed=BENCH_SEED)


def build_workload():
    """Deterministic arrival stream shared by both sequencer variants."""
    rng = np.random.default_rng(BENCH_SEED)
    distributions = {
        f"client-{i:03d}": GaussianDistribution(
            float(rng.normal(0.0, 0.002)), float(rng.uniform(0.002, 0.04))
        )
        for i in range(NUM_CLIENTS)
    }
    clients = sorted(distributions)
    arrivals = []
    t = 0.0
    for k in range(NUM_MESSAGES):
        t += float(rng.exponential(0.01))
        client = clients[int(rng.integers(NUM_CLIENTS))]
        sigma = distributions[client].std
        arrivals.append(
            (
                t,
                TimestampedMessage(
                    client_id=client,
                    timestamp=t + float(rng.normal(0.0, sigma)),
                    true_time=t,
                    message_id=10_000_000 + k,
                ),
            )
        )
    return distributions, arrivals


def run_variant(distributions, arrivals, use_engine):
    loop = EventLoop()
    sequencer = OnlineTommySequencer(
        loop, distributions, CONFIG, use_engine=use_engine
    )
    for arrival_time, message in arrivals:
        loop.schedule_at(arrival_time, sequencer.receive, message)
    start = time.perf_counter()
    loop.run(until=arrivals[-1][0] + 10.0)
    sequencer.flush()
    wall = time.perf_counter() - start
    fingerprint = [
        (
            emitted.batch.rank,
            tuple(message.key for message in emitted.batch.messages),
            emitted.emitted_at,
            emitted.safe_emission_time,
        )
        for emitted in sequencer.emitted_batches
    ]
    return sequencer, wall, fingerprint


def run_once():
    distributions, arrivals = build_workload()
    engine_seq, engine_wall, engine_fp = run_variant(distributions, arrivals, True)
    reference_seq, reference_wall, reference_fp = run_variant(distributions, arrivals, False)
    return {
        "messages": NUM_MESSAGES,
        "clients": NUM_CLIENTS,
        "batches": len(engine_fp),
        "parity": engine_fp == reference_fp,
        "engine_wall_s": round(engine_wall, 4),
        "reference_wall_s": round(reference_wall, 4),
        "speedup": round(reference_wall / max(engine_wall, 1e-9), 2),
        "engine_scalar_evals": engine_seq.model.probability_evaluations,
        "reference_scalar_evals": reference_seq.model.probability_evaluations,
        "engine_vectorized_evals": engine_seq.engine_stats().vectorized_evaluations,
    }


def test_engine_matches_reference_and_is_faster(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Incremental engine vs reference online path",
        [row],
        benchmark="engine_parity",
        wall_time=row["engine_wall_s"] + row["reference_wall_s"],
    )
    assert row["parity"], "engine diverged from the reference implementation"
    assert row["batches"] > 0
    # >=5x fewer scalar probability evaluations (none at all on Gaussians)
    assert row["reference_scalar_evals"] >= 5 * max(row["engine_scalar_evals"], 1)
    assert row["engine_scalar_evals"] == 0
    if ASSERT_SPEEDUP:
        assert row["speedup"] >= 3.0, f"engine speedup {row['speedup']}x < 3x"
