"""ABL-PSAFE — safe-emission confidence vs emission latency (§3.5).

Regenerates the p_safe trade-off on the online sequencer: raising p_safe
makes batch emission wait longer (latency grows) in exchange for a smaller
chance that a late message belonged in an already-emitted batch.
"""

from _bench_utils import emit

from repro.experiments.ablations import run_psafe_sweep

P_SAFE_VALUES = (0.9, 0.99, 0.999, 0.9999)


def run_sweep():
    return run_psafe_sweep(p_safe_values=P_SAFE_VALUES, num_clients=6, seed=11)


def test_psafe_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    emit("p_safe sweep (online Tommy, 6 clients)", rows)
    latencies = [row["mean_latency"] for row in rows]
    # emission latency is non-decreasing in p_safe
    assert all(later >= earlier - 1e-9 for earlier, later in zip(latencies, latencies[1:]))
    # all messages are eventually sequenced at every setting
    assert (
        len({
            row["correct_pairs"] + row["incorrect_pairs"] + row["indifferent_pairs"]
            for row in rows
        })
        == 1
    )
