"""TREE — hierarchical merge tree vs the flat kernel at wide shard counts.

Builds one seeded wide-cluster workload of emitted batch streams (64 shards
by default — the regime the log-depth tree targets) and merges it twice:

* **flat** — the existing :class:`repro.cluster.merge.CrossShardMerger`
  flattened kernel: one global forward matrix over every message pair;
* **tree** — :class:`repro.cluster.tree.HierarchicalMerger` over a balanced
  binary :class:`~repro.cluster.tree.MergeTopology`: each cross-shard batch
  pair priced at its LCA node, whole-grid window pruning first, then
  time-local chunked kernel calls sized to ``DEFAULT_CHUNK_ELEMENTS``.

The workload gives every batch a shared per-message timestamp on a
deterministic shard-staggered grid (no jitter), so the batch tournament is
provably transitive — parity cannot hinge on tie-breaking randomness.

Asserted:

* **parity** — the tree merge is byte-identical to the flat merge (order,
  counters, coalescing);
* **pruning** — the time-localised streams resolve most batch pairs by
  certainty windows alone;
* **speed** — >= 5x wall-clock over flat at the full 64 shards x 32
  batches size (skipped in CI and at reduced sizes, like the other
  benches); both sides are timed best-of-``TIMING_ROUNDS`` with a fresh
  merger per round so shared-runner noise can't fake a regression.

``TREE_BENCH_SHARDS`` / ``TREE_BENCH_BATCHES`` override the cluster width
and per-shard batch count (the CI smoke step runs 32 x 16).
"""

import os
import time

import numpy as np

from _bench_utils import BENCH_SEED, emit

from repro.cluster.merge import CrossShardMerger
from repro.cluster.tree import MergeTopology
from repro.core.probability import PrecedenceModel
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import SequencedBatch, TimestampedMessage

NUM_SHARDS = int(os.environ.get("TREE_BENCH_SHARDS", "64"))
NUM_BATCHES = int(os.environ.get("TREE_BENCH_BATCHES", "32"))
CLIENTS_PER_SHARD = 3
MESSAGES_PER_BATCH = 3
BATCH_GAP = 0.02
FANOUT = 2
# best-of-N walls with a fresh merger per round: one noisy round (GC pause,
# shared-runner contention) cannot sink the speedup ratio
TIMING_ROUNDS = 3
ASSERT_SPEEDUP = NUM_SHARDS >= 64 and NUM_BATCHES >= 32 and not os.environ.get("CI")


def build_workload():
    """Seeded per-shard batch streams plus the client distribution map."""
    rng = np.random.default_rng(BENCH_SEED)
    distributions = {}
    shard_clients = []
    for shard in range(NUM_SHARDS):
        clients = []
        for local in range(CLIENTS_PER_SHARD):
            client_id = f"s{shard}-c{local}"
            sigma = float(rng.uniform(0.0008, 0.002))
            distributions[client_id] = GaussianDistribution(0.0, sigma)
            clients.append(client_id)
        shard_clients.append(clients)
    streams = []
    message_id = 60_000_000
    for shard in range(NUM_SHARDS):
        stream = []
        for index in range(NUM_BATCHES):
            # shard-staggered grid with *shared* per-batch timestamps: batch
            # means order exactly by emission time, so the tournament is
            # transitive and the merge order is rng-independent
            base = index * BATCH_GAP + shard * BATCH_GAP / NUM_SHARDS
            messages = []
            for _ in range(MESSAGES_PER_BATCH):
                client = shard_clients[shard][int(rng.integers(CLIENTS_PER_SHARD))]
                messages.append(
                    TimestampedMessage(
                        client_id=client,
                        timestamp=base,
                        true_time=base,
                        message_id=message_id,
                    )
                )
                message_id += 1
            stream.append(
                SequencedBatch(rank=index, messages=tuple(messages), emitted_at=base)
            )
        streams.append(stream)
    return distributions, streams


def model_for(distributions):
    model = PrecedenceModel()
    for client_id, distribution in distributions.items():
        model.register_client(client_id, distribution)
    return model


def fingerprint(outcome):
    return [
        (batch.rank, tuple(message.key for message in batch.messages))
        for batch in outcome.result.batches
    ]


def timed_merge(build_merger, streams):
    """Best-of-``TIMING_ROUNDS`` wall clock; the merge outcome is identical
    every round (deterministic), so any round's result serves for parity."""
    best_wall = float("inf")
    outcome = None
    for _ in range(TIMING_ROUNDS):
        merger = build_merger()
        start = time.perf_counter()
        outcome = merger.merge(streams)
        best_wall = min(best_wall, time.perf_counter() - start)
    return outcome, best_wall


def run_once():
    distributions, streams = build_workload()

    flat, flat_wall = timed_merge(
        lambda: CrossShardMerger(model_for(distributions), seed=BENCH_SEED), streams
    )

    topology = MergeTopology.balanced(NUM_SHARDS, fanout=FANOUT)
    tree, tree_wall = timed_merge(
        lambda: CrossShardMerger(model_for(distributions), seed=BENCH_SEED).tree_merger(
            topology
        ),
        streams,
    )

    cross_pairs_total = tree.cross_pairs_evaluated + tree.cross_pairs_pruned
    return {
        "shards": NUM_SHARDS,
        "batches_per_shard": NUM_BATCHES,
        "fanout": FANOUT,
        "depth": topology.depth,
        "merged_batches": tree.batch_count,
        "parity": fingerprint(tree) == fingerprint(flat),
        "counter_parity": (
            tree.cross_pairs_evaluated == flat.cross_pairs_evaluated
            and tree.cross_pairs_pruned == flat.cross_pairs_pruned
        ),
        "flat_wall_s": round(flat_wall, 4),
        "tree_wall_s": round(tree_wall, 4),
        "speedup": round(flat_wall / max(tree_wall, 1e-9), 2),
        "cross_pairs": cross_pairs_total,
        "kernel_pairs": tree.cross_pairs_evaluated,
        "pruned_pairs": tree.cross_pairs_pruned,
        "pruned_fraction": round(tree.cross_pairs_pruned / max(cross_pairs_total, 1), 3),
        "cycles_broken": tree.cycles_broken,
    }


def test_tree_merge_matches_flat_and_is_faster_at_wide_clusters(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Hierarchical merge tree vs flat kernel at wide shard counts",
        [row],
        benchmark="tree_merge",
        wall_time=row["flat_wall_s"] + row["tree_wall_s"],
    )
    assert row["parity"], "tree merge diverged from the flat merge order"
    assert row["counter_parity"], "tree merge counters diverged from flat"
    assert row["merged_batches"] > 0
    assert row["cycles_broken"] == 0, "staggered-grid workload must stay transitive"
    # every cross-shard batch pair was priced exactly once, one way or another
    assert row["cross_pairs"] == (NUM_SHARDS * (NUM_SHARDS - 1) // 2) * NUM_BATCHES**2
    # the time-localised streams resolve most pairs by windows alone
    assert row["pruned_fraction"] > (0.5 if NUM_BATCHES >= 32 else 0.25)
    if ASSERT_SPEEDUP:
        assert row["speedup"] >= 5.0, f"tree merge speedup {row['speedup']}x < 5x"
