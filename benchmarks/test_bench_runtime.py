"""RUNTIME — real-process backend throughput vs the deterministic sim.

Runs one frozen seeded cluster workload (timestamps generated once in a
:class:`~repro.runtime.base.ClusterWorkload`) through three executions:

* **sim** — the single-loop deterministic backend (the parity oracle);
* **procs x1** — every shard in worker processes, but only one worker, so
  all shard loops run serially (isolates the multiprocessing overhead);
* **procs xN** — one worker per shard (N = ``RUNTIME_BENCH_SHARDS``), the
  configuration that should scale with cores.

Asserted:

* **parity** — all three merged orders are bitwise equal (the PR's
  acceptance criterion; always asserted, every environment);
* **scaling** — messages/sec with N workers exceeds 1 worker.  Only
  asserted on machines with >= 4 cores and outside CI: on the 1-core
  runners this repo tests on, extra workers cannot beat serial execution
  and the row simply records the observed ratio.

``RUNTIME_BENCH_SHARDS`` / ``RUNTIME_BENCH_CLIENTS`` /
``RUNTIME_BENCH_MESSAGES`` override the workload size (the CI smoke step
runs 2 shards x 8 clients x 4 messages).
"""

import os

from _bench_utils import BENCH_SEED, emit

from repro.core.config import TommyConfig
from repro.runtime.base import ClusterWorkload
from repro.runtime.procs import ProcBackend
from repro.runtime.sim import SimBackend
from repro.workloads.cluster import build_cluster_scenario

NUM_SHARDS = int(os.environ.get("RUNTIME_BENCH_SHARDS", "4"))
NUM_CLIENTS = int(os.environ.get("RUNTIME_BENCH_CLIENTS", "16"))
MESSAGES_PER_CLIENT = int(os.environ.get("RUNTIME_BENCH_MESSAGES", "12"))
ASSERT_SCALING = (os.cpu_count() or 1) >= 4 and not os.environ.get("CI")


def build_workload():
    scenario = build_cluster_scenario(
        NUM_CLIENTS, messages_per_client=MESSAGES_PER_CLIENT, seed=BENCH_SEED
    )
    return ClusterWorkload.from_scenario(
        scenario, num_shards=NUM_SHARDS, config=TommyConfig(seed=BENCH_SEED)
    )


def run_once():
    workload = build_workload()

    sim = SimBackend().run(workload)
    with ProcBackend(num_workers=1) as serial:
        procs_serial = serial.run(workload)
    with ProcBackend() as wide:
        procs_wide = wide.run(workload)

    scaling = procs_wide.messages_per_second / max(procs_serial.messages_per_second, 1e-9)
    return {
        "shards": NUM_SHARDS,
        "clients": NUM_CLIENTS,
        "messages": len(workload.messages),
        "cores": os.cpu_count() or 1,
        "parity_serial": sim.fingerprint() == procs_serial.fingerprint(),
        "parity_wide": sim.fingerprint() == procs_wide.fingerprint(),
        "sim_msgs_per_s": round(sim.messages_per_second, 1),
        "procs_x1_msgs_per_s": round(procs_serial.messages_per_second, 1),
        f"procs_x{procs_wide.num_workers}_msgs_per_s": round(
            procs_wide.messages_per_second, 1
        ),
        "workers_wide": procs_wide.num_workers,
        "scaling_1_to_n": round(scaling, 2),
    }


def test_procs_backend_matches_sim_and_scales(benchmark):
    row = benchmark.pedantic(run_once, rounds=1, iterations=1)
    emit(
        "Real-process backend vs deterministic sim (parity + scaling)",
        [row],
        benchmark="runtime_procs",
        wall_time=None,
    )
    assert row["parity_serial"], "procs(1 worker) merged order diverged from sim"
    assert row["parity_wide"], "procs(N workers) merged order diverged from sim"
    assert row["messages"] == NUM_CLIENTS * MESSAGES_PER_CLIENT
    if ASSERT_SCALING:
        assert row["scaling_1_to_n"] > 1.0, (
            f"1->{row['workers_wide']} workers gave {row['scaling_1_to_n']}x msgs/sec"
        )
