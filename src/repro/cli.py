"""Command-line interface for the experiment harness.

Every paper artifact and ablation can be regenerated from the shell::

    python -m repro.cli figure5 --num-clients 80
    python -m repro.cli thresholds
    python -m repro.cli psafe
    python -m repro.cli baselines
    python -m repro.cli learning
    python -m repro.cli learned
    python -m repro.cli scaling
    python -m repro.cli cluster --shards 4 --num-clients 64
    python -m repro.cli cluster --shards 4 --runtime procs
    python -m repro.cli chaos --shards 4 --fault partition
    python -m repro.cli telemetry --workload cluster --trace-out trace.json
    python -m repro.cli serve --port 7341 --max-inflight 64 --runtime procs
    python -m repro.cli all --csv-dir results/

Each experiment subcommand prints the same rows the corresponding benchmark
target regenerates; ``--csv-dir`` additionally writes one CSV per
experiment.  ``serve`` is different: it binds the live ingestion edge
(:mod:`repro.edge`) on a TCP port, sequences whatever framed clients send,
and prints the run summary when traffic drains (see docs/operations.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.ablations import (
    run_baseline_comparison,
    run_learning_ablation,
    run_psafe_sweep,
    run_scaling_sweep,
    run_threshold_sweep,
)
from repro.experiments.chaos_sweep import run_chaos_sweep
from repro.experiments.cluster_sweep import run_cluster_sweep
from repro.experiments.figure5 import Figure5Settings, figure5_rows, run_figure5
from repro.experiments.learned_sweep import run_learned_sweep
from repro.experiments.reporting import format_table, rows_to_csv
from repro.obs.export import write_chrome_trace, write_metrics_json
from repro.obs.spans import stage_latency_rows
from repro.obs.workload import WORKLOAD_NAMES, run_instrumented_workload
from repro.runtime.base import RUNTIME_NAMES
from repro.workloads.chaos import FAULT_NAMES


def _figure5_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    settings = Figure5Settings(
        num_clients=args.num_clients, threshold=args.threshold, seed=args.seed
    )
    return figure5_rows(run_figure5(settings))


def _threshold_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    return run_threshold_sweep(num_clients=args.num_clients, seed=args.seed)


#: The online p_safe sweep re-runs tentative batching on every arrival, so
#: its cost grows roughly cubically with the client count; it is capped to
#: keep the CLI responsive.
PSAFE_MAX_CLIENTS = 12


def _psafe_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    effective = min(args.num_clients, PSAFE_MAX_CLIENTS)
    if effective != args.num_clients:
        print(
            f"warning: psafe runs the online sequencer and caps --num-clients at "
            f"{PSAFE_MAX_CLIENTS} (requested {args.num_clients}, using {effective})",
            file=sys.stderr,
        )
    return run_psafe_sweep(num_clients=effective, seed=args.seed)


def _baseline_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    return run_baseline_comparison(num_clients=args.num_clients, seed=args.seed)


def _learning_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    return run_learning_ablation(num_clients=args.num_clients, seed=args.seed)


def _scaling_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    return run_scaling_sweep(seed=args.seed)


#: The live-learning sweep replays every probe stream through the online
#: sequencer three times (static / live / oracle); the client count is capped
#: to keep the CLI responsive.
LEARNED_MAX_CLIENTS = 24


def _learned_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    effective = min(args.num_clients, LEARNED_MAX_CLIENTS)
    if effective != args.num_clients:
        print(
            f"warning: learned replays the online sequencer per configuration and caps "
            f"--num-clients at {LEARNED_MAX_CLIENTS} (requested {args.num_clients}, "
            f"using {effective})",
            file=sys.stderr,
        )
    return run_learned_sweep(num_clients=effective, seed=args.seed)


def _shard_counts_up_to(max_shards: int) -> List[int]:
    """Doubling shard counts from 1 up to (and always including) the max."""
    counts = []
    count = 1
    while count < max_shards:
        counts.append(count)
        count *= 2
    counts.append(max_shards)
    return counts


def _cluster_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    return run_cluster_sweep(
        shard_counts=_shard_counts_up_to(args.shards),
        client_counts=(args.num_clients,),
        seed=args.seed,
        streaming=not args.no_streaming_merge,
        merge_topology=args.merge_topology,
        merge_fanout=args.fanout,
        runtime=args.runtime,
        num_workers=args.workers,
        max_restarts=args.max_restarts,
        on_shard_loss=args.on_shard_loss,
    )


#: The chaos sweep drives the full live stack (transports, chaos hooks,
#: heartbeat failover, streaming merge) once per fault cell; the client
#: count is capped to keep the CLI responsive.
CHAOS_MAX_CLIENTS = 32


def _chaos_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    effective = min(args.num_clients, CHAOS_MAX_CLIENTS)
    if effective != args.num_clients:
        print(
            f"warning: chaos runs the live cluster per fault cell and caps --num-clients "
            f"at {CHAOS_MAX_CLIENTS} (requested {args.num_clients}, using {effective})",
            file=sys.stderr,
        )
    # dict.fromkeys dedupes while keeping the control first (--fault none
    # would otherwise emit the control row twice)
    faults = FAULT_NAMES if args.fault == "all" else tuple(dict.fromkeys(("none", args.fault)))
    return run_chaos_sweep(
        faults=faults,
        intensities=(args.intensity,),
        shard_counts=(args.shards,),
        num_clients=effective,
        seed=args.seed,
        streaming=not args.no_streaming_merge,
    )


def _telemetry_rows(args: argparse.Namespace) -> List[Dict[str, object]]:
    effective = min(args.num_clients, CHAOS_MAX_CLIENTS)
    if effective != args.num_clients:
        print(
            f"warning: telemetry runs the live cluster and caps --num-clients at "
            f"{CHAOS_MAX_CLIENTS} (requested {args.num_clients}, using {effective})",
            file=sys.stderr,
        )
    fault = args.fault
    if args.workload == "chaos" and fault == "all":
        fault = "delay"
        print(
            "warning: telemetry instruments one fault family at a time; "
            "--fault all falls back to 'delay'",
            file=sys.stderr,
        )
    run = run_instrumented_workload(
        workload=args.workload,
        num_shards=args.shards,
        num_clients=effective,
        seed=args.seed,
        fault=fault,
        intensity=args.intensity,
        merge_topology=args.merge_topology,
        merge_fanout=args.fanout,
        runtime=args.runtime,
        num_workers=args.workers,
        max_restarts=args.max_restarts,
        on_shard_loss=args.on_shard_loss,
    )
    if args.trace_out:
        # non-sim runtimes always get the wall-clock mirror tracks: showing
        # the real process overlap next to the sim schedule is their point
        wall_tracks = args.wall_tracks or args.runtime != "sim"
        count = write_chrome_trace(run.telemetry, args.trace_out, wall_tracks=wall_tracks)
        print(f"wrote {args.trace_out} ({count} trace events; open in ui.perfetto.dev)")
    if args.metrics_out:
        write_metrics_json(run.telemetry, args.metrics_out)
        print(f"wrote {args.metrics_out}")
    _print_merge_nodes(run.telemetry)
    return stage_latency_rows(run.telemetry)


def _print_merge_nodes(telemetry) -> None:
    """Print the per-merge-node pruning table alongside the latency rows."""
    if telemetry.registry is None:
        return
    merge_report = telemetry.registry.snapshot().get("sources", {}).get("cluster.merge")
    if not isinstance(merge_report, dict):
        return
    nodes = merge_report.get("nodes") or []
    if not nodes:
        return
    title = (
        f"MERGE NODES: topology={merge_report.get('topology')} "
        f"fanout={merge_report.get('fanout')} depth={merge_report.get('depth')}"
    )
    print(format_table(list(nodes), title=title))


def serve_spec(args: argparse.Namespace):
    """The live cluster shape ``repro serve`` provisions.

    Clients come from the same deterministic multi-region scenario generator
    the experiments use (``--num-clients``/``--seed``), so a client process
    built from the same seed knows exactly which client ids are provisioned
    — and a loopback replay of the frozen workload must reproduce the
    :class:`~repro.runtime.sim.SimBackend` fingerprint bitwise.
    """
    from repro.core.config import TommyConfig
    from repro.runtime.live import LiveClusterSpec
    from repro.workloads.cluster import build_cluster_scenario

    scenario = build_cluster_scenario(num_clients=args.num_clients, seed=args.seed)
    scenario = getattr(scenario, "scenario", scenario)
    return LiveClusterSpec(
        client_distributions=dict(scenario.client_distributions),
        num_shards=args.shards,
        config=TommyConfig(seed=args.seed),
        merge_topology=args.merge_topology,
        merge_fanout=args.fanout,
    )


def _run_serve(args: argparse.Namespace) -> int:
    """Run the live ingestion edge until traffic drains; print the summary."""
    import asyncio
    import hashlib

    from repro.edge.server import EdgeServer
    from repro.obs import Telemetry
    from repro.runtime.live import LiveDispatcher

    telemetry = Telemetry()
    dispatcher = LiveDispatcher(
        serve_spec(args),
        runtime=args.runtime,
        num_workers=args.workers,
        telemetry=telemetry,
    )

    async def _serve():
        server = EdgeServer(
            dispatcher,
            host=args.host,
            port=args.port,
            max_inflight=args.max_inflight,
            telemetry=telemetry,
        )
        await server.start()
        print(f"listening on {args.host}:{server.port}", flush=True)
        try:
            outcome = await server.serve_until_idle(idle_grace=args.idle_grace)
        finally:
            await server.close()
        return server, outcome

    try:
        server, outcome = asyncio.run(_serve())
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        dispatcher.close()
        return 130
    digest = hashlib.sha256(repr(outcome.fingerprint()).encode()).hexdigest()[:16]
    rows = [
        {
            "runtime": outcome.backend,
            "messages": outcome.message_count,
            "batches": len(outcome.merge.result.batches),
            "duplicates": outcome.details.get("duplicates_rejected", 0),
            "late": outcome.details.get("late_arrivals", 0),
            "peak_depth": server.intake_depth_peak,
            "max_inflight": server.max_inflight,
            "fingerprint": digest,
        }
    ]
    print(format_table(rows, title=SERVE_TITLE))
    return 0


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], List[Dict[str, object]]]] = {
    "figure5": _figure5_rows,
    "thresholds": _threshold_rows,
    "psafe": _psafe_rows,
    "baselines": _baseline_rows,
    "learning": _learning_rows,
    "learned": _learned_rows,
    "scaling": _scaling_rows,
    "cluster": _cluster_rows,
    "chaos": _chaos_rows,
    "telemetry": _telemetry_rows,
}

TITLES = {
    "figure5": "Figure 5: RAS of Tommy vs TrueTime",
    "thresholds": "ABL-THRESH: batching-threshold sweep",
    "psafe": "ABL-PSAFE: safe-emission confidence sweep",
    "baselines": "ABL-BASE: FIFO / WFO / TrueTime / Tommy on a burst",
    "learning": "ABL-LEARN: seeded vs probe-learned distributions",
    "learned": "LEARNED: static-Gaussian vs live-learned online sequencing",
    "scaling": "ABL-SCALE: client-count scaling",
    "cluster": "CLUSTER: sharded fair sequencing, shard-count scaling",
    "chaos": "CHAOS: fault injection on the live sharded cluster",
    "telemetry": "TELEMETRY: message-lifecycle stage latency on an instrumented run",
}

# ``serve`` is a service mode, not an experiment: it has a summary title but
# no EXPERIMENTS entry (TITLES is pinned to exactly the experiment registry).
SERVE_TITLE = "SERVE: live ingestion edge run summary"


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value!r}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Beyond Lamport, Towards Probabilistic Fair Ordering'."
        ),
    )
    parser.add_argument(
        "--num-clients", type=int, default=60, help="clients per scenario (default 60)"
    )
    parser.add_argument(
        "--threshold", type=float, default=0.75, help="batching threshold (default 0.75)"
    )
    parser.add_argument("--seed", type=int, default=7, help="root random seed")
    parser.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="max shard count for the cluster sweep (swept 1, 2, ... up to this; default 4)",
    )
    parser.add_argument(
        "--no-streaming-merge",
        action="store_true",
        help="cluster/chaos sweeps: disable the live streaming cross-shard merge "
        "(skips the streaming_ms / streaming_parity columns)",
    )
    parser.add_argument(
        "--merge-topology",
        choices=["flat", "binary", "region"],
        default="flat",
        help="cluster/telemetry: cross-shard merge topology — flat (one kernel), "
        "binary (balanced fanout tree), or region (tree grouped by the router's "
        "region map); parity-equal merged order (default flat)",
    )
    parser.add_argument(
        "--fanout",
        type=_positive_int,
        default=2,
        help="cluster/telemetry: merge-tree fanout for --merge-topology binary/region "
        "(default 2)",
    )
    parser.add_argument(
        "--runtime",
        choices=list(RUNTIME_NAMES),
        default="sim",
        help="cluster/telemetry: execution backend — sim (deterministic event loop, "
        "the parity oracle) or procs (one worker process per shard, coordinator-side "
        "streaming merge); same seed yields a bitwise-identical merged order "
        "(default sim)",
    )
    parser.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="--runtime procs: cap the worker-process count (default: one per shard)",
    )
    parser.add_argument(
        "--max-restarts",
        type=int,
        default=None,
        help="--runtime procs: restart budget per worker slot before its shards "
        "are handled by --on-shard-loss (default: supervisor default, 2; "
        "0 fails fast on the first death)",
    )
    parser.add_argument(
        "--on-shard-loss",
        choices=["raise", "exclude"],
        default="raise",
        help="--runtime procs: once the restart budget is exhausted, either raise "
        "WorkerCrashed (default) or finalize the merge over surviving shards and "
        "record the loss in the run details",
    )
    parser.add_argument(
        "--fault",
        choices=sorted(FAULT_NAMES) + ["all"],
        default="all",
        help="chaos sweep only: fault family to inject ('all' sweeps every family)",
    )
    parser.add_argument(
        "--intensity",
        type=float,
        default=1.0,
        help="chaos sweep only: fault intensity knob (default 1.0)",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_NAMES,
        default="cluster",
        help="telemetry only: which workload to instrument (default cluster)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="telemetry only: write a perfetto-loadable Chrome trace_event JSON here",
    )
    parser.add_argument(
        "--wall-tracks",
        action="store_true",
        help="telemetry only: add wall-clock mirror tracks to --trace-out "
        "(always on for --runtime procs)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="telemetry only: write the structured JSON metrics snapshot here",
    )
    parser.add_argument(
        "--csv-dir", default=None, help="also write one CSV per experiment into this directory"
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve only: interface to bind (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve only: TCP port to bind (default 0 = pick a free port; "
        "the bound port is printed on startup)",
    )
    parser.add_argument(
        "--max-inflight",
        type=_positive_int,
        default=64,
        help="serve only: bound of the global intake queue — when full, "
        "handlers stop reading their sockets and TCP flow control pushes "
        "back to clients (default 64)",
    )
    parser.add_argument(
        "--idle-grace",
        type=float,
        default=0.2,
        help="serve only: seconds of idleness (no connections, empty intake "
        "queue, at least one connection served) before the edge drains and "
        "prints the run summary (default 0.2)",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["serve", "all"],
        help="which experiment to regenerate ('all' runs every one), or "
        "'serve' to run the live ingestion edge",
    )
    return parser


def run_experiment(name: str, args: argparse.Namespace) -> List[Dict[str, object]]:
    """Run one named experiment and return its rows."""
    if name not in EXPERIMENTS:
        raise ValueError(f"unknown experiment {name!r}")
    return EXPERIMENTS[name](args)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "serve":
        return _run_serve(args)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]

    if args.csv_dir:
        os.makedirs(args.csv_dir, exist_ok=True)

    for name in names:
        rows = run_experiment(name, args)
        print(format_table(rows, title=TITLES[name]))
        if args.csv_dir:
            path = os.path.join(args.csv_dir, f"{name}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rows_to_csv(rows))
            print(f"wrote {path}\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
