"""Base class for simulated entities (clients, sequencers, links)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.simulation.event_loop import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Scheduler


class Entity:
    """A named participant attached to a scheduler.

    Entities provide convenience wrappers over the scheduling API so
    concrete simulated components (clients, sequencers, network links) read
    naturally: ``self.call_after(0.01, self.on_timeout)``.  The attachment
    point is the :class:`~repro.runtime.base.Scheduler` protocol, not the
    concrete :class:`~repro.simulation.event_loop.EventLoop` — any backend
    substrate satisfying the protocol can host an entity.
    """

    def __init__(self, loop: Scheduler, name: str) -> None:
        self._loop = loop
        self._name = str(name)

    @property
    def loop(self) -> Scheduler:
        """The scheduler this entity is attached to."""
        return self._loop

    @property
    def name(self) -> str:
        """Stable, human-readable entity name."""
        return self._name

    @property
    def now(self) -> float:
        """Current true simulation time."""
        return self._loop.now

    def call_at(
        self, when: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` at absolute true time ``when``."""
        return self._loop.schedule_at(when, callback, *args, label=self._name, **kwargs)

    def call_after(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds of true time."""
        return self._loop.schedule_after(delay, callback, *args, label=self._name, **kwargs)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel a pending event previously returned by ``call_at``/``call_after``."""
        if event is not None:
            self._loop.cancel(event)

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} {self._name!r} t={self.now:.6f}>"
