"""Structured trace recording for simulations.

Traces are append-only lists of :class:`TraceEvent` records.  They are used
by tests (to assert on causality and timing) and by the experiment harness
(to compute emission latency and fairness metrics after a run).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: ``(time, source, kind, details)``."""

    time: float
    source: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation run.

    With ``capacity`` set, the recorder keeps only the *newest* ``capacity``
    events (a ring buffer) and counts the rest in :attr:`dropped_events`, so
    long chaos runs cannot grow a trace without bound.  Unbounded by
    default, preserving the historical behaviour.
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive when given, got {capacity!r}")
        self._capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._enabled = bool(enabled)
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether the recorder currently accepts events."""
        return self._enabled

    @property
    def capacity(self) -> Optional[int]:
        """Maximum retained events (``None`` = unbounded)."""
        return self._capacity

    @property
    def dropped_events(self) -> int:
        """Events evicted from the ring buffer because capacity was reached."""
        return self._dropped

    def enable(self) -> None:
        """Start accepting events."""
        self._enabled = True

    def disable(self) -> None:
        """Stop accepting events (records already captured are kept)."""
        self._enabled = False

    def record(self, time: float, source: str, kind: str, **details: Any) -> None:
        """Append an event if the recorder is enabled."""
        if self._enabled:
            if self._capacity is not None and len(self._events) == self._capacity:
                self._dropped += 1
            self._events.append(TraceEvent(time=time, source=source, kind=kind, details=details))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        """Return recorded events, optionally filtered by kind and source."""
        result: List[TraceEvent] = list(self._events)
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if source is not None:
            result = [event for event in result if event.source == source]
        return result

    def clear(self) -> None:
        """Discard all recorded events (the dropped counter is reset too)."""
        self._events = deque(maxlen=self._capacity)
        self._dropped = 0
