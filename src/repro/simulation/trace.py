"""Structured trace recording for simulations.

Traces are append-only lists of :class:`TraceEvent` records.  They are used
by tests (to assert on causality and timing) and by the experiment harness
(to compute emission latency and fairness metrics after a run).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence: ``(time, source, kind, details)``."""

    time: float
    source: str
    kind: str
    details: Dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Collects :class:`TraceEvent` records during a simulation run."""

    def __init__(self, enabled: bool = True) -> None:
        self._events: List[TraceEvent] = []
        self._enabled = bool(enabled)

    @property
    def enabled(self) -> bool:
        """Whether the recorder currently accepts events."""
        return self._enabled

    def enable(self) -> None:
        """Start accepting events."""
        self._enabled = True

    def disable(self) -> None:
        """Stop accepting events (records already captured are kept)."""
        self._enabled = False

    def record(self, time: float, source: str, kind: str, **details: Any) -> None:
        """Append an event if the recorder is enabled."""
        if self._enabled:
            self._events.append(TraceEvent(time=time, source=source, kind=kind, details=details))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: Optional[str] = None, source: Optional[str] = None) -> List[TraceEvent]:
        """Return recorded events, optionally filtered by kind and source."""
        result = self._events
        if kind is not None:
            result = [event for event in result if event.kind == kind]
        if source is not None:
            result = [event for event in result if event.source == source]
        return list(result)

    def clear(self) -> None:
        """Discard all recorded events."""
        self._events = []
