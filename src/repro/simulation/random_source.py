"""Deterministic random-number management for simulations.

Every stochastic component draws from a named child stream of a single
:class:`RandomSource`.  Child streams are derived deterministically from the
root seed and the stream name, so adding a new component does not perturb the
random draws of existing components — a property that keeps experiment sweeps
comparable across code changes.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np


class RandomSource:
    """Root random source with named, independently seeded child streams."""

    def __init__(self, seed: Optional[int] = 0) -> None:
        self._seed = 0 if seed is None else int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating if needed) the generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = np.random.default_rng(self._derive(name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomSource":
        """Derive a child :class:`RandomSource` rooted at ``name``."""
        return RandomSource(self._derive(name))

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "little")

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"RandomSource(seed={self._seed}, streams={sorted(self._streams)})"
