"""Discrete-event simulation kernel used by every other substrate.

The kernel is deliberately small and deterministic: a priority-queue driven
event loop (:class:`EventLoop`), simulated entities (:class:`Entity`), a
seed-managed random source (:class:`RandomSource`) and a structured trace
recorder (:class:`TraceRecorder`).  All time values are floats in seconds of
*true* (reference) time; simulated clocks that drift or are offset from true
time live in :mod:`repro.clocks`.
"""

from repro.simulation.event_loop import Event, EventLoop, SimulationError
from repro.simulation.entity import Entity
from repro.simulation.random_source import RandomSource
from repro.simulation.trace import TraceRecorder, TraceEvent

__all__ = [
    "Event",
    "EventLoop",
    "SimulationError",
    "Entity",
    "RandomSource",
    "TraceRecorder",
    "TraceEvent",
]
