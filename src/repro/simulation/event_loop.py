"""A deterministic discrete-event simulation loop.

The event loop is the heart of the simulation substrate.  Events are
scheduled at an absolute *true time* and executed in non-decreasing time
order.  Ties are broken deterministically by a monotonically increasing
sequence number so that two runs with the same seed produce the same
execution order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation is driven into an invalid state."""


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events compare by ``(time, priority, seq)``; the callback and payload are
    excluded from the ordering so arbitrary callables can be scheduled.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    kwargs: dict = field(compare=False, default_factory=dict)
    cancelled: bool = field(compare=False, default=False)
    label: str = field(compare=False, default="")

    def cancel(self) -> None:
        """Mark the event so the loop skips it when popped."""
        self.cancelled = True


class LoopClock:
    """Read-only handle onto an :class:`EventLoop`'s simulated time.

    Satisfies the :class:`repro.runtime.base.ClockHandle` protocol, so
    harness/workload code can read time without holding the loop itself.
    """

    __slots__ = ("_loop",)

    def __init__(self, loop: "EventLoop") -> None:
        self._loop = loop

    def now(self) -> float:
        """Current simulated time of the underlying loop."""
        return self._loop.now


class EventLoop:
    """Priority-queue based discrete-event scheduler.

    Parameters
    ----------
    start_time:
        Initial simulation time (true time, seconds).

    Examples
    --------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule_at(1.5, fired.append, "a")
    >>> _ = loop.schedule_at(0.5, fired.append, "b")
    >>> loop.run()
    >>> fired
    ['b', 'a']
    >>> loop.now
    1.5
    """

    #: Minimum queue length before lazy-cancelled events are compacted away.
    COMPACTION_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self._processed = 0
        self._cancelled_pending = 0
        self._stats: Dict[str, int] = {
            "scheduled": 0,
            "cancelled": 0,
            "executed": 0,
            "compactions": 0,
        }

    # ------------------------------------------------------------------ time
    @property
    def now(self) -> float:
        """Current simulation (true) time in seconds."""
        return self._now

    @property
    def clock(self) -> LoopClock:
        """Read-only clock handle onto this loop's simulated time (cached)."""
        handle = self.__dict__.get("_clock")
        if handle is None:
            handle = self.__dict__["_clock"] = LoopClock(self)
        return handle

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including not-yet-reaped cancelled ones)."""
        return len(self._queue)

    def stats(self) -> Dict[str, int]:
        """Return scheduling statistics (scheduled / cancelled / executed / compactions)."""
        return dict(self._stats)

    def as_dict(self) -> Dict[str, int]:
        """Alias of :meth:`stats` — the common stats-snapshot protocol.

        Lets the loop be attached directly as a
        :class:`repro.obs.MetricsRegistry` source alongside the other
        ``as_dict()`` stats objects (engine / chaos / refresh).
        """
        return self.stats()

    # ------------------------------------------------------------- scheduling
    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback(*args, **kwargs)`` at absolute time ``when``.

        Scheduling in the past raises :class:`SimulationError`; scheduling at
        exactly the current time is allowed and runs after the event that is
        currently executing.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when:.9f}, time is already {self._now:.9f}"
            )
        event = Event(
            time=float(when),
            priority=priority,
            seq=next(self._seq),
            callback=callback,
            args=args,
            kwargs=kwargs,
            label=label,
        )
        heapq.heappush(self._queue, event)
        self._stats["scheduled"] += 1
        return event

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Event:
        """Schedule ``callback`` at ``now + delay`` (``delay`` must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(
            self._now + delay, callback, *args, priority=priority, label=label, **kwargs
        )

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal).

        Cancellation only marks the event; the heap entry is reaped when it
        reaches the front — except that once cancelled events make up more
        than half of a non-trivial queue the whole heap is compacted, so an
        arrival burst that cancels and reschedules one check per arrival
        cannot grow the heap beyond ~2x its live size.
        """
        if not event.cancelled:
            event.cancel()
            self._stats["cancelled"] += 1
            self._cancelled_pending += 1
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        if (
            len(self._queue) >= self.COMPACTION_MIN_QUEUE
            and 2 * self._cancelled_pending > len(self._queue)
        ):
            self._queue = [event for event in self._queue if not event.cancelled]
            heapq.heapify(self._queue)
            self._cancelled_pending = 0
            self._stats["compactions"] += 1

    # -------------------------------------------------------------- execution
    def step(self) -> Optional[Event]:
        """Execute the next pending event and return it.

        Returns ``None`` when the queue is empty.  Cancelled events are
        silently discarded.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_pending -= 1
                continue
            if event.time < self._now:
                raise SimulationError("event queue time went backwards")
            self._now = event.time
            event.callback(*event.args, **event.kwargs)
            self._processed += 1
            self._stats["executed"] += 1
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue is drained, ``until`` is reached, or ``max_events``.

        Returns the number of events executed by this call.  When ``until``
        is given, time is advanced to ``until`` even if the queue drains
        earlier, matching the convention of most DES frameworks.
        """
        if self._running:
            raise SimulationError("event loop is not re-entrant")
        self._running = True
        self._stopped = False
        executed = 0
        try:
            while self._queue and not self._stopped:
                if max_events is not None and executed >= max_events:
                    break
                next_event = self._peek()
                if next_event is None:
                    break
                if until is not None and next_event.time > until:
                    break
                if self.step() is not None:
                    executed += 1
            if until is not None and until > self._now and not self._stopped:
                self._now = until
        finally:
            self._running = False
        return executed

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    def _peek(self) -> Optional[Event]:
        """Return the next non-cancelled event without removing it."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
            self._cancelled_pending -= 1
        return self._queue[0] if self._queue else None

    def next_event_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` when idle."""
        event = self._peek()
        return event.time if event is not None else None
