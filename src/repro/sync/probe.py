"""Synchronization probes: NTP-style four-timestamp exchanges.

A probe is one request/response round trip between a client and the
sequencer.  The four timestamps are

* ``t1`` — client transmit time, client clock,
* ``t2`` — sequencer receive time, sequencer clock,
* ``t3`` — sequencer transmit time, sequencer clock,
* ``t4`` — client receive time, client clock.

Offset and round-trip delay estimates follow the standard NTP formulas.  In
this reproduction the sequencer's clock is the reference (the paper
synchronizes clients to the sequencer, §3.1 footnote 3), so the sequencer's
timestamps are true time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.clocks.local import LocalClock
from repro.network.link import DelayModel
from repro.simulation.event_loop import EventLoop


@dataclass(frozen=True)
class SyncProbe:
    """One completed four-timestamp probe."""

    client_id: str
    t1: float
    t2: float
    t3: float
    t4: float
    true_offset_forward: float
    true_offset_backward: float

    @property
    def round_trip_delay(self) -> float:
        """NTP round-trip delay estimate ``(t4 - t1) - (t3 - t2)``."""
        return (self.t4 - self.t1) - (self.t3 - self.t2)

    @property
    def offset_estimate(self) -> float:
        """NTP clock-offset estimate ``((t2 - t1) + (t3 - t4)) / 2``.

        This estimates the *sequencer minus client* offset; the client's
        offset relative to the sequencer (theta, as used by Tommy) is the
        negation.
        """
        return 0.5 * ((self.t2 - self.t1) + (self.t3 - self.t4))

    @property
    def client_offset_estimate(self) -> float:
        """Estimate of theta = client clock minus sequencer clock."""
        return -self.offset_estimate


class ProbeExchange:
    """Simulates probe round trips between one client and the sequencer."""

    def __init__(
        self,
        loop: EventLoop,
        client_id: str,
        client_clock: LocalClock,
        forward_delay: DelayModel,
        backward_delay: DelayModel,
        rng: np.random.Generator,
        server_processing_time: float = 0.0,
    ) -> None:
        if server_processing_time < 0:
            raise ValueError("server_processing_time must be non-negative")
        self._loop = loop
        self._client_id = client_id
        self._clock = client_clock
        self._forward = forward_delay
        self._backward = backward_delay
        self._rng = rng
        self._processing = float(server_processing_time)
        self._probes: List[SyncProbe] = []

    @property
    def probes(self) -> List[SyncProbe]:
        """All completed probes so far."""
        return list(self._probes)

    def run_probe(self) -> SyncProbe:
        """Execute one probe round trip instantaneously in simulated terms.

        The probe is computed analytically from the current true time and
        sampled one-way delays; the event loop's time is not advanced, which
        keeps probing cheap inside large sweeps while preserving the exact
        same statistics a scheduled exchange would produce.
        """
        start_true = self._loop.now
        reading_out = self._clock.read()
        t1 = reading_out.reported
        forward_delay = max(float(self._forward.sample(self._rng)), 0.0)
        t2 = start_true + forward_delay
        t3 = t2 + self._processing
        backward_delay = max(float(self._backward.sample(self._rng)), 0.0)
        arrival_true = t3 + backward_delay
        reading_back = self._clock.read()
        # the client's receive timestamp reflects its offset at arrival time
        t4 = arrival_true + (reading_back.reported - reading_back.true_time)
        probe = SyncProbe(
            client_id=self._client_id,
            t1=t1,
            t2=t2,
            t3=t3,
            t4=t4,
            true_offset_forward=reading_out.reported - reading_out.true_time,
            true_offset_backward=reading_back.reported - reading_back.true_time,
        )
        self._probes.append(probe)
        return probe

    def run_probes(self, count: int) -> List[SyncProbe]:
        """Run ``count`` probes back to back and return them."""
        if count < 0:
            raise ValueError("count must be non-negative")
        return [self.run_probe() for _ in range(count)]
