"""Clock-drift tracking and synchronization-regime change detection.

Paper §5 flags two gaps in the preliminary learning mechanism: (i) clock
*drift* (a slowly growing offset component) is not captured by a static
offset distribution, and (ii) abrupt environmental changes (e.g. a hot spot
in the datacenter) can invalidate a learned distribution, so a robust
mechanism must notice when the distribution has shifted.

:class:`DriftTracker` fits a linear trend (offset = intercept + rate * time)
to timestamped offset observations so the drift component can be removed
before the residual distribution is learned.  :class:`RegimeShiftDetector`
compares a recent observation window against the long-run baseline with a
Welch-style z-test on the mean (and a ratio test on the spread) and flags a
shift, at which point the caller should discard the stale window and
re-learn (:class:`AdaptiveOffsetLearner` does exactly that).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

import numpy as np

from repro.distributions.estimation import DistributionEstimate
from repro.sync.learner import OffsetDistributionLearner


@dataclass(frozen=True)
class DriftFit:
    """Least-squares linear fit of offset versus time."""

    intercept: float
    rate: float
    residual_std: float
    sample_count: int

    @property
    def rate_ppm(self) -> float:
        """Drift rate in parts-per-million (microseconds per second)."""
        return self.rate * 1e6

    def offset_at(self, time: float) -> float:
        """Predicted drift-induced offset at ``time``."""
        return self.intercept + self.rate * float(time)


class DriftTracker:
    """Tracks the linear drift component of timestamped offset observations."""

    def __init__(self, window: int = 4096) -> None:
        if window < 4:
            raise ValueError("window must be at least 4 observations")
        self._times: Deque[float] = deque(maxlen=window)
        self._offsets: Deque[float] = deque(maxlen=window)

    @property
    def observation_count(self) -> int:
        """Number of observations currently retained."""
        return len(self._offsets)

    def observe(self, time: float, offset: float) -> None:
        """Record one offset observation made at (true or local) ``time``."""
        self._times.append(float(time))
        self._offsets.append(float(offset))

    def can_fit(self, minimum: int = 8) -> bool:
        """True once enough observations with distinct times are available."""
        return len(self._offsets) >= minimum and len(set(self._times)) >= 2

    def fit(self) -> DriftFit:
        """Least-squares fit of ``offset = intercept + rate * time``."""
        if not self.can_fit(minimum=4):
            raise ValueError("not enough observations to fit a drift model")
        times = np.asarray(self._times, dtype=float)
        offsets = np.asarray(self._offsets, dtype=float)
        rate, intercept = np.polyfit(times, offsets, deg=1)
        residuals = offsets - (intercept + rate * times)
        residual_std = float(residuals.std(ddof=1)) if residuals.size > 1 else 0.0
        return DriftFit(
            intercept=float(intercept),
            rate=float(rate),
            residual_std=residual_std,
            sample_count=int(offsets.size),
        )

    def detrended_offsets(self) -> np.ndarray:
        """Offset observations with the fitted linear drift removed."""
        fit = self.fit()
        times = np.asarray(self._times, dtype=float)
        offsets = np.asarray(self._offsets, dtype=float)
        return offsets - (fit.intercept + fit.rate * times)


@dataclass(frozen=True)
class RegimeShiftReport:
    """Outcome of one regime-shift check."""

    shifted: bool
    mean_z_score: float
    spread_ratio: float
    baseline_count: int
    recent_count: int


class RegimeShiftDetector:
    """Detects abrupt changes in a client's synchronization conditions.

    The detector keeps a long *baseline* window and a short *recent* window
    of offset observations.  A shift is reported when the recent mean moves
    more than ``z_threshold`` standard errors away from the baseline mean, or
    when the recent spread grows by more than ``spread_ratio_threshold``.
    """

    def __init__(
        self,
        baseline_window: int = 512,
        recent_window: int = 32,
        z_threshold: float = 4.0,
        spread_ratio_threshold: float = 3.0,
    ) -> None:
        if baseline_window < 16:
            raise ValueError("baseline_window must be at least 16")
        if recent_window < 4:
            raise ValueError("recent_window must be at least 4")
        if recent_window >= baseline_window:
            raise ValueError("recent_window must be smaller than baseline_window")
        if z_threshold <= 0 or spread_ratio_threshold <= 1.0:
            raise ValueError("z_threshold must be positive and spread_ratio_threshold above 1")
        self._baseline: Deque[float] = deque(maxlen=baseline_window)
        self._recent: Deque[float] = deque(maxlen=recent_window)
        self._z_threshold = float(z_threshold)
        self._spread_ratio_threshold = float(spread_ratio_threshold)
        self._shifts_detected = 0

    @property
    def shifts_detected(self) -> int:
        """Number of regime shifts reported so far."""
        return self._shifts_detected

    def observe(self, offset: float) -> RegimeShiftReport:
        """Add an observation and check for a shift."""
        offset = float(offset)
        self._recent.append(offset)
        report = self.check()
        if report.shifted:
            self._shifts_detected += 1
        else:
            self._baseline.append(offset)
        return report

    def check(self) -> RegimeShiftReport:
        """Compare the recent window against the baseline without mutating state."""
        baseline = np.asarray(self._baseline, dtype=float)
        recent = np.asarray(self._recent, dtype=float)
        if baseline.size < 16 or recent.size < 4:
            return RegimeShiftReport(
                shifted=False,
                mean_z_score=0.0,
                spread_ratio=1.0,
                baseline_count=int(baseline.size),
                recent_count=int(recent.size),
            )
        baseline_std = max(float(baseline.std(ddof=1)), 1e-12)
        recent_std = max(float(recent.std(ddof=1)), 1e-12)
        standard_error = np.sqrt(baseline_std ** 2 / baseline.size + recent_std ** 2 / recent.size)
        z_score = float((recent.mean() - baseline.mean()) / max(standard_error, 1e-12))
        spread_ratio = recent_std / baseline_std
        shifted = abs(z_score) > self._z_threshold or spread_ratio > self._spread_ratio_threshold
        return RegimeShiftReport(
            shifted=shifted,
            mean_z_score=z_score,
            spread_ratio=spread_ratio,
            baseline_count=int(baseline.size),
            recent_count=int(recent.size),
        )

    def reset_baseline(self) -> None:
        """Discard the baseline (after the caller has re-learned its distribution)."""
        self._baseline.clear()
        self._recent.clear()


class AdaptiveOffsetLearner:
    """Offset-distribution learner that re-learns after a regime shift.

    Wraps an :class:`~repro.sync.learner.OffsetDistributionLearner` and a
    :class:`RegimeShiftDetector`: when a shift is detected, the stale learner
    window is dropped so the next estimate reflects only post-shift
    conditions.
    """

    def __init__(
        self,
        learner: Optional[OffsetDistributionLearner] = None,
        detector: Optional[RegimeShiftDetector] = None,
    ) -> None:
        self._learner = learner if learner is not None else OffsetDistributionLearner(window=1024)
        self._detector = detector if detector is not None else RegimeShiftDetector()
        self._relearn_count = 0

    @property
    def relearn_count(self) -> int:
        """How many times the learner window was discarded due to a shift."""
        return self._relearn_count

    @property
    def learner(self) -> OffsetDistributionLearner:
        """The wrapped learner."""
        return self._learner

    def observe_offset(self, offset: float) -> RegimeShiftReport:
        """Feed one offset observation through detection and learning."""
        report = self._detector.observe(offset)
        if report.shifted:
            self._relearn_count += 1
            self._learner = OffsetDistributionLearner(
                window=self._learner.window, method=self._learner.method
            )
            self._detector.reset_baseline()
        self._learner.observe_offset(offset)
        return report

    def can_estimate(self, minimum: int = 8) -> bool:
        """True once the post-shift window has enough observations."""
        return self._learner.can_estimate(minimum)

    def estimate(self) -> DistributionEstimate:
        """Current distribution estimate (post-shift observations only)."""
        return self._learner.estimate()
