"""Clock-synchronization substrate.

Clients learn their clock-offset distributions by accumulating
synchronization probes (paper §1 footnote 1, §3.3, §5).  This package
provides the probe exchange (NTP-style four-timestamp round trips), offset
estimators operating on probes, and a per-client learner that turns a window
of probe-derived offsets into a :class:`~repro.distributions.estimation.DistributionEstimate`.
"""

from repro.sync.probe import ProbeExchange, SyncProbe
from repro.sync.estimator import OffsetEstimator, offset_from_probe
from repro.sync.learner import OffsetDistributionLearner
from repro.sync.refresh import DistributionRefreshLoop, RefreshStats
from repro.sync.protocol import SyncProtocol, SyncSession
from repro.sync.drift import (
    AdaptiveOffsetLearner,
    DriftFit,
    DriftTracker,
    RegimeShiftDetector,
    RegimeShiftReport,
)

__all__ = [
    "SyncProbe",
    "ProbeExchange",
    "OffsetEstimator",
    "offset_from_probe",
    "OffsetDistributionLearner",
    "DistributionRefreshLoop",
    "RefreshStats",
    "SyncProtocol",
    "SyncSession",
    "DriftTracker",
    "DriftFit",
    "RegimeShiftDetector",
    "RegimeShiftReport",
    "AdaptiveOffsetLearner",
]
