"""A periodic best-effort clock-synchronization protocol.

The protocol orchestrates :class:`~repro.sync.probe.ProbeExchange` rounds for
every client (paper Figure 1: "best effort synchronization"), feeds probe
offsets into each client's :class:`~repro.sync.learner.OffsetDistributionLearner`
and periodically publishes updated distribution estimates to the sequencer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.clocks.local import LocalClock
from repro.distributions.estimation import DistributionEstimate
from repro.network.link import DelayModel
from repro.simulation.event_loop import EventLoop
from repro.sync.learner import OffsetDistributionLearner
from repro.sync.probe import ProbeExchange

PublishCallback = Callable[[str, DistributionEstimate], None]


@dataclass
class SyncSession:
    """Probe exchange plus learner for one client."""

    client_id: str
    exchange: ProbeExchange
    learner: OffsetDistributionLearner

    def run_round(self, probes_per_round: int) -> None:
        """Run one synchronization round (a burst of probes)."""
        for probe in self.exchange.run_probes(probes_per_round):
            self.learner.observe_probe(probe)

    def latest_estimate(self) -> DistributionEstimate:
        """Current distribution estimate from the learner."""
        return self.learner.estimate()


class SyncProtocol:
    """Round-based synchronization across a set of clients."""

    def __init__(
        self,
        loop: EventLoop,
        probes_per_round: int = 16,
        round_interval: float = 1.0,
        publish: Optional[PublishCallback] = None,
    ) -> None:
        if probes_per_round < 1:
            raise ValueError("probes_per_round must be at least 1")
        if round_interval <= 0:
            raise ValueError("round_interval must be positive")
        self._loop = loop
        self._probes_per_round = int(probes_per_round)
        self._round_interval = float(round_interval)
        self._publish = publish
        self._sessions: Dict[str, SyncSession] = {}
        self._rounds_completed = 0
        self._running = False

    @property
    def sessions(self) -> Dict[str, SyncSession]:
        """Mapping from client id to its synchronization session."""
        return dict(self._sessions)

    @property
    def rounds_completed(self) -> int:
        """Number of completed synchronization rounds."""
        return self._rounds_completed

    def add_client(
        self,
        client_id: str,
        clock: LocalClock,
        forward_delay: DelayModel,
        backward_delay: DelayModel,
        rng: np.random.Generator,
        learner: Optional[OffsetDistributionLearner] = None,
    ) -> SyncSession:
        """Register a client for synchronization."""
        if client_id in self._sessions:
            raise ValueError(f"duplicate sync client {client_id!r}")
        exchange = ProbeExchange(self._loop, client_id, clock, forward_delay, backward_delay, rng)
        session = SyncSession(
            client_id=client_id,
            exchange=exchange,
            learner=learner if learner is not None else OffsetDistributionLearner(),
        )
        self._sessions[client_id] = session
        return session

    def run_round(self) -> None:
        """Run one probing round for every registered client."""
        for session in self._sessions.values():
            session.run_round(self._probes_per_round)
        self._rounds_completed += 1
        if self._publish is not None:
            for client_id, session in self._sessions.items():
                if session.learner.can_estimate():
                    self._publish(client_id, session.latest_estimate())

    def run_rounds(self, count: int) -> None:
        """Run ``count`` rounds back to back."""
        for _ in range(count):
            self.run_round()

    def start(self) -> None:
        """Start periodic rounds on the event loop."""
        if self._running:
            return
        self._running = True
        self._loop.schedule_after(self._round_interval, self._tick)

    def stop(self) -> None:
        """Stop periodic rounds."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.run_round()
        self._loop.schedule_after(self._round_interval, self._tick)

    def estimates(self) -> Dict[str, DistributionEstimate]:
        """Latest distribution estimate for every client that has enough probes."""
        result: Dict[str, DistributionEstimate] = {}
        for client_id, session in self._sessions.items():
            if session.learner.can_estimate():
                result[client_id] = session.latest_estimate()
        return result
