"""Probe-driven live refresh of client offset distributions (paper §3.3, §5).

The paper's learned pipeline is a loop: clients exchange sync probes, a
:class:`~repro.sync.learner.OffsetDistributionLearner` turns the probe window
into a distribution estimate, and the estimate is shipped to the running
sequencer, which re-prices every pending precedence involving that client.
:class:`DistributionRefreshLoop` packages that loop for any *target* exposing
``update_client_distribution(client_id, distribution)`` — a single
:class:`~repro.core.online.OnlineTommySequencer` or a whole
:class:`~repro.cluster.sharded.ShardedSequencer`.

Every ``refresh_every`` probes per client (once ``min_observations`` retained
observations exist) the loop re-estimates and pushes the refreshed
distribution; :meth:`DistributionRefreshLoop.refresh_all` forces a sweep,
e.g. at a synchronization epoch boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.distributions.estimation import DistributionEstimate
from repro.obs.telemetry import Telemetry, resolve
from repro.sync.estimator import OffsetEstimator
from repro.sync.learner import OffsetDistributionLearner
from repro.sync.probe import SyncProbe


@dataclass
class RefreshStats:
    """Counters describing one refresh loop's activity."""

    probes_observed: int = 0
    refreshes: int = 0
    skipped: int = 0
    unknown_clients: int = 0
    per_client_refreshes: Dict[str, int] = field(default_factory=dict)
    last_family: Dict[str, str] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """Flat view for result metadata and experiment rows."""
        return {
            "probes_observed": self.probes_observed,
            "refreshes": self.refreshes,
            "skipped": self.skipped,
            "unknown_clients": self.unknown_clients,
            "clients_refreshed": len(self.per_client_refreshes),
        }


class DistributionRefreshLoop:
    """Feeds sync-probe streams through per-client learners into a sequencer.

    Parameters
    ----------
    target:
        Object exposing ``update_client_distribution(client_id, distribution)``.
    method:
        Learner estimation method (``"empirical"`` by default — the engine's
        pair-table kernel serves those estimates vectorized; ``"gaussian"``
        and ``"auto"`` also work).
    window:
        Per-client probe window retained by each learner.
    refresh_every:
        Push a refreshed estimate after this many new probes per client.
    min_observations:
        Minimum retained (RTT-filtered) observations before estimating.
    estimator:
        Optional shared probe filter, e.g.
        ``OffsetEstimator(best_fraction=0.5)`` to discard high-RTT probes.
    """

    def __init__(
        self,
        target,
        method: str = "empirical",
        window: int = 256,
        refresh_every: int = 32,
        min_observations: int = 8,
        estimator: Optional[OffsetEstimator] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if refresh_every < 1:
            raise ValueError(f"refresh_every must be at least 1, got {refresh_every!r}")
        if min_observations < 2:
            raise ValueError(f"min_observations must be at least 2, got {min_observations!r}")
        if not hasattr(target, "update_client_distribution"):
            raise TypeError(
                f"target {type(target).__name__} does not expose update_client_distribution"
            )
        self._target = target
        self._method = method
        self._window = int(window)
        self._refresh_every = int(refresh_every)
        self._min_observations = int(min_observations)
        self._estimator = estimator
        self._learners: Dict[str, OffsetDistributionLearner] = {}
        self._since_refresh: Dict[str, int] = {}
        self.stats = RefreshStats()
        self._obs = resolve(telemetry)
        # sim-time anchor for refresh trace events: the sequencer-side
        # transmit time (t3, true time) of the client's most recent probe
        self._last_probe_time: Dict[str, float] = {}
        if self._obs.enabled:
            self._obs.attach("refresh", self.stats)

    # ------------------------------------------------------------- properties
    @property
    def target(self):
        """The sequencer (or cluster) receiving refreshed distributions."""
        return self._target

    @property
    def client_ids(self):
        """Clients with at least one observed probe."""
        return tuple(sorted(self._learners))

    def learner_for(self, client_id: str) -> OffsetDistributionLearner:
        """The (lazily created) learner accumulating ``client_id``'s probes."""
        learner = self._learners.get(client_id)
        if learner is None:
            learner = OffsetDistributionLearner(
                window=self._window, method=self._method, estimator=self._estimator
            )
            self._learners[client_id] = learner
            self._since_refresh[client_id] = 0
        return learner

    # ----------------------------------------------------------------- intake
    def observe_probe(self, probe: SyncProbe) -> Optional[DistributionEstimate]:
        """Account one probe; refresh the client when its budget is due.

        Returns the pushed estimate when a refresh happened, else ``None``.
        """
        learner = self.learner_for(probe.client_id)
        learner.observe_probe(probe)
        self.stats.probes_observed += 1
        if self._obs.enabled:
            self._last_probe_time[probe.client_id] = probe.t3
            self._obs.count("refresh.probes_observed")
        self._since_refresh[probe.client_id] += 1
        if self._since_refresh[probe.client_id] >= self._refresh_every:
            return self.refresh_client(probe.client_id)
        return None

    def refresh_client(self, client_id: str) -> Optional[DistributionEstimate]:
        """Re-estimate ``client_id`` now and push the estimate to the target.

        Returns ``None`` (and counts a skip) when the learner does not yet
        hold ``min_observations`` retained observations.
        """
        learner = self.learner_for(client_id)
        self._since_refresh[client_id] = 0
        if not learner.can_estimate(self._min_observations):
            self.stats.skipped += 1
            return None
        estimate = learner.estimate()
        try:
            self._target.update_client_distribution(client_id, estimate.distribution)
        except KeyError:
            # probes can precede the client's registration at the sequencer
            # (sync traffic starts before application traffic); keep learning
            # and retry at the next refresh budget rather than aborting the
            # run from inside an event-loop callback
            self.stats.unknown_clients += 1
            return None
        self.stats.refreshes += 1
        self.stats.per_client_refreshes[client_id] = (
            self.stats.per_client_refreshes.get(client_id, 0) + 1
        )
        self.stats.last_family[client_id] = estimate.family
        if self._obs.enabled:
            self._obs.count("refresh.refreshes")
            self._obs.event(
                "refresh",
                "distribution_refresh",
                self._last_probe_time.get(client_id, 0.0),
                client_id=client_id,
                family=estimate.family,
            )
        return estimate

    def refresh_all(self) -> Dict[str, DistributionEstimate]:
        """Force a refresh sweep over every client with observed probes."""
        pushed: Dict[str, DistributionEstimate] = {}
        for client_id in sorted(self._learners):
            estimate = self.refresh_client(client_id)
            if estimate is not None:
                pushed[client_id] = estimate
        return pushed
