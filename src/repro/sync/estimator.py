"""Offset estimators operating on synchronization probes."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.sync.probe import SyncProbe


def offset_from_probe(probe: SyncProbe) -> float:
    """Client-offset estimate (theta) derived from a single probe."""
    return probe.client_offset_estimate


class OffsetEstimator:
    """Turns a stream of probes into per-probe offset observations.

    Optional filtering keeps only the probes with the smallest round-trip
    delays (a standard NTP/Huygens-style trick: small-RTT probes carry the
    least queueing-induced asymmetry and therefore the cleanest offsets).
    """

    def __init__(self, best_fraction: float = 1.0) -> None:
        if not 0.0 < best_fraction <= 1.0:
            raise ValueError(f"best_fraction must be in (0, 1], got {best_fraction!r}")
        self._best_fraction = float(best_fraction)

    @property
    def best_fraction(self) -> float:
        """Fraction of lowest-RTT probes retained."""
        return self._best_fraction

    def retained(self, probes: Sequence[SyncProbe]) -> List[SyncProbe]:
        """The subset of ``probes`` the RTT filter keeps (lowest round trips).

        The filter is only meaningful across a *window* of probes: applied to
        a single probe it always keeps it, so callers accumulating probes one
        at a time must filter the window, not each arrival.
        """
        probes = list(probes)
        if not probes or self._best_fraction >= 1.0:
            return probes
        keep = max(1, int(round(len(probes) * self._best_fraction)))
        return sorted(probes, key=lambda probe: probe.round_trip_delay)[:keep]

    def offsets(self, probes: Sequence[SyncProbe]) -> np.ndarray:
        """Offset observations (theta estimates) from the retained ``probes``."""
        probes = self.retained(probes)
        if not probes:
            return np.empty(0)
        return np.asarray([offset_from_probe(probe) for probe in probes], dtype=float)

    def estimate_offset(self, probes: Sequence[SyncProbe]) -> float:
        """Point estimate of the current offset (median of retained probes)."""
        offsets = self.offsets(probes)
        if offsets.size == 0:
            raise ValueError("cannot estimate an offset from zero probes")
        return float(np.median(offsets))

    def estimate_uncertainty(self, probes: Sequence[SyncProbe]) -> float:
        """Spread (standard deviation) of retained probe offsets."""
        offsets = self.offsets(probes)
        if offsets.size < 2:
            return 0.0
        return float(offsets.std(ddof=1))
