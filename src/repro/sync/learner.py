"""Per-client offset-distribution learner.

Implements the "clients learn their own f_theta" mechanism of paper §3.3/§5:
a sliding window of probe-derived offset observations is turned into a
distribution estimate that the client ships to the sequencer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.distributions.estimation import (
    DistributionEstimate,
    estimate_empirical,
    estimate_gaussian,
    fit_best_distribution,
)
from repro.sync.estimator import OffsetEstimator
from repro.sync.probe import SyncProbe


class OffsetDistributionLearner:
    """Accumulates probe offsets and produces distribution estimates.

    Parameters
    ----------
    window:
        Maximum number of offset observations retained (older observations
        are discarded, keeping the estimate responsive to changing
        synchronization conditions).
    method:
        ``"gaussian"`` fits a Gaussian, ``"empirical"`` a histogram,
        ``"auto"`` performs AIC model selection across parametric families.
    estimator:
        Optional probe filter / offset extractor.
    """

    def __init__(
        self,
        window: int = 1024,
        method: str = "gaussian",
        estimator: Optional[OffsetEstimator] = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window!r}")
        if method not in {"gaussian", "empirical", "auto"}:
            raise ValueError(f"unknown learning method {method!r}")
        self._window = int(window)
        self._method = method
        self._estimator = estimator if estimator is not None else OffsetEstimator()
        self._offsets: Deque[float] = deque(maxlen=self._window)
        self._probe_count = 0

    @property
    def window(self) -> int:
        """Maximum number of observations retained."""
        return self._window

    @property
    def observation_count(self) -> int:
        """Number of offset observations currently in the window."""
        return len(self._offsets)

    @property
    def probe_count(self) -> int:
        """Total number of probes ever observed."""
        return self._probe_count

    @property
    def method(self) -> str:
        """The configured estimation method."""
        return self._method

    def observe_probe(self, probe: SyncProbe) -> None:
        """Add one probe's offset observation to the window."""
        self._probe_count += 1
        offsets = self._estimator.offsets([probe])
        if offsets.size:
            self._offsets.append(float(offsets[0]))

    def observe_offset(self, offset: float) -> None:
        """Add a raw offset observation directly (e.g. from another protocol)."""
        self._probe_count += 1
        self._offsets.append(float(offset))

    def offsets(self) -> np.ndarray:
        """The current window of offset observations."""
        return np.asarray(self._offsets, dtype=float)

    def can_estimate(self, minimum: int = 8) -> bool:
        """True once at least ``minimum`` observations are available."""
        return len(self._offsets) >= minimum

    def estimate(self) -> DistributionEstimate:
        """Produce a distribution estimate from the current window."""
        samples = self.offsets()
        if samples.size < 2:
            raise ValueError("need at least 2 offset observations to estimate a distribution")
        if self._method == "gaussian":
            return estimate_gaussian(samples)
        if self._method == "empirical":
            return estimate_empirical(samples)
        return fit_best_distribution(samples)
