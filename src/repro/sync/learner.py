"""Per-client offset-distribution learner.

Implements the "clients learn their own f_theta" mechanism of paper §3.3/§5:
a sliding window of probe-derived offset observations is turned into a
distribution estimate that the client ships to the sequencer.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

import numpy as np

from repro.distributions.estimation import (
    DistributionEstimate,
    estimate_empirical,
    estimate_gaussian,
    fit_best_distribution,
)
from repro.sync.estimator import OffsetEstimator
from repro.sync.probe import SyncProbe


class OffsetDistributionLearner:
    """Accumulates probe offsets and produces distribution estimates.

    Parameters
    ----------
    window:
        Maximum number of offset observations retained (older observations
        are discarded, keeping the estimate responsive to changing
        synchronization conditions).
    method:
        ``"gaussian"`` fits a Gaussian, ``"empirical"`` a histogram,
        ``"auto"`` performs AIC model selection across parametric families.
    estimator:
        Optional probe filter / offset extractor.
    """

    def __init__(
        self,
        window: int = 1024,
        method: str = "gaussian",
        estimator: Optional[OffsetEstimator] = None,
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be at least 2, got {window!r}")
        if method not in {"gaussian", "empirical", "auto"}:
            raise ValueError(f"unknown learning method {method!r}")
        self._window = int(window)
        self._method = method
        self._estimator = estimator if estimator is not None else OffsetEstimator()
        self._probes: Deque[SyncProbe] = deque(maxlen=self._window)
        self._raw_offsets: Deque[float] = deque(maxlen=self._window)
        self._probe_count = 0

    @property
    def window(self) -> int:
        """Maximum number of observations retained."""
        return self._window

    @property
    def observation_count(self) -> int:
        """Number of offset observations the estimate would currently use.

        Probe-derived observations are counted *after* the estimator's RTT
        filter, so a ``best_fraction`` below 1 reduces the count.
        """
        return int(self.offsets().size)

    @property
    def probe_count(self) -> int:
        """Total number of probes ever observed."""
        return self._probe_count

    @property
    def method(self) -> str:
        """The configured estimation method."""
        return self._method

    def observe_probe(self, probe: SyncProbe) -> None:
        """Add one probe to the observation window.

        The estimator's RTT filter (``best_fraction``) is applied across the
        whole retained probe window at read time.  An earlier revision
        filtered each probe in isolation (``offsets([probe])``) — which
        always keeps the single probe and therefore silently disabled
        low-RTT filtering altogether.
        """
        self._probe_count += 1
        self._probes.append(probe)

    def observe_offset(self, offset: float) -> None:
        """Add a raw offset observation directly (e.g. from another protocol).

        Raw offsets bypass the probe RTT filter (there is no round-trip delay
        to filter on) and occupy their own ``window``-bounded deque.
        """
        self._probe_count += 1
        self._raw_offsets.append(float(offset))

    def offsets(self) -> np.ndarray:
        """The current window of offset observations (RTT-filtered probes first)."""
        parts = []
        if self._probes:
            parts.append(self._estimator.offsets(list(self._probes)))
        if self._raw_offsets:
            parts.append(np.asarray(self._raw_offsets, dtype=float))
        if not parts:
            return np.empty(0)
        return np.concatenate(parts)

    def can_estimate(self, minimum: int = 8) -> bool:
        """True once at least ``minimum`` (retained) observations are available."""
        return self.observation_count >= minimum

    def estimate(self) -> DistributionEstimate:
        """Produce a distribution estimate from the current window."""
        samples = self.offsets()
        if samples.size < 2:
            raise ValueError("need at least 2 offset observations to estimate a distribution")
        if self._method == "gaussian":
            return estimate_gaussian(samples)
        if self._method == "empirical":
            return estimate_empirical(samples)
        return fit_best_distribution(samples)
