"""Length-prefixed, versioned frame protocol for the live ingestion edge.

Wire format — one frame is::

    +----------------+----------+----------------------+
    | length (4B BE) | type(1B) | JSON payload (UTF-8) |
    +----------------+----------+----------------------+

``length`` counts the type byte plus the payload, so an empty-payload frame
has length 1.  Frames are versioned at the session level: the first frame on
a connection must be ``HELLO`` carrying ``{"version": PROTOCOL_VERSION}``;
any other version is rejected with a typed ``ERROR`` frame (code
``unsupported-version``) and the connection is closed — the server never
hangs on bad input, it answers then disconnects.

Message identity on the wire: ``MSG`` frames carry the client-assigned
``id`` (mirroring :attr:`repro.network.message.TimestampedMessage.message_id`)
as the exactly-once idempotency token.  The edge reconstructs messages with
that id, so (a) a retransmitted frame maps to the same ``(client_id, id)``
key and is rejected by the intake gate, and (b) a frozen workload replayed
over sockets reproduces the exact same merge fingerprint as the in-process
backends (``RuntimeOutcome.fingerprint()`` keys on ``message.key``).

:class:`FrameDecoder` is an incremental, transport-free byte feeder so the
edge cases (truncated frames, oversized length prefixes, unknown types) are
testable without sockets.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.network.message import Heartbeat, TimestampedMessage

#: Current protocol version; HELLO frames carrying anything else are refused.
PROTOCOL_VERSION = 1

#: Hard per-frame ceiling.  A length prefix above this is unrecoverable (the
#: stream cannot be resynchronised) so the connection is failed with an
#: ``oversized-frame`` error.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")

# ------------------------------------------------------------- frame types
HELLO = 0x01
HELLO_ACK = 0x02
MSG = 0x03
MSG_ACK = 0x04
HEARTBEAT = 0x05
HEARTBEAT_ACK = 0x06
CLOSE = 0x07
CLOSE_ACK = 0x08
ERROR = 0x7F

FRAME_NAMES: Dict[int, str] = {
    HELLO: "HELLO",
    HELLO_ACK: "HELLO_ACK",
    MSG: "MSG",
    MSG_ACK: "MSG_ACK",
    HEARTBEAT: "HEARTBEAT",
    HEARTBEAT_ACK: "HEARTBEAT_ACK",
    CLOSE: "CLOSE",
    CLOSE_ACK: "CLOSE_ACK",
    ERROR: "ERROR",
}

# -------------------------------------------------------------- error codes
ERR_UNSUPPORTED_VERSION = "unsupported-version"
ERR_DUPLICATE_HELLO = "duplicate-hello"
ERR_HELLO_REQUIRED = "hello-required"
ERR_OVERSIZED_FRAME = "oversized-frame"
ERR_MALFORMED_FRAME = "malformed-frame"
ERR_UNKNOWN_TYPE = "unknown-frame-type"
ERR_UNKNOWN_CLIENT = "unknown-client"
ERR_BAD_PAYLOAD = "bad-payload"


class ProtocolError(Exception):
    """A framing violation that must fail the connection with a typed error.

    ``code`` is one of the ``ERR_*`` constants and is echoed to the peer in
    an :data:`ERROR` frame before the transport is closed.
    """

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


@dataclass(frozen=True)
class Frame:
    """One decoded frame: a type code plus its JSON payload."""

    type: int
    payload: Dict[str, object]

    @property
    def name(self) -> str:
        """Human-readable frame-type name (``"MSG"``, ``"HELLO"``, ...)."""
        return FRAME_NAMES.get(self.type, f"0x{self.type:02x}")


def encode_frame(frame_type: int, payload: Optional[Dict[str, object]] = None) -> bytes:
    """Serialise one frame to wire bytes (length prefix + type + JSON)."""
    body = json.dumps(payload or {}, separators=(",", ":")).encode("utf-8")
    if 1 + len(body) > MAX_FRAME_BYTES:
        raise ProtocolError(ERR_OVERSIZED_FRAME, f"frame body {len(body)}B exceeds cap")
    return _LENGTH.pack(1 + len(body)) + bytes([frame_type]) + body


class FrameDecoder:
    """Incremental frame decoder over an unframed byte stream.

    Feed arbitrary chunks with :meth:`feed`; complete frames come back in
    order.  A truncated frame is simply *not yet* a frame — the decoder
    buffers and waits.  A length prefix above :data:`MAX_FRAME_BYTES` (or a
    frame body that fails to parse) raises :class:`ProtocolError`, after
    which the stream is poisoned and must be closed.
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = int(max_frame_bytes)
        self._poisoned = False

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet decodable into a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Frame]:
        """Absorb ``data`` and return every frame it completes."""
        if self._poisoned:
            raise ProtocolError(ERR_MALFORMED_FRAME, "decoder already failed")
        self._buffer.extend(data)
        frames: List[Frame] = []
        while True:
            frame = self._try_decode()
            if frame is None:
                return frames
            frames.append(frame)

    def _try_decode(self) -> Optional[Frame]:
        if len(self._buffer) < _LENGTH.size:
            return None
        (length,) = _LENGTH.unpack_from(self._buffer)
        if length > self._max:
            self._poisoned = True
            raise ProtocolError(
                ERR_OVERSIZED_FRAME, f"length prefix {length}B exceeds {self._max}B cap"
            )
        if length < 1:
            self._poisoned = True
            raise ProtocolError(ERR_MALFORMED_FRAME, "zero-length frame")
        if len(self._buffer) < _LENGTH.size + length:
            return None  # truncated: wait for more bytes
        body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
        del self._buffer[: _LENGTH.size + length]
        frame_type = body[0]
        try:
            payload = json.loads(body[1:].decode("utf-8")) if len(body) > 1 else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._poisoned = True
            raise ProtocolError(ERR_MALFORMED_FRAME, f"bad JSON payload: {exc}") from exc
        if not isinstance(payload, dict):
            self._poisoned = True
            raise ProtocolError(ERR_MALFORMED_FRAME, "payload must be a JSON object")
        return Frame(type=frame_type, payload=payload)


# ---------------------------------------------------------- payload helpers
def hello_payload(source: str, version: int = PROTOCOL_VERSION) -> Dict[str, object]:
    """HELLO payload: session version + a source name for watermark tracking."""
    return {"version": int(version), "source": str(source)}


def message_payload(message: TimestampedMessage) -> Dict[str, object]:
    """MSG payload for one message.

    ``vtime`` is the message's virtual (true) send time — the live
    dispatcher's watermark currency; ``id`` is the exactly-once idempotency
    token (see module docstring).
    """
    return {
        "client": message.client_id,
        "ts": message.timestamp,
        "vtime": message.true_time,
        "seq": int(message.sequence_number),
        "id": int(message.message_id),
        "data": message.payload,
    }


def heartbeat_payload(heartbeat: Heartbeat) -> Dict[str, object]:
    """HEARTBEAT payload mirroring :class:`~repro.network.message.Heartbeat`."""
    return {
        "client": heartbeat.client_id,
        "ts": heartbeat.timestamp,
        "vtime": heartbeat.true_time,
        "seq": int(heartbeat.sequence_number),
    }


def _require(payload: Dict[str, object], fields: Tuple[str, ...]) -> Iterator[object]:
    for name in fields:
        if name not in payload:
            raise ProtocolError(ERR_BAD_PAYLOAD, f"missing field {name!r}")
        yield payload[name]


def parse_message(payload: Dict[str, object]) -> Tuple[TimestampedMessage, float]:
    """Reconstruct a :class:`TimestampedMessage` (and its vtime) from a MSG payload.

    The wire ``id`` becomes ``message_id`` verbatim so socket-delivered
    traffic is bitwise-identical (fingerprint-wise) to in-process delivery.
    """
    client, ts, vtime, seq, mid = _require(payload, ("client", "ts", "vtime", "seq", "id"))
    try:
        message = TimestampedMessage(
            client_id=str(client),
            timestamp=float(ts),  # type: ignore[arg-type]
            true_time=float(vtime),  # type: ignore[arg-type]
            payload=payload.get("data"),
            message_id=int(mid),  # type: ignore[arg-type]
            sequence_number=int(seq),  # type: ignore[arg-type]
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(ERR_BAD_PAYLOAD, f"bad MSG field: {exc}") from exc
    return message, message.true_time


def parse_heartbeat(payload: Dict[str, object]) -> Tuple[Heartbeat, float]:
    """Reconstruct a :class:`Heartbeat` (and its vtime) from a HEARTBEAT payload."""
    client, ts, vtime = _require(payload, ("client", "ts", "vtime"))
    try:
        heartbeat = Heartbeat(
            client_id=str(client),
            timestamp=float(ts),  # type: ignore[arg-type]
            true_time=float(vtime),  # type: ignore[arg-type]
            sequence_number=int(payload.get("seq", 0)),  # type: ignore[arg-type]
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(ERR_BAD_PAYLOAD, f"bad HEARTBEAT field: {exc}") from exc
    return heartbeat, heartbeat.true_time


def error_frame(code: str, detail: str = "") -> bytes:
    """Encode a typed ERROR frame (the reject-don't-hang contract)."""
    return encode_frame(ERROR, {"code": code, "detail": detail})
