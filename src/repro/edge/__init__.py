"""Live ingestion edge: the socket front door for the cluster runtimes.

Contract: the edge accepts framed client connections
(:mod:`repro.edge.protocol` — length-prefixed, versioned HELLO/MSG/
HEARTBEAT/CLOSE with typed ERROR rejections), admits each message through
the same exactly-once gate the cluster uses
(:class:`~repro.cluster.intake.IntakeDedupeGate`, decision acked back to
the sender), and applies backpressure through one bounded intake queue —
when it fills, handlers stop reading their sockets and TCP flow control
pushes back (:class:`~repro.edge.server.EdgeServer`).

Parity guarantee: a frozen workload streamed through real loopback sockets
into either live runtime (``sim`` or ``procs``) yields a merge fingerprint
bitwise equal to :class:`~repro.runtime.sim.SimBackend` on the same
workload (``tests/edge/test_live_parity.py``) — the edge cannot silently
reorder admitted traffic.
"""

from repro.edge.client import EdgeClient, EdgeError, replay_workload
from repro.edge.protocol import (
    FRAME_NAMES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    Frame,
    FrameDecoder,
    ProtocolError,
    encode_frame,
)
from repro.edge.server import EdgeServer

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "FRAME_NAMES",
    "Frame",
    "FrameDecoder",
    "ProtocolError",
    "encode_frame",
    "EdgeServer",
    "EdgeClient",
    "EdgeError",
    "replay_workload",
]
