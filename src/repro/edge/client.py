"""In-repo asyncio client for the ingestion edge (tests + examples).

:class:`EdgeClient` opens one connection, performs the versioned HELLO
handshake, and streams messages/heartbeats with either per-message acks
(:meth:`send_message`) or pipelined writes with deferred ack collection
(:meth:`stream` — the firehose mode the backpressure tests use).  A typed
ERROR frame from the server raises :class:`EdgeError` carrying the error
code, so misbehaving-client tests can assert the exact rejection.

:func:`replay_workload` drives a frozen
:class:`~repro.runtime.base.ClusterWorkload` through real sockets — clients
split round-robin across N connections, each connection sending its clients'
messages in ``true_time`` order (the per-source FIFO watermark contract) —
which is the loopback half of the bitwise parity test.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Iterable, List, Optional, Sequence

from repro.edge import protocol
from repro.edge.protocol import Frame, FrameDecoder, ProtocolError
from repro.network.message import Heartbeat, TimestampedMessage
from repro.runtime.base import ClusterWorkload


class EdgeError(Exception):
    """The server answered with a typed ERROR frame."""

    def __init__(self, code: str, detail: str = "") -> None:
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail


class EdgeClient:
    """One framed connection to an :class:`~repro.edge.server.EdgeServer`."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._decoder = FrameDecoder()
        self._pending: List[Frame] = []

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        source: str = "",
        version: int = protocol.PROTOCOL_VERSION,
        handshake: bool = True,
    ) -> "EdgeClient":
        """Open a connection and (by default) complete the HELLO handshake."""
        reader, writer = await asyncio.open_connection(host, port)
        client = cls(reader, writer)
        if handshake:
            await client.hello(source=source, version=version)
        return client

    # -------------------------------------------------------------- raw frames
    def write_frame(self, frame_type: int, payload: Optional[Dict[str, object]] = None) -> None:
        """Queue one encoded frame on the transport (no flush)."""
        self._writer.write(protocol.encode_frame(frame_type, payload))

    def write_bytes(self, data: bytes) -> None:
        """Queue raw bytes — lets tests send truncated/corrupt frames."""
        self._writer.write(data)

    async def drain(self) -> None:
        """Flush the transport write buffer."""
        await self._writer.drain()

    async def read_frame(self, timeout: float = 5.0) -> Frame:
        """Read the next frame; raises :class:`EdgeError` on ERROR frames."""
        while not self._pending:
            data = await asyncio.wait_for(self._reader.read(65536), timeout=timeout)
            if not data:
                raise ConnectionResetError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))
        frame = self._pending.pop(0)
        if frame.type == protocol.ERROR:
            raise EdgeError(
                str(frame.payload.get("code", "unknown")),
                str(frame.payload.get("detail", "")),
            )
        return frame

    async def _expect(self, frame_type: int, timeout: float = 5.0) -> Frame:
        frame = await self.read_frame(timeout=timeout)
        if frame.type != frame_type:
            raise ProtocolError(
                protocol.ERR_UNKNOWN_TYPE,
                f"expected {protocol.FRAME_NAMES.get(frame_type)}, got {frame.name}",
            )
        return frame

    # --------------------------------------------------------------- handshake
    async def hello(self, source: str = "", version: int = protocol.PROTOCOL_VERSION) -> Frame:
        """Send HELLO and await HELLO_ACK (raises :class:`EdgeError` on refusal)."""
        self.write_frame(protocol.HELLO, protocol.hello_payload(source, version=version))
        await self.drain()
        return await self._expect(protocol.HELLO_ACK)

    # ----------------------------------------------------------------- traffic
    async def send_message(self, message: TimestampedMessage) -> Dict[str, object]:
        """Send one MSG and await its MSG_ACK payload (``{"id", "admitted"}``)."""
        self.write_frame(protocol.MSG, protocol.message_payload(message))
        await self.drain()
        return dict((await self._expect(protocol.MSG_ACK)).payload)

    async def send_heartbeat(self, heartbeat: Heartbeat) -> Dict[str, object]:
        """Send one HEARTBEAT and await its ack."""
        self.write_frame(protocol.HEARTBEAT, protocol.heartbeat_payload(heartbeat))
        await self.drain()
        return dict((await self._expect(protocol.HEARTBEAT_ACK)).payload)

    async def stream(
        self, messages: Iterable[TimestampedMessage], collect_acks: bool = True
    ) -> List[Dict[str, object]]:
        """Pipeline a burst: write every MSG first, then collect the acks.

        This is the firehose mode — nothing throttles the writes except the
        server's bounded intake queue (and TCP flow control once the server
        stops reading).
        """
        count = 0
        for message in messages:
            self.write_frame(protocol.MSG, protocol.message_payload(message))
            count += 1
        await self.drain()
        if not collect_acks:
            return []
        acks = []
        for _ in range(count):
            acks.append(dict((await self._expect(protocol.MSG_ACK)).payload))
        return acks

    async def close(self, wait_ack: bool = True) -> Optional[Frame]:
        """Send CLOSE, optionally await CLOSE_ACK, and tear down the socket."""
        ack: Optional[Frame] = None
        try:
            self.write_frame(protocol.CLOSE)
            await self.drain()
            if wait_ack:
                ack = await self._expect(protocol.CLOSE_ACK)
        finally:
            await self.abort()
        return ack

    async def abort(self) -> None:
        """Drop the connection without the CLOSE exchange (mid-stream death)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass


async def replay_workload(
    host: str,
    port: int,
    workload: ClusterWorkload,
    connections: int = 2,
    client_ids: Optional[Sequence[str]] = None,
) -> int:
    """Stream a frozen workload through real sockets; returns admitted count.

    Clients are split round-robin (sorted order) over ``connections``
    sockets; each socket sends its clients' messages in ``true_time`` order,
    honouring the per-source FIFO watermark contract, then closes cleanly.
    Connections interleave their sends message-by-message so the server
    genuinely multiplexes sources (rather than draining one connection at a
    time).
    """
    ids = list(client_ids) if client_ids is not None else list(workload.client_ids)
    connections = max(1, min(connections, len(ids) or 1))
    owner = {client: index % connections for index, client in enumerate(sorted(ids))}
    slices: List[List[TimestampedMessage]] = [[] for _ in range(connections)]
    for message in workload.messages_by_true_time():
        slices[owner[message.client_id]].append(message)

    clients = [
        await EdgeClient.connect(host, port, source=f"replay-{index}")
        for index in range(connections)
    ]
    admitted = 0
    try:
        cursors = [0] * connections
        # interleave by virtual time across connections: always send the
        # globally-earliest unsent message next, on its owner connection
        while True:
            best = -1
            for index in range(connections):
                if cursors[index] < len(slices[index]):
                    candidate = slices[index][cursors[index]]
                    if best < 0 or candidate.true_time < slices[best][cursors[best]].true_time:
                        best = index
            if best < 0:
                break
            ack = await clients[best].send_message(slices[best][cursors[best]])
            cursors[best] += 1
            if ack.get("admitted"):
                admitted += 1
    finally:
        for client in clients:
            try:
                await client.close()
            except (ConnectionResetError, EdgeError, OSError):
                await client.abort()
    return admitted


__all__ = ["EdgeClient", "EdgeError", "replay_workload"]
