"""Asyncio socket front door feeding the live dispatcher.

:class:`EdgeServer` accepts client connections on a TCP socket, speaks the
length-prefixed frame protocol (:mod:`repro.edge.protocol`), and feeds
admitted traffic into a :class:`~repro.runtime.live.LiveDispatcher`.

Backpressure: every decoded MSG/HEARTBEAT goes through one *bounded* global
intake queue (``max_inflight`` items).  When the queue is full the
connection handler blocks on ``await queue.put(...)`` — it stops reading its
socket, the kernel receive buffer fills, and TCP flow control pushes back to
the client.  The queue depth is exported as the ``edge.intake_depth`` gauge
(with ``edge.intake_depth_peak`` as its high-water mark), so "bounded" is an
observable invariant: the peak can never exceed ``max_inflight``.  Each
stall is counted in ``edge.backpressure_stalls``.

Disconnect policy (documented contract, tested in ``tests/edge``): messages
*admitted* before a mid-stream disconnect are still sequenced — admission is
a promise — while the dead connection's watermark hold is released so the
rest of the cluster keeps advancing.  Protocol violations are answered with
a typed ERROR frame and a close; the server never hangs on bad input.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.edge import protocol
from repro.edge.protocol import Frame, FrameDecoder, ProtocolError
from repro.obs.telemetry import Telemetry, resolve
from repro.runtime.base import RuntimeOutcome
from repro.runtime.live import LiveDispatcher


class _Connection:
    """Per-connection state: source identity, writer, handshake progress."""

    def __init__(self, index: int, writer: asyncio.StreamWriter) -> None:
        self.source = f"conn-{index}"
        self.writer = writer
        self.hello_seen = False
        self.peer = writer.get_extra_info("peername")
        self.closed = asyncio.Event()
        self.messages = 0


class EdgeServer:
    """Live ingestion edge: socket accept loop + bounded intake pump."""

    def __init__(
        self,
        dispatcher: LiveDispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        max_inflight: int = 64,
        telemetry: Optional[Telemetry] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        read_chunk: int = 65536,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        self._dispatcher = dispatcher
        self._host = host
        self._port = port
        self._max_inflight = int(max_inflight)
        self._max_frame_bytes = int(max_frame_bytes)
        self._read_chunk = int(read_chunk)
        self._obs = resolve(telemetry)
        self._started_at = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._intake: Optional[asyncio.Queue] = None
        self._pump_task: Optional[asyncio.Task] = None
        self._handlers: Dict[int, asyncio.Task] = {}
        self._next_conn = 0
        self._open_conns = 0
        self._served_conns = 0
        self._depth_peak = 0
        self._finished: Optional[RuntimeOutcome] = None

    # ------------------------------------------------------------- properties
    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        """The listening host."""
        return self._host

    @property
    def max_inflight(self) -> int:
        """Bound of the global intake queue (the backpressure knob)."""
        return self._max_inflight

    @property
    def intake_depth_peak(self) -> int:
        """High-water mark of the intake queue depth (never > ``max_inflight``)."""
        return self._depth_peak

    @property
    def dispatcher(self) -> LiveDispatcher:
        """The live dispatcher this edge feeds."""
        return self._dispatcher

    # -------------------------------------------------------------- telemetry
    def _event(self, name: str, **details: object) -> None:
        if self._obs.enabled:
            self._obs.event("edge", name, time.monotonic() - self._started_at, **details)

    def _count(self, name: str, value: int = 1) -> None:
        if self._obs.enabled:
            self._obs.count(name, value)

    def _gauge_depth(self) -> None:
        depth = self._intake.qsize() if self._intake is not None else 0
        if depth > self._depth_peak:
            self._depth_peak = depth
        if self._obs.enabled:
            self._obs.gauge("edge.intake_depth", depth)
            self._obs.gauge("edge.intake_depth_peak", self._depth_peak)

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> "EdgeServer":
        """Bind the listening socket and start the intake pump."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._intake = asyncio.Queue(maxsize=self._max_inflight)
        self._pump_task = asyncio.create_task(self._pump())
        self._server = await asyncio.start_server(self._handle, self._host, self._port)
        self._event("listening", host=self._host, port=self.port)
        return self

    async def __aenter__(self) -> "EdgeServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def finish(self) -> RuntimeOutcome:
        """Stop accepting, drain the intake queue, finalize the dispatcher.

        Waits for every open connection to wind down, pushes the remaining
        queue contents through the dispatcher, then runs the drain protocol
        (closing heartbeats + final flush) and returns the
        :class:`RuntimeOutcome`.  Idempotent.
        """
        if self._finished is not None:
            return self._finished
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._handlers:
            await asyncio.gather(*self._handlers.values(), return_exceptions=True)
        if self._intake is not None:
            await self._intake.join()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        # the dispatcher drain can do real sequencing work (procs workers,
        # closing heartbeats) — keep the event loop responsive
        self._finished = await asyncio.to_thread(self._dispatcher.finish)
        return self._finished

    async def serve_until_idle(self, idle_grace: float = 0.2) -> RuntimeOutcome:
        """Serve until every connection (at least one) has come and gone.

        Returns the finalized outcome once the server has been idle — no
        open connections, empty intake queue — for ``idle_grace`` seconds
        after serving at least one connection.  This is the ``repro serve``
        CLI's default lifecycle (and what the loopback example drives).
        """
        while True:
            await asyncio.sleep(idle_grace)
            if (
                self._served_conns > 0
                and self._open_conns == 0
                and (self._intake is None or self._intake.empty())
            ):
                return await self.finish()

    async def close(self) -> None:
        """Tear the server down without finalizing a result (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._handlers.values()):
            task.cancel()
        if self._handlers:
            await asyncio.gather(*self._handlers.values(), return_exceptions=True)
        self._handlers.clear()
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        self._dispatcher.close()

    # ------------------------------------------------------------- accept path
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        conn = _Connection(self._next_conn, writer)
        self._next_conn += 1
        self._open_conns += 1
        self._served_conns += 1
        self._count("edge.connections")
        if self._obs.enabled:
            self._obs.gauge("edge.connections_open", self._open_conns)
        self._event("connection_open", source=conn.source, peer=str(conn.peer))
        self._handlers[id(conn)] = asyncio.current_task()
        decoder = FrameDecoder(self._max_frame_bytes)
        clean_close = False
        try:
            while True:
                data = await reader.read(self._read_chunk)
                if not data:
                    break  # EOF: mid-stream disconnect (or post-CLOSE teardown)
                try:
                    frames = decoder.feed(data)
                except ProtocolError as exc:
                    await self._fail(conn, exc.code, exc.detail)
                    return
                for frame in frames:
                    self._count("edge.frames")
                    done = await self._on_frame(conn, frame)
                    if done:
                        clean_close = True
                        return
        except (ConnectionResetError, asyncio.IncompleteReadError):
            pass
        finally:
            self._handlers.pop(id(conn), None)
            self._open_conns -= 1
            if self._obs.enabled:
                self._obs.gauge("edge.connections_open", self._open_conns)
            if conn.hello_seen and not clean_close:
                # mid-stream disconnect: admitted messages stay sequenced,
                # but the dead source must stop holding the watermark
                self._count("edge.disconnects")
                await self._enqueue(("close", conn, False))
            self._event(
                "connection_close",
                source=conn.source,
                clean=clean_close,
                messages=conn.messages,
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _on_frame(self, conn: _Connection, frame: Frame) -> bool:
        """Process one frame; returns ``True`` when the connection is done."""
        if frame.type == protocol.HELLO:
            if conn.hello_seen:
                await self._fail(conn, protocol.ERR_DUPLICATE_HELLO, "HELLO already received")
                return True
            version = frame.payload.get("version")
            if version != protocol.PROTOCOL_VERSION:
                await self._fail(
                    conn,
                    protocol.ERR_UNSUPPORTED_VERSION,
                    f"server speaks version {protocol.PROTOCOL_VERSION}, client sent {version!r}",
                )
                return True
            conn.hello_seen = True
            requested = frame.payload.get("source")
            if isinstance(requested, str) and requested:
                conn.source = requested
            self._dispatcher.open_source(conn.source)
            self._event("hello", source=conn.source)
            conn.writer.write(
                protocol.encode_frame(
                    protocol.HELLO_ACK,
                    {"version": protocol.PROTOCOL_VERSION, "source": conn.source},
                )
            )
            await conn.writer.drain()
            return False
        if not conn.hello_seen:
            await self._fail(
                conn, protocol.ERR_HELLO_REQUIRED, f"{frame.name} before HELLO"
            )
            return True
        if frame.type == protocol.MSG:
            try:
                message, _ = protocol.parse_message(frame.payload)
            except ProtocolError as exc:
                await self._fail(conn, exc.code, exc.detail)
                return True
            if message.client_id not in self._dispatcher.spec.client_distributions:
                await self._fail(
                    conn,
                    protocol.ERR_UNKNOWN_CLIENT,
                    f"client {message.client_id!r} is not provisioned",
                )
                return True
            conn.messages += 1
            await self._enqueue(("msg", conn, message))
            return False
        if frame.type == protocol.HEARTBEAT:
            try:
                heartbeat, _ = protocol.parse_heartbeat(frame.payload)
            except ProtocolError as exc:
                await self._fail(conn, exc.code, exc.detail)
                return True
            await self._enqueue(("hb", conn, heartbeat))
            return False
        if frame.type == protocol.CLOSE:
            await self._enqueue(("close", conn, True))
            await conn.closed.wait()
            return True
        await self._fail(
            conn, protocol.ERR_UNKNOWN_TYPE, f"unexpected frame type {frame.name}"
        )
        return True

    async def _enqueue(self, item) -> None:
        """Bounded put: a full queue suspends this handler (TCP pushback)."""
        assert self._intake is not None
        try:
            self._intake.put_nowait(item)
        except asyncio.QueueFull:
            self._count("edge.backpressure_stalls")
            self._event("backpressure_stall", depth=self._intake.qsize())
            await self._intake.put(item)
        self._gauge_depth()

    async def _fail(self, conn: _Connection, code: str, detail: str) -> None:
        """Reject-don't-hang: typed ERROR frame, then close the transport."""
        self._count("edge.protocol_errors")
        self._event("protocol_error", source=conn.source, code=code)
        try:
            conn.writer.write(protocol.error_frame(code, detail))
            await conn.writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        if conn.hello_seen:
            await self._enqueue(("close", conn, False))

    # -------------------------------------------------------------- intake pump
    async def _pump(self) -> None:
        """Single consumer of the intake queue: gate, route, ack, advance.

        Drains the queue in bursts — one ``dispatcher.advance()`` per burst
        instead of per message — mirroring the burst-coalescing intake the
        sim transport uses.
        """
        assert self._intake is not None
        while True:
            batch = [await self._intake.get()]
            while True:
                try:
                    batch.append(self._intake.get_nowait())
                except asyncio.QueueEmpty:
                    break
            for kind, conn, payload in batch:
                if kind == "msg":
                    admitted = self._dispatcher.submit(conn.source, payload)
                    self._count(
                        "edge.messages_admitted" if admitted else "edge.duplicates_rejected"
                    )
                    self._ack(
                        conn,
                        protocol.MSG_ACK,
                        {"id": int(payload.message_id), "admitted": admitted},
                    )
                elif kind == "hb":
                    self._dispatcher.submit_heartbeat(conn.source, payload)
                    self._count("edge.heartbeats")
                    self._ack(conn, protocol.HEARTBEAT_ACK, {"vtime": payload.true_time})
                elif kind == "close":
                    self._dispatcher.close_source(conn.source)
                    if payload:  # clean CLOSE: acknowledge before teardown
                        self._ack(conn, protocol.CLOSE_ACK, {"messages": conn.messages})
                    conn.closed.set()
            self._dispatcher.advance()
            for _ in batch:
                self._intake.task_done()
            self._gauge_depth()

    def _ack(self, conn: _Connection, frame_type: int, payload: Dict[str, object]) -> None:
        try:
            conn.writer.write(protocol.encode_frame(frame_type, payload))
            self._count("edge.acks")
        except (ConnectionResetError, BrokenPipeError, OSError, RuntimeError):
            pass  # receiver gone; admitted traffic is still sequenced


__all__ = ["EdgeServer"]
