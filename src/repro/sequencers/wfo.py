"""WaitsForOne (WFO) sequencer.

The WFO sequencer (paper Figure 2, employed by Onyx [20]) waits for at least
one message from every client and iteratively releases the message with the
smallest timestamp.  It is fair exactly when clock-synchronization errors are
negligible relative to the time resolution of interest; the offline
equivalent on a complete message set is a sort by reported timestamp with one
message per batch.

The class also provides :meth:`release_order`, a faithful step-by-step replay
of the online algorithm given per-client arrival streams, used by tests and
the baseline benchmarks.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Sequence

from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult, batches_from_groups


class WaitsForOneSequencer(OfflineSequencer):
    """Sort-by-timestamp sequencer assuming negligible clock error."""

    name = "wfo"

    def sequence(self, messages: Sequence[TimestampedMessage]) -> SequencingResult:
        messages = self._validate(messages)
        ordered = sorted(
            messages,
            key=lambda message: (message.timestamp, message.client_id, message.message_id),
        )
        groups = [[message] for message in ordered]
        return SequencingResult(
            batches=batches_from_groups(groups), metadata={"sequencer": self.name}
        )

    def release_order(
        self, per_client_streams: Dict[str, Sequence[TimestampedMessage]]
    ) -> List[TimestampedMessage]:
        """Replay the online WFO algorithm on per-client in-order streams.

        At every step the algorithm looks at the head of every non-empty
        client queue; if every client queue is non-empty (or exhausted
        clients are ignored once their stream ends), the head with the
        smallest timestamp is released.  This mirrors the "wait for one
        message from all clients, then release the smallest" loop.
        """
        queues: Dict[str, Deque[TimestampedMessage]] = {
            client: deque(stream) for client, stream in per_client_streams.items()
        }
        for client, stream in per_client_streams.items():
            timestamps = [message.timestamp for message in stream]
            if timestamps != sorted(timestamps):
                raise ValueError(f"client {client!r} stream is not in timestamp order")
        released: List[TimestampedMessage] = []
        while any(queues.values()):
            heads = [queue[0] for queue in queues.values() if queue]
            winner = min(
                heads,
                key=lambda message: (message.timestamp, message.client_id, message.message_id),
            )
            queues[winner.client_id].popleft()
            released.append(winner)
        return released
