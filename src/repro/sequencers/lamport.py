"""Lamport logical clocks, vector clocks and the happened-before relation.

The paper frames Tommy against Lamport's classical ordering machinery: the
happened-before relation orders causally related events and leaves concurrent
events unordered, which is exactly the gap the likely-happened-before
relation targets.  This module provides the classical machinery so examples
and tests can demonstrate that gap concretely: messages generated
independently by different clients are concurrent under happened-before, yet
Tommy orders (most of) them.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Tuple

_EVENT_COUNTER = itertools.count()


@dataclass(frozen=True)
class LamportEvent:
    """An event stamped with a Lamport time and its causal history."""

    process: str
    lamport_time: int
    vector: Tuple[Tuple[str, int], ...]
    event_id: int = field(default_factory=lambda: next(_EVENT_COUNTER))
    label: str = ""

    def vector_clock(self) -> Dict[str, int]:
        """The event's vector clock as a dictionary."""
        return dict(self.vector)


class LamportClock:
    """A per-process Lamport logical clock with an attached vector clock."""

    def __init__(self, process: str) -> None:
        if not process:
            raise ValueError("process name must be non-empty")
        self._process = process
        self._time = 0
        self._vector: Dict[str, int] = {process: 0}

    @property
    def process(self) -> str:
        """Name of the process owning this clock."""
        return self._process

    @property
    def time(self) -> int:
        """Current Lamport time."""
        return self._time

    def vector(self) -> Dict[str, int]:
        """Copy of the current vector clock."""
        return dict(self._vector)

    def _snapshot(self, label: str) -> LamportEvent:
        return LamportEvent(
            process=self._process,
            lamport_time=self._time,
            vector=tuple(sorted(self._vector.items())),
            label=label,
        )

    def tick(self, label: str = "") -> LamportEvent:
        """Record a local event."""
        self._time += 1
        self._vector[self._process] = self._vector.get(self._process, 0) + 1
        return self._snapshot(label)

    def send(self, label: str = "") -> LamportEvent:
        """Record a message-send event; the returned event is the 'message'."""
        return self.tick(label)

    def receive(self, message: LamportEvent, label: str = "") -> LamportEvent:
        """Record reception of ``message``, merging clocks per Lamport's rule."""
        self._time = max(self._time, message.lamport_time) + 1
        for process, counter in message.vector:
            self._vector[process] = max(self._vector.get(process, 0), counter)
        self._vector[self._process] = self._vector.get(self._process, 0) + 1
        return self._snapshot(label)


class VectorClock:
    """Comparison helpers for vector timestamps."""

    @staticmethod
    def dominates(a: Dict[str, int], b: Dict[str, int]) -> bool:
        """True when ``a`` >= ``b`` component-wise and ``a`` != ``b``."""
        keys = set(a) | set(b)
        at_least = all(a.get(key, 0) >= b.get(key, 0) for key in keys)
        strictly = any(a.get(key, 0) > b.get(key, 0) for key in keys)
        return at_least and strictly

    @staticmethod
    def concurrent(a: Dict[str, int], b: Dict[str, int]) -> bool:
        """True when neither vector dominates the other."""
        return not VectorClock.dominates(a, b) and not VectorClock.dominates(b, a) and a != b


def happened_before(a: LamportEvent, b: LamportEvent) -> bool:
    """Lamport's happened-before: true iff ``a``'s causal history precedes ``b``'s.

    Implemented with vector clocks, which characterise happened-before
    exactly: ``a -> b`` iff ``V(a) < V(b)`` component-wise (with at least one
    strict inequality).
    """
    return VectorClock.dominates(b.vector_clock(), a.vector_clock())


def concurrent(a: LamportEvent, b: LamportEvent) -> bool:
    """True when neither event happened before the other."""
    return not happened_before(a, b) and not happened_before(b, a)


def causal_order(
    events: Iterable[LamportEvent],
) -> Tuple[Tuple[LamportEvent, ...], FrozenSet[Tuple[int, int]]]:
    """Partial order summary for a set of events.

    Returns the events sorted by Lamport time (a linearisation consistent
    with happened-before) and the set of ordered pairs ``(a.event_id,
    b.event_id)`` for which ``a -> b`` holds.
    """
    events = list(events)
    ordered_pairs = set()
    for a in events:
        for b in events:
            if a is not b and happened_before(a, b):
                ordered_pairs.add((a.event_id, b.event_id))
    linearised = tuple(
        sorted(events, key=lambda event: (event.lamport_time, event.process, event.event_id))
    )
    return linearised, frozenset(ordered_pairs)
