"""Spanner-TrueTime baseline sequencer (paper §4).

Each message is assigned an uncertainty interval ``[T - k*sigma, T + k*sigma]``
(``k = 3`` in the paper) using its client's offset standard deviation.
Messages whose intervals overlap cannot be ordered confidently and are given
the same rank; the ranks follow the interval order.  Overlap is resolved by
transitive clustering: the batch's interval is the union of its members'
intervals, and a new message joins the batch when its interval overlaps that
union.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.clocks.truetime import TrueTimeInterval
from repro.distributions.base import OffsetDistribution
from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult, batches_from_groups


class TrueTimeSequencer(OfflineSequencer):
    """Conservative interval-overlap sequencer."""

    name = "truetime"

    def __init__(
        self,
        client_distributions: Dict[str, OffsetDistribution],
        sigma_multiplier: float = 3.0,
    ) -> None:
        if sigma_multiplier <= 0:
            raise ValueError(f"sigma_multiplier must be positive, got {sigma_multiplier!r}")
        self._distributions = dict(client_distributions)
        self._multiplier = float(sigma_multiplier)

    @property
    def sigma_multiplier(self) -> float:
        """Half-width of the interval in units of the client's offset std."""
        return self._multiplier

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Add or update a client's offset distribution."""
        self._distributions[client_id] = distribution

    def interval_for(self, message: TimestampedMessage) -> TrueTimeInterval:
        """The uncertainty interval assigned to ``message``."""
        if message.client_id not in self._distributions:
            raise KeyError(f"no offset distribution registered for client {message.client_id!r}")
        distribution = self._distributions[message.client_id]
        center = message.timestamp - distribution.mean
        half_width = self._multiplier * distribution.std
        return TrueTimeInterval(center - half_width, center + half_width)

    def sequence(self, messages: Sequence[TimestampedMessage]) -> SequencingResult:
        messages = self._validate(messages)
        if not messages:
            return SequencingResult(batches=(), metadata={"sequencer": self.name})

        annotated = [(self.interval_for(message), message) for message in messages]
        annotated.sort(key=lambda pair: (pair[0].earliest, pair[0].latest, pair[1].message_id))

        groups = []
        current_group = [annotated[0][1]]
        current_latest = annotated[0][0].latest
        for interval, message in annotated[1:]:
            if interval.earliest <= current_latest:
                current_group.append(message)
                current_latest = max(current_latest, interval.latest)
            else:
                groups.append(current_group)
                current_group = [message]
                current_latest = interval.latest
        groups.append(current_group)
        return SequencingResult(
            batches=batches_from_groups(groups),
            metadata={"sequencer": self.name, "sigma_multiplier": self._multiplier},
        )
