"""FIFO sequencer: ranks messages by observation (arrival) order."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult, batches_from_groups


class FifoSequencer(OfflineSequencer):
    """Ranks messages in the order the sequencer observed them.

    This is the classical sequencer the paper contrasts against (§1): ranking
    is "assigned based on the order in which it is observed by a
    server/sequencer".  When given an explicit ``arrival_order`` (message
    keys in arrival order) that order is used; otherwise the input sequence
    order is taken to be the arrival order.
    """

    name = "fifo"

    def __init__(self, batch_size: int = 1) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be at least 1, got {batch_size!r}")
        self._batch_size = int(batch_size)

    @property
    def batch_size(self) -> int:
        """Number of consecutive arrivals grouped into one rank."""
        return self._batch_size

    def sequence(
        self,
        messages: Sequence[TimestampedMessage],
        arrival_order: Optional[Sequence[TimestampedMessage]] = None,
    ) -> SequencingResult:
        messages = self._validate(messages)
        ordered = list(arrival_order) if arrival_order is not None else messages
        if {m.key for m in ordered} != {m.key for m in messages}:
            raise ValueError("arrival_order must contain exactly the messages being sequenced")
        groups = [
            ordered[start : start + self._batch_size]
            for start in range(0, len(ordered), self._batch_size)
        ]
        return SequencingResult(
            batches=batches_from_groups(groups), metadata={"sequencer": self.name}
        )
