"""Common interface and result type for offline sequencers."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.network.message import SequencedBatch, TimestampedMessage


@dataclass(frozen=True)
class SequencingResult:
    """The output of a sequencer: a totally ordered list of batches.

    Batches are a fair *partial* order on messages (messages inside the same
    batch are deliberately left unordered) and a total order on batches
    (paper §3.4).
    """

    batches: Tuple[SequencedBatch, ...]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for index, batch in enumerate(self.batches):
            if batch.rank != index:
                raise ValueError(
                    f"batch at position {index} has rank {batch.rank}; "
                    "ranks must be 0..n-1 in order"
                )

    @property
    def message_count(self) -> int:
        """Total number of messages across all batches."""
        return sum(batch.size for batch in self.batches)

    @property
    def batch_count(self) -> int:
        """Number of batches."""
        return len(self.batches)

    @property
    def batch_sizes(self) -> Tuple[int, ...]:
        """Sizes of the batches in rank order."""
        return tuple(batch.size for batch in self.batches)

    def rank_of(self) -> Dict[Tuple[str, int], int]:
        """Mapping from message key to its batch rank."""
        ranks: Dict[Tuple[str, int], int] = {}
        for batch in self.batches:
            for message in batch.messages:
                ranks[message.key] = batch.rank
        return ranks

    def messages_in_rank_order(self) -> List[TimestampedMessage]:
        """All messages flattened in batch-rank order (within-batch order arbitrary)."""
        flattened: List[TimestampedMessage] = []
        for batch in self.batches:
            flattened.extend(batch.messages)
        return flattened


def batches_from_groups(
    groups: Sequence[Sequence[TimestampedMessage]],
) -> Tuple[SequencedBatch, ...]:
    """Build rank-assigned batches from an ordered sequence of message groups."""
    batches = []
    for rank, group in enumerate(groups):
        batches.append(SequencedBatch(rank=rank, messages=tuple(group)))
    return tuple(batches)


class OfflineSequencer(abc.ABC):
    """A sequencer operating on a complete set of already-received messages."""

    #: short identifier used in experiment reports
    name: str = "abstract"

    @abc.abstractmethod
    def sequence(self, messages: Sequence[TimestampedMessage]) -> SequencingResult:
        """Order ``messages`` into ranked batches."""

    def _validate(self, messages: Sequence[TimestampedMessage]) -> List[TimestampedMessage]:
        messages = list(messages)
        seen = set()
        for message in messages:
            if message.key in seen:
                raise ValueError(f"duplicate message key {message.key!r}")
            seen.add(message.key)
        return messages
