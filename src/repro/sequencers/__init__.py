"""Baseline sequencers.

These are the comparison points the paper discusses:

* :class:`FifoSequencer` — ranks by arrival order (the classical sequencer,
  Figure 4's equal-wire setting makes this fair, a cloud network does not),
* :class:`WaitsForOneSequencer` — WFO (Figure 2, used by Onyx): waits for
  one message from every client, repeatedly releasing the smallest
  timestamp; fair only when clock error is negligible,
* :class:`TrueTimeSequencer` — the Spanner-TrueTime emulation used as the
  baseline in the paper's evaluation (§4): interval ``[T-3sigma, T+3sigma]``
  per message, overlapping intervals share a rank,
* :class:`OracleSequencer` — the omniscient observer (ground truth),
* :mod:`repro.sequencers.lamport` — Lamport logical clocks and the classical
  happened-before relation, for the paper's "Classical Context".
"""

from repro.sequencers.base import OfflineSequencer, SequencingResult
from repro.sequencers.fifo import FifoSequencer
from repro.sequencers.wfo import WaitsForOneSequencer
from repro.sequencers.truetime import TrueTimeSequencer
from repro.sequencers.oracle import OracleSequencer
from repro.sequencers.lamport import LamportClock, LamportEvent, VectorClock, happened_before

__all__ = [
    "OfflineSequencer",
    "SequencingResult",
    "FifoSequencer",
    "WaitsForOneSequencer",
    "TrueTimeSequencer",
    "OracleSequencer",
    "LamportClock",
    "LamportEvent",
    "VectorClock",
    "happened_before",
]
