"""Omniscient-observer (oracle) sequencer.

Definition 1 in the paper compares every sequencer against an omniscient
observer with a global clock of infinite resolution.  The oracle sequencer
orders messages by their ground-truth generation times and is used only by
the evaluation harness (to compute Rank Agreement Scores and pairwise
accuracy), never by a simulated participant.
"""

from __future__ import annotations

from typing import Sequence

from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult, batches_from_groups


class OracleSequencer(OfflineSequencer):
    """Orders messages by true generation time, one message per batch."""

    name = "oracle"

    def sequence(self, messages: Sequence[TimestampedMessage]) -> SequencingResult:
        messages = self._validate(messages)
        for message in messages:
            if message.true_time is None:
                raise ValueError(
                    f"message {message.key!r} has no ground-truth time; the oracle cannot order it"
                )
        ordered = sorted(messages, key=lambda message: (message.true_time, message.message_id))
        groups = [[message] for message in ordered]
        return SequencingResult(
            batches=batches_from_groups(groups), metadata={"sequencer": self.name}
        )
