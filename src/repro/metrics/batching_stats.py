"""Batch-size statistics for a sequencing result.

The paper argues that fairness improves with smaller batches ("Ideally, each
batch should be of size 1", §3.4), so batch-size statistics are the natural
companion to RAS when sweeping the confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class BatchStatistics:
    """Summary of the batch-size distribution of one sequencing result."""

    batch_count: int
    message_count: int
    mean_size: float
    max_size: int
    singleton_fraction: float
    size_p50: float
    size_p95: float

    @property
    def batches_per_message(self) -> float:
        """Granularity measure in ``(0, 1]``: 1.0 means a total order."""
        if self.message_count == 0:
            return 0.0
        return self.batch_count / self.message_count


def batch_statistics(result: SequencingResult) -> BatchStatistics:
    """Compute :class:`BatchStatistics` for ``result``."""
    sizes = np.asarray(result.batch_sizes, dtype=float)
    if sizes.size == 0:
        return BatchStatistics(
            batch_count=0,
            message_count=0,
            mean_size=0.0,
            max_size=0,
            singleton_fraction=0.0,
            size_p50=0.0,
            size_p95=0.0,
        )
    return BatchStatistics(
        batch_count=int(sizes.size),
        message_count=int(sizes.sum()),
        mean_size=float(sizes.mean()),
        max_size=int(sizes.max()),
        singleton_fraction=float(np.mean(sizes == 1)),
        size_p50=float(np.percentile(sizes, 50)),
        size_p95=float(np.percentile(sizes, 95)),
    )
