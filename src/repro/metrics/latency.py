"""Emission-latency summaries for online sequencing experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class LatencySummary:
    """Distributional summary of emission latencies (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> dict:
        """Plain-dict view for report tables."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize_latencies(latencies: Sequence[float]) -> LatencySummary:
    """Summarise a collection of latencies; zeros when the collection is empty."""
    values = np.asarray(list(latencies), dtype=float)
    if values.size == 0:
        return LatencySummary(count=0, mean=0.0, p50=0.0, p95=0.0, p99=0.0, maximum=0.0)
    return LatencySummary(
        count=int(values.size),
        mean=float(values.mean()),
        p50=float(np.percentile(values, 50)),
        p95=float(np.percentile(values, 95)),
        p99=float(np.percentile(values, 99)),
        maximum=float(values.max()),
    )
