"""Per-client fairness accounting.

A sequencer can look accurate in aggregate while systematically disadvantaging
one client (for instance the client with the noisiest clock).  These metrics
break the pairwise outcome down per client: how often each client's messages
were ranked too late (disadvantaged) or too early (advantaged) relative to
the omniscient order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class ClientFairness:
    """Pair-level outcome counts attributed to one client."""

    client_id: str
    advantaged_pairs: int
    disadvantaged_pairs: int
    correct_pairs: int
    indifferent_pairs: int

    @property
    def total_pairs(self) -> int:
        """All comparable pairs involving this client."""
        return (
            self.advantaged_pairs
            + self.disadvantaged_pairs
            + self.correct_pairs
            + self.indifferent_pairs
        )

    @property
    def disadvantage_rate(self) -> float:
        """Fraction of this client's pairs in which it was ranked unfairly late."""
        if self.total_pairs == 0:
            return 0.0
        return self.disadvantaged_pairs / self.total_pairs

    @property
    def advantage_rate(self) -> float:
        """Fraction of this client's pairs in which it was ranked unfairly early."""
        if self.total_pairs == 0:
            return 0.0
        return self.advantaged_pairs / self.total_pairs


def per_client_fairness(
    result: SequencingResult, messages: Sequence[TimestampedMessage]
) -> Dict[str, ClientFairness]:
    """Per-client breakdown of pairwise ordering outcomes.

    For a pair ``(a, b)`` with ``a`` truly earlier: if the sequencer ranks
    ``a`` after ``b``, client of ``a`` is *disadvantaged* and client of ``b``
    is *advantaged*; a correct ranking credits both clients' ``correct``
    count; a shared batch credits both clients' ``indifferent`` count.
    """
    ranks = result.rank_of()
    counts = {
        client: {"advantaged": 0, "disadvantaged": 0, "correct": 0, "indifferent": 0}
        for client in {message.client_id for message in messages}
    }
    messages = list(messages)
    for i in range(len(messages)):
        for j in range(i + 1, len(messages)):
            a, b = messages[i], messages[j]
            if a.true_time is None or b.true_time is None:
                raise ValueError("all messages need ground-truth times for fairness accounting")
            if a.true_time == b.true_time:
                continue
            earlier, later = (a, b) if a.true_time < b.true_time else (b, a)
            rank_earlier = ranks[earlier.key]
            rank_later = ranks[later.key]
            if rank_earlier == rank_later:
                counts[earlier.client_id]["indifferent"] += 1
                counts[later.client_id]["indifferent"] += 1
            elif rank_earlier < rank_later:
                counts[earlier.client_id]["correct"] += 1
                counts[later.client_id]["correct"] += 1
            else:
                counts[earlier.client_id]["disadvantaged"] += 1
                counts[later.client_id]["advantaged"] += 1

    return {
        client: ClientFairness(
            client_id=client,
            advantaged_pairs=c["advantaged"],
            disadvantaged_pairs=c["disadvantaged"],
            correct_pairs=c["correct"],
            indifferent_pairs=c["indifferent"],
        )
        for client, c in counts.items()
    }
