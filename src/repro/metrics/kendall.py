"""Kendall-tau distance between a sequencing result and the ground truth.

Unlike RAS, Kendall-tau needs a total order, so messages inside a batch are
compared by treating same-rank pairs as half-discordant (the standard
tie-adjusted treatment): this penalises huge indifferent batches, offering a
complementary view to RAS's neutral score of 0 for indifference.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult


def kendall_tau_distance(true_order: Sequence[float], ranks: Sequence[float]) -> float:
    """Normalised Kendall distance in ``[0, 1]`` with ties counted as 0.5.

    ``true_order[k]`` and ``ranks[k]`` describe item ``k``; the distance is
    the fraction of comparable pairs (distinct true values) that are ordered
    discordantly, with rank ties contributing half a discordance.
    """
    if len(true_order) != len(ranks):
        raise ValueError("true_order and ranks must have the same length")
    n = len(true_order)
    comparable = 0
    discordant = 0.0
    for i in range(n):
        for j in range(i + 1, n):
            if true_order[i] == true_order[j]:
                continue
            comparable += 1
            true_sign = true_order[i] < true_order[j]
            if ranks[i] == ranks[j]:
                discordant += 0.5
            elif (ranks[i] < ranks[j]) != true_sign:
                discordant += 1.0
    if comparable == 0:
        return 0.0
    return discordant / comparable


def kendall_tau_from_result(
    result: SequencingResult, messages: Sequence[TimestampedMessage]
) -> float:
    """Kendall distance of a sequencing result versus ground-truth times."""
    rank_map = result.rank_of()
    true_times: List[float] = []
    ranks: List[float] = []
    for message in messages:
        if message.true_time is None:
            raise ValueError(f"message {message.key!r} has no ground-truth time")
        true_times.append(message.true_time)
        ranks.append(float(rank_map[message.key]))
    return kendall_tau_distance(true_times, ranks)
