"""Fairness and ordering quality metrics.

The headline metric is the paper's Rank Agreement Score (RAS, §4): for every
pair of messages, +1 when the sequencer orders them as the omniscient
observer would, -1 when it inverts them, and 0 when it is indifferent (same
batch).  Supporting metrics: normalised RAS, pairwise accuracy/inversion
rates, Kendall-tau distance against the ground-truth order, batch-size
statistics, per-client fairness summaries and emission-latency summaries for
online sequencing.
"""

from repro.metrics.ras import RankAgreementBreakdown, rank_agreement_score
from repro.metrics.pairwise import PairwiseStats, pairwise_stats
from repro.metrics.kendall import kendall_tau_distance, kendall_tau_from_result
from repro.metrics.batching_stats import BatchStatistics, batch_statistics
from repro.metrics.fairness import ClientFairness, per_client_fairness
from repro.metrics.latency import LatencySummary, summarize_latencies

__all__ = [
    "RankAgreementBreakdown",
    "rank_agreement_score",
    "PairwiseStats",
    "pairwise_stats",
    "kendall_tau_distance",
    "kendall_tau_from_result",
    "BatchStatistics",
    "batch_statistics",
    "ClientFairness",
    "per_client_fairness",
    "LatencySummary",
    "summarize_latencies",
]
