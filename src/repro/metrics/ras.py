"""Rank Agreement Score (RAS), the paper's evaluation metric (§4).

For every unordered pair of messages ``(a, b)`` whose ground-truth generation
times differ:

* **+1** when the sequencer's batch ranks order the pair the same way as the
  ground truth,
* **-1** when the sequencer inverts the pair,
* **0** when the sequencer is indifferent (both messages share a batch).

The figure-5 y-axis is the *sum* of the per-pair scores over all pairs; we
also expose a normalised variant (divide by the number of comparable pairs)
so different message counts can be compared on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class RankAgreementBreakdown:
    """Pair-level counts backing a Rank Agreement Score."""

    correct_pairs: int
    incorrect_pairs: int
    indifferent_pairs: int

    @property
    def total_pairs(self) -> int:
        """Number of comparable pairs (ground-truth times differ)."""
        return self.correct_pairs + self.incorrect_pairs + self.indifferent_pairs

    @property
    def score(self) -> int:
        """The raw RAS: ``correct - incorrect``."""
        return self.correct_pairs - self.incorrect_pairs

    @property
    def normalized_score(self) -> float:
        """RAS divided by the number of comparable pairs (in ``[-1, 1]``)."""
        if self.total_pairs == 0:
            return 0.0
        return self.score / self.total_pairs

    @property
    def decisiveness(self) -> float:
        """Fraction of pairs the sequencer actually ordered (non-indifferent)."""
        if self.total_pairs == 0:
            return 0.0
        return (self.correct_pairs + self.incorrect_pairs) / self.total_pairs


def rank_agreement_score(
    result: SequencingResult,
    messages: Sequence[TimestampedMessage],
) -> RankAgreementBreakdown:
    """Compute the RAS of ``result`` against the messages' ground-truth times.

    Every message must carry a ``true_time`` and must appear in the result.
    Pairs whose ground-truth times are exactly equal are skipped (the paper
    assumes no two events occur at the same instant).
    """
    ranks = result.rank_of()
    ordered: list[Tuple[float, int]] = []
    for message in messages:
        if message.true_time is None:
            raise ValueError(f"message {message.key!r} has no ground-truth time")
        if message.key not in ranks:
            raise ValueError(f"message {message.key!r} is missing from the sequencing result")
        ordered.append((message.true_time, ranks[message.key]))

    correct = incorrect = indifferent = 0
    n = len(ordered)
    for i in range(n):
        true_i, rank_i = ordered[i]
        for j in range(i + 1, n):
            true_j, rank_j = ordered[j]
            if true_i == true_j:
                continue
            if rank_i == rank_j:
                indifferent += 1
            elif (true_i < true_j) == (rank_i < rank_j):
                correct += 1
            else:
                incorrect += 1
    return RankAgreementBreakdown(
        correct_pairs=correct, incorrect_pairs=incorrect, indifferent_pairs=indifferent
    )
