"""Rank Agreement Score (RAS), the paper's evaluation metric (§4).

For every unordered pair of messages ``(a, b)`` whose ground-truth generation
times differ:

* **+1** when the sequencer's batch ranks order the pair the same way as the
  ground truth,
* **-1** when the sequencer inverts the pair,
* **0** when the sequencer is indifferent (both messages share a batch).

The figure-5 y-axis is the *sum* of the per-pair scores over all pairs; we
also expose a normalised variant (divide by the number of comparable pairs)
so different message counts can be compared on one axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class RankAgreementBreakdown:
    """Pair-level counts backing a Rank Agreement Score."""

    correct_pairs: int
    incorrect_pairs: int
    indifferent_pairs: int

    @property
    def total_pairs(self) -> int:
        """Number of comparable pairs (ground-truth times differ)."""
        return self.correct_pairs + self.incorrect_pairs + self.indifferent_pairs

    @property
    def score(self) -> int:
        """The raw RAS: ``correct - incorrect``."""
        return self.correct_pairs - self.incorrect_pairs

    @property
    def normalized_score(self) -> float:
        """RAS divided by the number of comparable pairs (in ``[-1, 1]``)."""
        if self.total_pairs == 0:
            return 0.0
        return self.score / self.total_pairs

    @property
    def decisiveness(self) -> float:
        """Fraction of pairs the sequencer actually ordered (non-indifferent)."""
        if self.total_pairs == 0:
            return 0.0
        return (self.correct_pairs + self.incorrect_pairs) / self.total_pairs


def _count_inversions(values: np.ndarray) -> int:
    """Number of index pairs ``i < j`` with ``values[i] > values[j]``.

    Bottom-up merge counting: adjacent sorted runs are combined level by
    level; at each combine, the cross-run inversions are one vectorized
    ``searchsorted`` (for each right element, how many left elements strictly
    exceed it).  ``O(n log^2 n)`` with numpy doing all per-element work — the
    per-pair Python loop this replaces was the ``O(n^2)`` hot spot of every
    evaluation at paper scale (500 clients = ~125k pairs per score).
    """
    values = np.asarray(values)
    n = values.size
    inversions = 0
    width = 1
    runs = values.copy()
    while width < n:
        for start in range(0, n - width, 2 * width):
            middle = start + width
            stop = min(middle + width, n)
            left = runs[start:middle]
            right = runs[middle:stop]
            # per right element: left elements > it = len(left) - #(<= it)
            positions = np.searchsorted(left, right, side="right")
            inversions += int(left.size * right.size - positions.sum())
            runs[start:stop] = np.sort(runs[start:stop], kind="stable")
        width *= 2
    return inversions


def _tied_pair_count(values: np.ndarray) -> int:
    """Number of unordered pairs with equal values."""
    _, counts = np.unique(values, return_counts=True)
    return int((counts * (counts - 1) // 2).sum())


def rank_agreement_score(
    result: SequencingResult,
    messages: Sequence[TimestampedMessage],
) -> RankAgreementBreakdown:
    """Compute the RAS of ``result`` against the messages' ground-truth times.

    Every message must carry a ``true_time`` and must appear in the result.
    Pairs whose ground-truth times are exactly equal are skipped (the paper
    assumes no two events occur at the same instant).

    The pair classification is computed by inversion counting rather than a
    per-pair loop: with messages sorted by ``(true_time, rank)``, every
    strict rank inversion is exactly one incorrectly ordered comparable
    pair; indifferent pairs are the rank ties minus the ties that are also
    ground-truth ties; the correct pairs are the comparable remainder.
    """
    ranks = result.rank_of()
    n = len(messages)
    true_times = np.empty(n, dtype=float)
    rank_values = np.empty(n, dtype=np.int64)
    for position, message in enumerate(messages):
        if message.true_time is None:
            raise ValueError(f"message {message.key!r} has no ground-truth time")
        if message.key not in ranks:
            raise ValueError(f"message {message.key!r} is missing from the sequencing result")
        true_times[position] = message.true_time
        rank_values[position] = ranks[message.key]

    if n < 2:
        return RankAgreementBreakdown(correct_pairs=0, incorrect_pairs=0, indifferent_pairs=0)

    # sort by true time, ties by rank ascending: within a ground-truth tie
    # the rank sequence is then non-decreasing and contributes no inversions
    order = np.lexsort((rank_values, true_times))
    sorted_ranks = rank_values[order]

    total_pairs = n * (n - 1) // 2
    equal_true = _tied_pair_count(true_times)
    comparable = total_pairs - equal_true

    # rank ties among comparable pairs are the indifferent ones
    both_tied = _tied_pair_count(
        np.rec.fromarrays((true_times, rank_values), names=("true", "rank"))
    )
    indifferent = _tied_pair_count(rank_values) - both_tied

    incorrect = _count_inversions(sorted_ranks)
    correct = comparable - indifferent - incorrect
    return RankAgreementBreakdown(
        correct_pairs=correct, incorrect_pairs=incorrect, indifferent_pairs=indifferent
    )
