"""Pairwise accuracy / inversion statistics for a sequencing result."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.metrics.ras import rank_agreement_score
from repro.network.message import TimestampedMessage
from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class PairwiseStats:
    """Accuracy-style view of the pair-level outcome."""

    accuracy: float
    inversion_rate: float
    indifference_rate: float
    comparable_pairs: int

    def __post_init__(self) -> None:
        total = self.accuracy + self.inversion_rate + self.indifference_rate
        if self.comparable_pairs > 0 and abs(total - 1.0) > 1e-9:
            raise ValueError("pairwise rates must sum to 1")


def pairwise_stats(
    result: SequencingResult, messages: Sequence[TimestampedMessage]
) -> PairwiseStats:
    """Fraction of comparable pairs ordered correctly / inverted / left indifferent."""
    breakdown = rank_agreement_score(result, messages)
    total = breakdown.total_pairs
    if total == 0:
        return PairwiseStats(
            accuracy=0.0, inversion_rate=0.0, indifference_rate=0.0, comparable_pairs=0
        )
    return PairwiseStats(
        accuracy=breakdown.correct_pairs / total,
        inversion_rate=breakdown.incorrect_pairs / total,
        indifference_rate=breakdown.indifferent_pairs / total,
        comparable_pairs=total,
    )
