"""Numerical convolution utilities for error-difference densities.

The density of the difference ``delta = eps_j - eps_i`` of two independent
clock errors is the convolution of ``f_{eps_j}`` with ``f_{-eps_i}`` (paper
§3.3; the formula is convention-agnostic — it yields the difference of
whatever two densities are passed in).  Two implementations are provided: a
direct quadratic-time convolution (reference/verification path) and the
log-linear FFT path the paper recommends for pairwise computation at the
sequencer.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.distributions.base import DistributionError, OffsetDistribution


def _common_grid(
    dist_i: OffsetDistribution,
    dist_j: OffsetDistribution,
    num_points: int,
    coverage: float,
) -> Tuple[np.ndarray, float]:
    """Build an even grid spanning both supports with a shared step size."""
    lo_i, hi_i = dist_i.support(coverage)
    lo_j, hi_j = dist_j.support(coverage)
    lo = min(lo_i, lo_j)
    hi = max(hi_i, hi_j)
    if hi <= lo:
        hi = lo + 1e-9
    xs = np.linspace(lo, hi, num_points)
    step = xs[1] - xs[0]
    return xs, float(step)


def cross_correlation_grid(
    dist_i: OffsetDistribution,
    dist_j: OffsetDistribution,
    num_points: int = 2048,
    coverage: float = 1.0 - 1e-9,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """Discretise both offset densities on a shared grid.

    Returns ``(xs, pdf_i, pdf_j, step)`` where ``xs`` is the shared grid.
    """
    if num_points < 16:
        raise DistributionError("need at least 16 grid points")
    xs, step = _common_grid(dist_i, dist_j, num_points, coverage)
    return xs, dist_i.pdf(xs), dist_j.pdf(xs), step


def convolve_direct(
    dist_i: OffsetDistribution,
    dist_j: OffsetDistribution,
    num_points: int = 1024,
    coverage: float = 1.0 - 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Density of ``eps_j - eps_i`` by direct O(n^2) correlation.

    Returns ``(delta_grid, density)``.  Used as the ground-truth reference in
    tests and the FFT-vs-direct ablation benchmark.
    """
    xs, pdf_i, pdf_j, step = cross_correlation_grid(dist_i, dist_j, num_points, coverage)
    n = xs.size
    # delta grid spans [xs[0]-xs[-1], xs[-1]-xs[0]] with the same step
    deltas = (np.arange(2 * n - 1) - (n - 1)) * step
    density = np.correlate(pdf_j, pdf_i, mode="full") * step
    mass = np.trapezoid(density, deltas)
    if mass <= 0:
        raise DistributionError("difference density integrated to zero mass")
    return deltas, density / mass


def convolve_fft(
    dist_i: OffsetDistribution,
    dist_j: OffsetDistribution,
    num_points: int = 2048,
    coverage: float = 1.0 - 1e-9,
) -> Tuple[np.ndarray, np.ndarray]:
    """Density of ``eps_j - eps_i`` via FFT (log-linear, paper §3.3).

    Convolution in the time domain is point-wise multiplication in the
    frequency domain; the difference density is the convolution of
    ``f_{eps_j}`` with the reflection of ``f_{eps_i}``.
    """
    xs, pdf_i, pdf_j, step = cross_correlation_grid(dist_i, dist_j, num_points, coverage)
    n = xs.size
    size = 2 * n - 1
    fft_len = int(2 ** np.ceil(np.log2(size)))
    # reflect pdf_i to realise f_{-theta_i}
    spectrum = np.fft.rfft(pdf_j, fft_len) * np.fft.rfft(pdf_i[::-1], fft_len)
    conv = np.fft.irfft(spectrum, fft_len)[:size] * step
    conv = np.clip(conv, 0.0, None)
    deltas = (np.arange(size) - (n - 1)) * step
    mass = np.trapezoid(conv, deltas)
    if mass <= 0:
        raise DistributionError("difference density integrated to zero mass")
    return deltas, conv / mass
