"""Clock-offset distribution models.

Every client in the Tommy system is characterised by the distribution of its
clock offset relative to the sequencer's clock (paper §3.1).  This package
provides:

* parametric models (:class:`GaussianDistribution`, :class:`UniformDistribution`,
  :class:`LaplaceDistribution`, :class:`StudentTDistribution`,
  :class:`ShiftedLogNormalDistribution`) and :class:`MixtureDistribution`
  for the skewed / long-tailed behaviour reported for real clock offsets,
* empirical models built from observed probe samples
  (:class:`EmpiricalDistribution`, histogram-backed, optionally KDE-smoothed),
* the distribution of the *difference* of two offsets, computed either in
  closed form (Gaussian) or numerically via direct or FFT convolution
  (:func:`difference_distribution`, paper §3.3), and
* estimators that learn a distribution from synchronization-probe samples
  (:mod:`repro.distributions.estimation`, paper §5).
"""

from repro.distributions.base import DistributionError, OffsetDistribution, SampledDistribution
from repro.distributions.parametric import (
    GaussianDistribution,
    LaplaceDistribution,
    ShiftedLogNormalDistribution,
    StudentTDistribution,
    UniformDistribution,
)
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.difference import (
    DifferenceDistribution,
    difference_distribution,
    gaussian_difference,
)
from repro.distributions.convolution import (
    convolve_direct,
    convolve_fft,
    cross_correlation_grid,
)
from repro.distributions.estimation import (
    DistributionEstimate,
    estimate_empirical,
    estimate_gaussian,
    fit_best_distribution,
)

__all__ = [
    "DistributionError",
    "OffsetDistribution",
    "SampledDistribution",
    "GaussianDistribution",
    "UniformDistribution",
    "LaplaceDistribution",
    "StudentTDistribution",
    "ShiftedLogNormalDistribution",
    "MixtureDistribution",
    "EmpiricalDistribution",
    "DifferenceDistribution",
    "difference_distribution",
    "gaussian_difference",
    "convolve_direct",
    "convolve_fft",
    "cross_correlation_grid",
    "DistributionEstimate",
    "estimate_empirical",
    "estimate_gaussian",
    "fit_best_distribution",
]
