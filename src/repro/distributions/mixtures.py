"""Mixture distributions for multi-modal clock-offset behaviour.

A client whose synchronization path flips between two routes (or whose host
alternates between idle and loaded states) exhibits a bimodal offset
distribution; mixtures model that directly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import DistributionError, OffsetDistribution


class MixtureDistribution(OffsetDistribution):
    """Finite mixture ``sum_k w_k * component_k``."""

    family = "mixture"

    def __init__(self, components: Sequence[OffsetDistribution], weights: Sequence[float]) -> None:
        if len(components) == 0:
            raise DistributionError("mixture needs at least one component")
        if len(components) != len(weights):
            raise DistributionError("components and weights must have the same length")
        weights = np.asarray(weights, dtype=float)
        if np.any(weights < 0):
            raise DistributionError("mixture weights must be non-negative")
        total = float(weights.sum())
        if total <= 0:
            raise DistributionError("mixture weights must not all be zero")
        self._components = list(components)
        self._weights = weights / total

    @property
    def components(self) -> Tuple[OffsetDistribution, ...]:
        """The mixture components."""
        return tuple(self._components)

    @property
    def weights(self) -> np.ndarray:
        """Normalised mixture weights."""
        return self._weights.copy()

    @property
    def mean(self) -> float:
        return float(sum(w * c.mean for w, c in zip(self._weights, self._components)))

    @property
    def variance(self) -> float:
        mean = self.mean
        second_moment = sum(
            w * (c.variance + c.mean ** 2) for w, c in zip(self._weights, self._components)
        )
        return float(second_moment - mean ** 2)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x, dtype=float)
        for weight, component in zip(self._weights, self._components):
            total = total + weight * component.pdf(x)
        return total

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        total = np.zeros_like(x, dtype=float)
        for weight, component in zip(self._weights, self._components):
            total = total + weight * component.cdf(x)
        return total

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if size is None:
            index = rng.choice(len(self._components), p=self._weights)
            return self._components[index].sample(rng)
        counts = rng.multinomial(size, self._weights)
        draws = [
            np.asarray(component.sample(rng, size=count), dtype=float)
            for component, count in zip(self._components, counts)
            if count > 0
        ]
        values = np.concatenate(draws) if draws else np.empty(0)
        rng.shuffle(values)
        return values

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        bounds = [component.support(coverage) for component in self._components]
        return (min(lo for lo, _ in bounds), max(hi for _, hi in bounds))
