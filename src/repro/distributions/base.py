"""Abstract interfaces for clock-offset distributions."""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np


class DistributionError(ValueError):
    """Raised for invalid distribution parameters or unusable supports."""


class OffsetDistribution(abc.ABC):
    """A probability distribution over a client's clock offset (seconds).

    Implementations must provide a PDF, a CDF, sampling, the first two
    moments, and a finite numerical support used when a distribution has to
    be discretised (for FFT convolution of non-Gaussian offsets).
    """

    #: human-readable distribution family name
    family: str = "abstract"

    # ----------------------------------------------------------------- stats
    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value of the offset."""

    @property
    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the offset."""

    @property
    def std(self) -> float:
        """Standard deviation of the offset."""
        return float(np.sqrt(self.variance))

    # ------------------------------------------------------------- densities
    @abc.abstractmethod
    def pdf(self, x: np.ndarray) -> np.ndarray:
        """Probability density evaluated element-wise at ``x``."""

    @abc.abstractmethod
    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Cumulative distribution evaluated element-wise at ``x``."""

    def sf(self, x: np.ndarray) -> np.ndarray:
        """Survival function ``1 - cdf(x)``."""
        return 1.0 - self.cdf(x)

    def quantile(self, q: float) -> float:
        """Approximate inverse CDF by bisection over the numerical support."""
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        lo, hi = self.support()
        if q <= 0.0:
            return lo
        if q >= 1.0:
            return hi
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if float(self.cdf(np.asarray(mid))) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)

    # -------------------------------------------------------------- sampling
    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        """Draw samples using ``rng``; scalar when ``size`` is ``None``."""

    # --------------------------------------------------------------- support
    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        """Finite interval containing ``coverage`` of the probability mass.

        The default uses a mean +/- k*std bound suitable for light-tailed
        distributions; heavy-tailed implementations should override it.
        """
        if coverage <= 0.0 or coverage > 1.0:
            raise DistributionError(f"coverage must be in (0, 1], got {coverage!r}")
        k = max(8.0, np.sqrt(2.0 / max(1.0 - coverage, 1e-12)))
        spread = self.std if self.std > 0 else 1e-9
        return (self.mean - k * spread, self.mean + k * spread)

    def grid(
        self, num_points: int = 4096, coverage: float = 1.0 - 1e-9
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Discretise the PDF on an evenly spaced grid covering the support."""
        if num_points < 8:
            raise DistributionError("grid needs at least 8 points")
        lo, hi = self.support(coverage)
        xs = np.linspace(lo, hi, num_points)
        return xs, self.pdf(xs)

    # ------------------------------------------------------------ operations
    def negated(self) -> "OffsetDistribution":
        """Distribution of ``-X`` where ``X`` follows this distribution."""
        from repro.distributions.empirical import EmpiricalDistribution

        xs, ps = self.grid()
        return EmpiricalDistribution.from_density(-xs[::-1], ps[::-1])

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"<{type(self).__name__} mean={self.mean:.3e} std={self.std:.3e}>"


class SampledDistribution(OffsetDistribution):
    """Mixin for distributions defined by, or reducible to, raw samples."""

    @abc.abstractmethod
    def samples(self) -> np.ndarray:
        """Return the underlying (or representative) sample array."""
