"""Empirical (data-driven) offset distributions.

Clients that learn their offset distribution from synchronization probes
(paper §3.3, §5) produce empirical distributions: either a histogram of raw
probe offsets or a discretised density obtained from convolution.  Both are
represented here by a piecewise-linear density on an even grid.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.distributions.base import DistributionError, SampledDistribution


class EmpiricalDistribution(SampledDistribution):
    """Distribution represented by a density tabulated on an even grid."""

    family = "empirical"

    def __init__(
        self, grid_x: np.ndarray, density: np.ndarray, samples: Optional[np.ndarray] = None
    ) -> None:
        grid_x = np.asarray(grid_x, dtype=float)
        density = np.asarray(density, dtype=float)
        if grid_x.ndim != 1 or density.ndim != 1 or grid_x.size != density.size:
            raise DistributionError("grid and density must be 1-D arrays of equal length")
        if grid_x.size < 2:
            raise DistributionError("empirical distribution needs at least 2 grid points")
        if np.any(np.diff(grid_x) <= 0):
            raise DistributionError("grid must be strictly increasing")
        if np.any(density < -1e-12):
            raise DistributionError("density must be non-negative")
        density = np.clip(density, 0.0, None)
        mass = np.trapezoid(density, grid_x)
        if mass <= 0:
            raise DistributionError("density integrates to zero")
        self._x = grid_x
        self._pdf = density / mass
        # cumulative trapezoid
        increments = 0.5 * (self._pdf[1:] + self._pdf[:-1]) * np.diff(self._x)
        self._cdf = np.concatenate([[0.0], np.cumsum(increments)])
        self._cdf = self._cdf / self._cdf[-1]
        self._samples = None if samples is None else np.asarray(samples, dtype=float)
        self._mean = float(np.trapezoid(self._x * self._pdf, self._x))
        second = float(np.trapezoid(self._x ** 2 * self._pdf, self._x))
        self._variance = max(second - self._mean ** 2, 0.0)

    # ------------------------------------------------------------- factories
    @classmethod
    def from_samples(
        cls, samples: np.ndarray, bins: int = 128, padding: float = 0.05
    ) -> "EmpiricalDistribution":
        """Build a histogram-based density from raw offset samples."""
        samples = np.asarray(samples, dtype=float)
        if samples.size < 2:
            raise DistributionError("need at least 2 samples")
        lo, hi = float(samples.min()), float(samples.max())
        span = max(hi - lo, 1e-12)
        lo -= padding * span
        hi += padding * span
        counts, edges = np.histogram(samples, bins=bins, range=(lo, hi), density=True)
        centers = 0.5 * (edges[1:] + edges[:-1])
        # ensure strictly positive mass even for degenerate histograms
        if counts.sum() == 0:
            counts = np.ones_like(counts)
        return cls(centers, counts, samples=samples)

    @classmethod
    def from_density(cls, grid_x: np.ndarray, density: np.ndarray) -> "EmpiricalDistribution":
        """Wrap an already-computed density (e.g. the output of a convolution)."""
        return cls(np.asarray(grid_x, dtype=float), np.asarray(density, dtype=float))

    @classmethod
    def from_kde(
        cls, samples: np.ndarray, num_points: int = 512, bandwidth: Optional[float] = None
    ) -> "EmpiricalDistribution":
        """Gaussian kernel density estimate over ``samples``."""
        samples = np.asarray(samples, dtype=float)
        if samples.size < 2:
            raise DistributionError("need at least 2 samples")
        std = float(samples.std())
        if std == 0:
            std = 1e-9
        if bandwidth is None:
            bandwidth = 1.06 * std * samples.size ** (-1.0 / 5.0)
        bandwidth = max(float(bandwidth), 1e-12)
        lo = float(samples.min()) - 4 * bandwidth
        hi = float(samples.max()) + 4 * bandwidth
        xs = np.linspace(lo, hi, num_points)
        diffs = (xs[:, None] - samples[None, :]) / bandwidth
        density = np.exp(-0.5 * diffs**2).sum(axis=1) / (
            samples.size * bandwidth * np.sqrt(2 * np.pi)
        )
        return cls(xs, density, samples=samples)

    # ------------------------------------------------------------ properties
    @property
    def grid_x(self) -> np.ndarray:
        """Grid points the density is tabulated on."""
        return self._x.copy()

    @property
    def density(self) -> np.ndarray:
        """Normalised density values at :attr:`grid_x`."""
        return self._pdf.copy()

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._variance

    def samples(self) -> np.ndarray:
        """Raw samples if the distribution was built from samples, else the grid."""
        if self._samples is not None:
            return self._samples.copy()
        return self._x.copy()

    # ------------------------------------------------------------- densities
    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._x, self._pdf, left=0.0, right=0.0)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.interp(x, self._x, self._cdf, left=0.0, right=1.0)

    def cdf_table(self) -> Tuple[np.ndarray, np.ndarray]:
        """The tabulated ``(grid, cdf)`` arrays backing :meth:`cdf`.

        Returns *views* (no copies) so vectorized consumers (the precedence
        engine's pair-table kernel) can evaluate ``np.interp`` against the
        exact arrays the scalar path uses; callers must not mutate them.
        """
        return self._x, self._cdf

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        # Generalised inverse F^{-1}(q) = inf{x : F(x) >= q}.  ``np.interp``
        # over (cdf, x) is wrong on flat CDF segments (zero-density gaps make
        # the duplicated cdf ordinates pick an arbitrary grid point); resolve
        # the segment explicitly instead.
        cdf = self._cdf
        x = self._x
        index = int(np.searchsorted(cdf, q, side="left"))
        if index <= 0:
            return float(x[0])
        if index >= cdf.size:
            return float(x[-1])
        if cdf[index] == q:
            # exact hit: the leftmost grid point reaching mass q
            return float(x[index])
        lower, upper = cdf[index - 1], cdf[index]
        slope = (x[index] - x[index - 1]) / (upper - lower)
        return float(x[index - 1] + slope * (q - lower))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        if self._samples is not None and self._samples.size >= 8:
            # bootstrap resampling from the observed probes
            return rng.choice(self._samples, size=size, replace=True)
        qs = rng.uniform(0.0, 1.0, size=size)
        return np.interp(qs, self._cdf, self._x)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        """Central interval containing ``coverage`` of the probability mass.

        Earlier revisions ignored ``coverage`` and returned the raw grid
        bounds, so zero-density histogram padding inflated every downstream
        convolution grid.  The interval is now read off the CDF:
        ``[Q((1-coverage)/2), Q(1-(1-coverage)/2)]``.
        """
        if coverage <= 0.0 or coverage > 1.0:
            raise DistributionError(f"coverage must be in (0, 1], got {coverage!r}")
        tail = 0.5 * (1.0 - coverage)
        return (self.quantile(tail), self.quantile(1.0 - tail))
