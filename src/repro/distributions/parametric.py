"""Parametric clock-offset distribution families.

The paper's evaluation seeds each client with a Gaussian offset distribution
(§4), but §3.3 explicitly calls for arbitrary distributions because measured
clock offsets are "Gaussian-like" yet skewed and long-tailed.  The families
here cover both regimes: Gaussian/uniform/Laplace for light tails and
Student-t / shifted log-normal for heavy or skewed tails.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy import stats
from scipy.special import ndtri

from repro.distributions.base import DistributionError, OffsetDistribution


class GaussianDistribution(OffsetDistribution):
    """Normal offset distribution ``N(mu, sigma^2)``."""

    family = "gaussian"

    def __init__(self, mean: float, std: float) -> None:
        if std < 0:
            raise DistributionError(f"std must be non-negative, got {std!r}")
        self._mean = float(mean)
        self._std = float(std)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._std ** 2

    @property
    def std(self) -> float:
        return self._std

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self._std == 0:
            return np.where(np.isclose(x, self._mean), np.inf, 0.0)
        return stats.norm.pdf(x, loc=self._mean, scale=self._std)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if self._std == 0:
            return np.where(x >= self._mean, 1.0, 0.0)
        return stats.norm.cdf(x, loc=self._mean, scale=self._std)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        if self._std == 0:
            return self._mean
        return float(stats.norm.ppf(q, loc=self._mean, scale=self._std))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.normal(self._mean, self._std, size=size)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        if self._std == 0:
            return (self._mean - 1e-9, self._mean + 1e-9)
        tail = (1.0 - coverage) / 2.0
        # ndtri == stats.norm.ppf for loc=0/scale=1 (same bits) without the
        # generic distribution machinery — support() sits on the certainty-
        # window hot path, priced once per client per merge
        half = -float(ndtri(max(tail, 1e-300))) * self._std
        return (self._mean - half, self._mean + half)


class UniformDistribution(OffsetDistribution):
    """Uniform offset on ``[low, high]`` — the worst-case bounded error model."""

    family = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if high <= low:
            raise DistributionError(f"require high > low, got [{low!r}, {high!r}]")
        self._low = float(low)
        self._high = float(high)

    @property
    def low(self) -> float:
        """Lower edge of the support."""
        return self._low

    @property
    def high(self) -> float:
        """Upper edge of the support."""
        return self._high

    @property
    def mean(self) -> float:
        return 0.5 * (self._low + self._high)

    @property
    def variance(self) -> float:
        return (self._high - self._low) ** 2 / 12.0

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return stats.uniform.pdf(x, loc=self._low, scale=self._high - self._low)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return stats.uniform.cdf(x, loc=self._low, scale=self._high - self._low)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        return self._low + q * (self._high - self._low)

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.uniform(self._low, self._high, size=size)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        return (self._low, self._high)


class LaplaceDistribution(OffsetDistribution):
    """Laplace (double-exponential) offsets — heavier tails than Gaussian."""

    family = "laplace"

    def __init__(self, mean: float, scale: float) -> None:
        if scale <= 0:
            raise DistributionError(f"scale must be positive, got {scale!r}")
        self._mean = float(mean)
        self._scale = float(scale)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return 2.0 * self._scale ** 2

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.laplace.pdf(np.asarray(x, dtype=float), loc=self._mean, scale=self._scale)

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.laplace.cdf(np.asarray(x, dtype=float), loc=self._mean, scale=self._scale)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        return float(stats.laplace.ppf(q, loc=self._mean, scale=self._scale))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return rng.laplace(self._mean, self._scale, size=size)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        tail = (1.0 - coverage) / 2.0
        half = float(-stats.laplace.ppf(max(tail, 1e-300), loc=0.0, scale=self._scale))
        return (self._mean - half, self._mean + half)


class StudentTDistribution(OffsetDistribution):
    """Student-t offsets — models occasional large synchronization excursions."""

    family = "student-t"

    def __init__(self, mean: float, scale: float, dof: float) -> None:
        if scale <= 0:
            raise DistributionError(f"scale must be positive, got {scale!r}")
        if dof <= 2:
            raise DistributionError(f"dof must exceed 2 for finite variance, got {dof!r}")
        self._mean = float(mean)
        self._scale = float(scale)
        self._dof = float(dof)

    @property
    def dof(self) -> float:
        """Degrees of freedom."""
        return self._dof

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._scale ** 2 * self._dof / (self._dof - 2.0)

    def pdf(self, x: np.ndarray) -> np.ndarray:
        return stats.t.pdf(
            np.asarray(x, dtype=float), df=self._dof, loc=self._mean, scale=self._scale
        )

    def cdf(self, x: np.ndarray) -> np.ndarray:
        return stats.t.cdf(
            np.asarray(x, dtype=float), df=self._dof, loc=self._mean, scale=self._scale
        )

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        return float(stats.t.ppf(q, df=self._dof, loc=self._mean, scale=self._scale))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._mean + self._scale * rng.standard_t(self._dof, size=size)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        tail = (1.0 - coverage) / 2.0
        lo = float(stats.t.ppf(max(tail, 1e-300), df=self._dof, loc=self._mean, scale=self._scale))
        hi = float(
            stats.t.ppf(min(1.0 - tail, 1.0), df=self._dof, loc=self._mean, scale=self._scale)
        )
        if not np.isfinite(lo) or not np.isfinite(hi):
            lo, hi = self._mean - 50 * self._scale, self._mean + 50 * self._scale
        return (lo, hi)


class ShiftedLogNormalDistribution(OffsetDistribution):
    """Skewed offsets: ``shift + LogNormal(mu, sigma)``.

    Captures the asymmetric, long-right-tail behaviour reported for measured
    clock offsets (paper §3.3, reference [27]).
    """

    family = "shifted-lognormal"

    def __init__(self, shift: float, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise DistributionError(f"sigma must be positive, got {sigma!r}")
        self._shift = float(shift)
        self._mu = float(mu)
        self._sigma = float(sigma)

    @property
    def shift(self) -> float:
        """Additive shift applied to the log-normal variate."""
        return self._shift

    @property
    def mean(self) -> float:
        return self._shift + float(np.exp(self._mu + self._sigma ** 2 / 2.0))

    @property
    def variance(self) -> float:
        s2 = self._sigma ** 2
        return float((np.exp(s2) - 1.0) * np.exp(2.0 * self._mu + s2))

    def pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return stats.lognorm.pdf(x - self._shift, s=self._sigma, scale=np.exp(self._mu))

    def cdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return stats.lognorm.cdf(x - self._shift, s=self._sigma, scale=np.exp(self._mu))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise DistributionError(f"quantile level must be in [0, 1], got {q!r}")
        return self._shift + float(stats.lognorm.ppf(q, s=self._sigma, scale=np.exp(self._mu)))

    def sample(self, rng: np.random.Generator, size: Optional[int] = None):
        return self._shift + rng.lognormal(self._mu, self._sigma, size=size)

    def support(self, coverage: float = 1.0 - 1e-9) -> Tuple[float, float]:
        tail = 1.0 - coverage
        hi = self._shift + float(
            stats.lognorm.ppf(1.0 - tail, s=self._sigma, scale=np.exp(self._mu))
        )
        return (self._shift, hi)
