"""Learning clock-offset distributions from synchronization-probe samples.

Paper §5 ("Learning Clock Offsets Distributions"): every synchronization
probe yields one offset observation; clients accumulate probes and estimate
their offset distribution, then ship the estimate (not the raw probes) to the
sequencer.  This module provides parametric and non-parametric estimators,
and a small model-selection helper that picks the best fit by log-likelihood
with a complexity penalty (AIC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.distributions.base import DistributionError, OffsetDistribution
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import (
    GaussianDistribution,
    LaplaceDistribution,
    ShiftedLogNormalDistribution,
    UniformDistribution,
)


@dataclass(frozen=True)
class DistributionEstimate:
    """An estimated offset distribution plus goodness-of-fit diagnostics."""

    distribution: OffsetDistribution
    family: str
    sample_count: int
    log_likelihood: float
    aic: float

    @property
    def mean(self) -> float:
        """Mean of the estimated distribution."""
        return self.distribution.mean

    @property
    def std(self) -> float:
        """Standard deviation of the estimated distribution."""
        return self.distribution.std


def _require_samples(samples: np.ndarray, minimum: int) -> np.ndarray:
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 1:
        raise DistributionError("samples must be a 1-D array")
    if samples.size < minimum:
        raise DistributionError(f"need at least {minimum} samples, got {samples.size}")
    if not np.all(np.isfinite(samples)):
        raise DistributionError("samples must be finite")
    return samples


def _log_likelihood(dist: OffsetDistribution, samples: np.ndarray) -> float:
    densities = np.clip(dist.pdf(samples), 1e-300, None)
    return float(np.log(densities).sum())


def estimate_gaussian(samples: np.ndarray) -> DistributionEstimate:
    """Fit a Gaussian by maximum likelihood (sample mean / std)."""
    samples = _require_samples(samples, 2)
    mean = float(samples.mean())
    std = float(samples.std(ddof=1))
    if std <= 0:
        std = 1e-9
    dist = GaussianDistribution(mean, std)
    ll = _log_likelihood(dist, samples)
    return DistributionEstimate(dist, "gaussian", samples.size, ll, 2 * 2 - 2 * ll)


def estimate_laplace(samples: np.ndarray) -> DistributionEstimate:
    """Fit a Laplace distribution (median / mean absolute deviation)."""
    samples = _require_samples(samples, 2)
    loc = float(np.median(samples))
    scale = float(np.mean(np.abs(samples - loc)))
    if scale <= 0:
        scale = 1e-9
    dist = LaplaceDistribution(loc, scale)
    ll = _log_likelihood(dist, samples)
    return DistributionEstimate(dist, "laplace", samples.size, ll, 2 * 2 - 2 * ll)


def estimate_uniform(samples: np.ndarray) -> DistributionEstimate:
    """Fit a uniform distribution to the sample range (with a small margin)."""
    samples = _require_samples(samples, 2)
    lo, hi = float(samples.min()), float(samples.max())
    span = max(hi - lo, 1e-12)
    margin = span / samples.size
    dist = UniformDistribution(lo - margin, hi + margin)
    ll = _log_likelihood(dist, samples)
    return DistributionEstimate(dist, "uniform", samples.size, ll, 2 * 2 - 2 * ll)


def estimate_lognormal(samples: np.ndarray) -> DistributionEstimate:
    """Fit a shifted log-normal to capture skewed, long-right-tail offsets."""
    samples = _require_samples(samples, 4)
    shift = float(samples.min()) - 1e-6 - 0.05 * float(samples.std() + 1e-12)
    shifted = samples - shift
    logs = np.log(np.clip(shifted, 1e-12, None))
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=1))
    if sigma <= 0:
        sigma = 1e-6
    dist = ShiftedLogNormalDistribution(shift, mu, sigma)
    ll = _log_likelihood(dist, samples)
    return DistributionEstimate(dist, "shifted-lognormal", samples.size, ll, 2 * 3 - 2 * ll)


def estimate_empirical(
    samples: np.ndarray, bins: int = 64, kde: bool = False
) -> DistributionEstimate:
    """Non-parametric estimate (histogram by default, KDE when ``kde=True``)."""
    samples = _require_samples(samples, 2)
    if kde:
        dist: OffsetDistribution = EmpiricalDistribution.from_kde(samples)
    else:
        dist = EmpiricalDistribution.from_samples(samples, bins=bins)
    ll = _log_likelihood(dist, samples)
    # penalise by the number of occupied bins as a crude parameter count
    k = bins if not kde else samples.size
    return DistributionEstimate(dist, "empirical", samples.size, ll, 2 * k - 2 * ll)


def fit_best_distribution(
    samples: np.ndarray, candidates: Optional[Dict[str, bool]] = None
) -> DistributionEstimate:
    """Fit several families and return the lowest-AIC estimate.

    ``candidates`` maps family name to a boolean enabling that family; by
    default Gaussian, Laplace, uniform and shifted log-normal are tried.
    Pass ``{"empirical": True}`` to also consider the non-parametric
    histogram — with its bin-count complexity penalty it only wins when no
    parametric family explains the samples (e.g. genuinely multi-modal
    probe offsets), which is exactly when the learned pipeline should ship
    an empirical estimate.
    """
    samples = _require_samples(samples, 4)
    enabled = {
        "gaussian": True,
        "laplace": True,
        "uniform": True,
        "shifted-lognormal": True,
        "empirical": False,
    }
    if candidates:
        enabled.update(candidates)

    estimators = {
        "gaussian": estimate_gaussian,
        "laplace": estimate_laplace,
        "uniform": estimate_uniform,
        "shifted-lognormal": estimate_lognormal,
        "empirical": estimate_empirical,
    }
    estimates = []
    for family, estimator in estimators.items():
        if not enabled.get(family, False):
            continue
        try:
            estimates.append(estimator(samples))
        except (DistributionError, ValueError):
            continue
    if not estimates:
        raise DistributionError("no candidate family could be fitted")
    return min(estimates, key=lambda estimate: estimate.aic)
