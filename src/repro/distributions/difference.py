"""Distribution of the difference of two clock errors.

``DifferenceDistribution`` wraps the density of ``delta = eps_j - eps_i``
(in the repo-wide ``epsilon = reported - true`` convention, see
:mod:`repro.core`) and exposes the integral the sequencer needs for the
preceding-probability (paper §3.2):

``P(T*_i < T*_j | T_i, T_j) = P(eps_j - eps_i < T_j - T_i)
                            = CDF_delta(T_j - T_i)``.

The paper states the same quantity in its ``theta = -epsilon`` convention as
``P(theta_j - theta_i > T_i - T_j)``.  The two are equal because negating a
variable reflects its distribution — but *only* when each formula is paired
with the matching difference density.  An earlier revision documented the
theta-convention tail formula on top of the epsilon-convention density
computed here; for asymmetric (skewed) error distributions that combination
is simply wrong (the two readings differ by the asymmetry of ``delta``).
Use :meth:`DifferenceDistribution.preceding_probability`, which encodes the
correct pairing once, instead of re-deriving signs at call sites.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.distributions.base import DistributionError, OffsetDistribution
from repro.distributions.convolution import convolve_direct, convolve_fft
from repro.distributions.empirical import EmpiricalDistribution
from repro.distributions.parametric import GaussianDistribution


class DifferenceDistribution:
    """The distribution of ``eps_j - eps_i`` for one ordered client pair."""

    def __init__(self, distribution: OffsetDistribution, exact: bool = False) -> None:
        self._distribution = distribution
        self._exact = bool(exact)

    @property
    def distribution(self) -> OffsetDistribution:
        """The underlying distribution object for ``delta``."""
        return self._distribution

    @property
    def exact(self) -> bool:
        """True when the density is a closed form (Gaussian), not a numerical grid."""
        return self._exact

    @property
    def mean(self) -> float:
        """Mean of ``delta``."""
        return self._distribution.mean

    @property
    def std(self) -> float:
        """Standard deviation of ``delta``."""
        return self._distribution.std

    def tail_probability(self, threshold: float) -> float:
        """``P(delta > threshold)`` for ``delta = eps_j - eps_i``.

        This is *not* the preceding-probability: that is
        ``CDF_delta(T_j - T_i)`` (see :meth:`preceding_probability`).  The
        two coincide only for symmetric ``delta``.
        """
        return float(np.clip(self._distribution.sf(np.asarray(threshold, dtype=float)), 0.0, 1.0))

    def cdf(self, x: float) -> float:
        """``P(delta <= x)``."""
        return float(np.clip(self._distribution.cdf(np.asarray(x, dtype=float)), 0.0, 1.0))

    def preceding_probability(self, timestamp_i: float, timestamp_j: float) -> float:
        """``P(message_i generated before message_j)`` given reported timestamps.

        With ``eps = reported - true`` and ``delta = eps_j - eps_i``::

            P(T*_i < T*_j) = P(T_i - eps_i < T_j - eps_j)
                           = P(delta < T_j - T_i) = CDF_delta(T_j - T_i)
        """
        return self.cdf(timestamp_j - timestamp_i)

    def cdf_table(self) -> Optional[tuple]:
        """``(grid, cdf)`` arrays when the density is tabulated, else ``None``.

        Only grid-backed (:class:`EmpiricalDistribution`) differences expose a
        table; closed-form (Gaussian) differences return ``None`` — those
        pairs are served by the Gaussian closed-form kernel instead.
        """
        if isinstance(self._distribution, EmpiricalDistribution):
            return self._distribution.cdf_table()
        return None

    def quantile(self, q: float) -> float:
        """Inverse CDF of ``delta``."""
        return self._distribution.quantile(q)


def gaussian_difference(
    dist_i: GaussianDistribution, dist_j: GaussianDistribution
) -> DifferenceDistribution:
    """Closed-form difference for independent Gaussian errors.

    ``eps_j - eps_i ~ N(mu_j - mu_i, sigma_i^2 + sigma_j^2)``.
    """
    mean = dist_j.mean - dist_i.mean
    std = float(np.sqrt(dist_i.variance + dist_j.variance))
    return DifferenceDistribution(GaussianDistribution(mean, std), exact=True)


def difference_distribution(
    dist_i: OffsetDistribution,
    dist_j: OffsetDistribution,
    method: str = "auto",
    num_points: int = 2048,
) -> DifferenceDistribution:
    """Compute the distribution of ``eps_j - eps_i``.

    Parameters
    ----------
    method:
        ``"auto"`` uses the Gaussian closed form when both inputs are
        Gaussian and FFT convolution otherwise; ``"gaussian"`` forces the
        closed form (raising if the inputs are not Gaussian); ``"fft"`` and
        ``"direct"`` force the corresponding numerical path.
    num_points:
        Grid resolution for the numerical paths.
    """
    if method not in {"auto", "gaussian", "fft", "direct"}:
        raise DistributionError(f"unknown method {method!r}")

    both_gaussian = isinstance(dist_i, GaussianDistribution) and isinstance(
        dist_j, GaussianDistribution
    )
    if method == "gaussian" and not both_gaussian:
        raise DistributionError("gaussian method requires Gaussian inputs")
    if method in {"auto", "gaussian"} and both_gaussian:
        return gaussian_difference(dist_i, dist_j)

    if method == "direct":
        deltas, density = convolve_direct(dist_i, dist_j, num_points=min(num_points, 2048))
    else:
        deltas, density = convolve_fft(dist_i, dist_j, num_points=num_points)
    return DifferenceDistribution(EmpiricalDistribution.from_density(deltas, density), exact=False)
