"""The offline Tommy sequencer (paper §3.1–§3.4).

``TommySequencer`` assumes all messages are present (the paper's §3
assumption, lifted by :mod:`repro.core.online`), computes the
likely-happened-before relation over them, extracts a linear order from the
kept-edge tournament (breaking cycles per the configured policy when the
relation is intransitive) and forms ranked batches at the confidence
threshold.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.batching import form_batches
from repro.core.config import TommyConfig
from repro.core.cycles import resolve_cycles
from repro.core.engine import EngineStats, build_relation
from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore
from repro.core.tournament import TournamentGraph
from repro.distributions.base import OffsetDistribution
from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult


class TommySequencer(OfflineSequencer):
    """Probabilistic fair sequencer operating on a complete message set."""

    name = "tommy"

    def __init__(
        self,
        client_distributions: Optional[Dict[str, OffsetDistribution]] = None,
        config: Optional[TommyConfig] = None,
    ) -> None:
        self._config = config if config is not None else TommyConfig()
        self._model = PrecedenceModel(
            method=self._config.probability_method,
            convolution_points=self._config.convolution_points,
        )
        self._rng = np.random.default_rng(self._config.seed if self._config.seed is not None else 0)
        self._engine_stats = EngineStats()
        for client_id, distribution in (client_distributions or {}).items():
            self._model.register_client(client_id, distribution)

    # ----------------------------------------------------------- registration
    @property
    def config(self) -> TommyConfig:
        """The sequencer's configuration."""
        return self._config

    @property
    def model(self) -> PrecedenceModel:
        """The underlying preceding-probability model."""
        return self._model

    @property
    def engine_stats(self) -> EngineStats:
        """Counters for the vectorized relation computations performed."""
        return self._engine_stats

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register or update a client's clock-error distribution."""
        self._model.register_client(client_id, distribution)

    # ------------------------------------------------------------- sequencing
    def relation_for(self, messages: Sequence[TimestampedMessage]) -> LikelyHappenedBefore:
        """Likely-happened-before relation over ``messages``.

        Computed through the vectorized engine path
        (:func:`repro.core.engine.build_relation`): same probabilities as
        :meth:`LikelyHappenedBefore.from_model`, but Gaussian client pairs
        are evaluated in one numpy pass instead of per-pair scalar calls.
        """
        return build_relation(list(messages), self._model, stats=self._engine_stats)

    def sequence(self, messages: Sequence[TimestampedMessage]) -> SequencingResult:
        messages = self._validate(messages)
        if not messages:
            return SequencingResult(batches=(), metadata={"sequencer": self.name})
        for message in messages:
            if not self._model.has_client(message.client_id):
                raise KeyError(
                    f"client {message.client_id!r} has no registered clock-error distribution"
                )

        relation = self.relation_for(messages)
        return self.sequence_relation(relation)

    def sequence_relation(self, relation: LikelyHappenedBefore) -> SequencingResult:
        """Sequence messages given an already-computed relation.

        This entry point supports the Appendix-B style workflow where the
        pairwise probabilities are supplied directly as a matrix.
        """
        tournament = TournamentGraph.from_relation(relation, tie_epsilon=self._config.tie_epsilon)
        transitive = tournament.is_transitive_tournament()
        resolution = resolve_cycles(tournament.graph, self._config.cycle_policy, rng=self._rng)
        order = tournament.topological_order()
        outcome = form_batches(
            order, relation, self._config.threshold, mode=self._config.batching_mode
        )
        metadata = {
            "sequencer": self.name,
            "threshold": self._config.threshold,
            "transitive": transitive,
            "was_cyclic": resolution.was_cyclic,
            "cycle_policy": resolution.policy,
            "removed_edges": len(resolution.removed_edges),
            "removed_probability_mass": resolution.removed_probability_mass,
            "tie_count": tournament.tie_count,
            "linear_order": [key for key in order],
            "boundary_probabilities": list(outcome.boundary_probabilities),
            "batch_sizes": list(outcome.batch_sizes),
        }
        return SequencingResult(batches=outcome.batches, metadata=metadata)
