"""Tommy: probabilistic fair ordering (the paper's primary contribution).

Pipeline (paper §3):

1. :class:`PrecedenceModel` computes the *preceding-probability*
   ``P(T*_i < T*_j | T_i, T_j)`` for message pairs from the clients' clock
   error distributions (§3.2 Gaussian closed form, §3.3 FFT convolution for
   arbitrary distributions).
2. :class:`LikelyHappenedBefore` wraps those probabilities as the
   ``likely-happened-before`` relation.
3. :class:`TournamentGraph` keeps, for every pair, the direction with the
   higher probability and extracts a linear order (topological order of the
   transitive tournament; cycle-breaking heuristics from
   :mod:`repro.core.cycles` otherwise, §3.4).
4. :func:`form_batches` inserts a batch boundary between adjacent messages
   whose preceding-probability exceeds the confidence threshold (§3.4).
5. :class:`TommySequencer` packages 1–4 as an offline sequencer;
   :class:`OnlineTommySequencer` adds safe batch emission and arrival
   completeness tracking (§3.5, Appendix C).

Extensions sketched by the paper and implemented here: fair total order via
stochastic tie-breaking (:mod:`repro.core.total_order`) and Byzantine
timestamp auditing (:mod:`repro.core.byzantine`).

Timestamp-error convention
--------------------------
Throughout this package a client's *clock error distribution* is the
distribution of ``epsilon = reported_timestamp - true_time`` — exactly what
:class:`repro.clocks.LocalClock` samples and what probe-based learners
estimate.  The paper's ``theta`` (true minus reported) is the negation; all
formulas here are derived for the ``epsilon`` convention so that clocks,
learners and the sequencer agree without sign gymnastics at call sites.
"""

from repro.core.config import TommyConfig
from repro.core.probability import PrecedenceModel, gaussian_preceding_probability
from repro.core.relation import LikelyHappenedBefore, PairProbability
from repro.core.tournament import TournamentGraph
from repro.core.cycles import (
    CycleResolution,
    break_cycles_greedy,
    break_cycles_stochastic,
    eades_linear_arrangement,
)
from repro.core.batching import BatchingOutcome, form_batches
from repro.core.engine import (
    EngineStats,
    IncrementalPrecedenceEngine,
    PairTableCache,
    build_relation,
    cross_probability_matrix,
    strict_boundary_strengths_matrix,
)
from repro.core.sequencer import TommySequencer
from repro.core.online import EmittedBatch, OnlineTommySequencer
from repro.core.total_order import FairTotalOrder, TieBreakRecord
from repro.core.byzantine import ByzantineAuditor, TimestampAuditVerdict

__all__ = [
    "TommyConfig",
    "PrecedenceModel",
    "gaussian_preceding_probability",
    "LikelyHappenedBefore",
    "PairProbability",
    "TournamentGraph",
    "CycleResolution",
    "break_cycles_greedy",
    "break_cycles_stochastic",
    "eades_linear_arrangement",
    "BatchingOutcome",
    "form_batches",
    "EngineStats",
    "IncrementalPrecedenceEngine",
    "PairTableCache",
    "build_relation",
    "cross_probability_matrix",
    "strict_boundary_strengths_matrix",
    "TommySequencer",
    "OnlineTommySequencer",
    "EmittedBatch",
    "FairTotalOrder",
    "TieBreakRecord",
    "ByzantineAuditor",
    "TimestampAuditVerdict",
]
