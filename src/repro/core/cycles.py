"""Cycle-breaking policies for intransitive likely-happened-before relations.

The paper (§3.4) observes that the likely-happened-before relation is not
necessarily transitive, so the kept-edge tournament may be cyclic and a
minimum feedback arc set is NP-hard to find.  Three practical policies are
provided:

* :func:`break_cycles_greedy` — repeatedly remove the lowest-probability edge
  that participates in a cycle (a deterministic approximation of the minimum
  feedback arc set, biased toward ignoring the least-confident precedences).
* :func:`break_cycles_stochastic` — remove a random cycle edge with
  probability proportional to ``1 - p``; over many sequencing rounds no
  client's confident precedences are systematically discarded, realising the
  "stochastic fairness" direction the paper sketches.
* :func:`eades_linear_arrangement` — the Eades–Lin–Smyth greedy linear
  arrangement; edges pointing backwards in that arrangement form a feedback
  arc set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.relation import MessageKey, PairProbability


@dataclass(frozen=True)
class CycleResolution:
    """Outcome of a cycle-breaking pass."""

    removed_edges: Tuple[PairProbability, ...]
    policy: str
    was_cyclic: bool

    @property
    def removed_probability_mass(self) -> float:
        """Sum of probabilities of the removed (ignored) edges."""
        return float(sum(edge.probability for edge in self.removed_edges))


def _find_cycle(graph: nx.DiGraph) -> Optional[List[Tuple[MessageKey, MessageKey]]]:
    try:
        return [(u, v) for u, v, _direction in nx.find_cycle(graph, orientation="original")]
    except nx.NetworkXNoCycle:
        return None


def break_cycles_greedy(graph: nx.DiGraph) -> CycleResolution:
    """Remove the minimum-probability edge of some cycle until acyclic.

    Mutates ``graph`` in place and returns the removed edges.
    """
    removed: List[PairProbability] = []
    was_cyclic = not nx.is_directed_acyclic_graph(graph)
    while True:
        cycle = _find_cycle(graph)
        if cycle is None:
            break
        weakest = min(cycle, key=lambda edge: graph.edges[edge]["probability"])
        probability = float(graph.edges[weakest]["probability"])
        graph.remove_edge(*weakest)
        removed.append(
            PairProbability(source=weakest[0], target=weakest[1], probability=probability)
        )
    return CycleResolution(removed_edges=tuple(removed), policy="greedy", was_cyclic=was_cyclic)


def break_cycles_stochastic(graph: nx.DiGraph, rng: np.random.Generator) -> CycleResolution:
    """Remove a randomly chosen edge of each cycle, biased toward low probability.

    Each cycle edge is selected with probability proportional to ``1 - p``
    (plus a small floor so certain edges are never impossible to remove),
    yielding long-run stochastic fairness across repeated sequencing rounds.
    """
    removed: List[PairProbability] = []
    was_cyclic = not nx.is_directed_acyclic_graph(graph)
    while True:
        cycle = _find_cycle(graph)
        if cycle is None:
            break
        weights = np.asarray(
            [1.0 - float(graph.edges[edge]["probability"]) + 1e-6 for edge in cycle], dtype=float
        )
        weights = weights / weights.sum()
        index = int(rng.choice(len(cycle), p=weights))
        victim = cycle[index]
        probability = float(graph.edges[victim]["probability"])
        graph.remove_edge(*victim)
        removed.append(PairProbability(source=victim[0], target=victim[1], probability=probability))
    return CycleResolution(removed_edges=tuple(removed), policy="stochastic", was_cyclic=was_cyclic)


def eades_linear_arrangement(graph: nx.DiGraph) -> List[MessageKey]:
    """Eades–Lin–Smyth greedy linear arrangement of a directed graph.

    Produces an ordering of the nodes such that the set of edges pointing
    backwards (from a later to an earlier node) is a small feedback arc set.
    The input graph is not modified.
    """
    working = graph.copy()
    left: List[MessageKey] = []
    right: List[MessageKey] = []
    while working.number_of_nodes():
        # peel off sinks to the right
        progressed = True
        while progressed:
            progressed = False
            sinks = [node for node in working.nodes if working.out_degree(node) == 0]
            for sink in sorted(sinks):
                right.append(sink)
                working.remove_node(sink)
                progressed = True
            sources = [node for node in working.nodes if working.in_degree(node) == 0]
            for source in sorted(sources):
                left.append(source)
                working.remove_node(source)
                progressed = True
        if not working.number_of_nodes():
            break
        # pick the node maximising out-degree minus in-degree
        best = max(
            working.nodes,
            key=lambda node: (working.out_degree(node) - working.in_degree(node), node),
        )
        left.append(best)
        working.remove_node(best)
    return left + list(reversed(right))


def remove_backward_edges(graph: nx.DiGraph, order: List[MessageKey]) -> CycleResolution:
    """Remove every edge pointing backwards with respect to ``order``."""
    position: Dict[MessageKey, int] = {node: index for index, node in enumerate(order)}
    was_cyclic = not nx.is_directed_acyclic_graph(graph)
    removed: List[PairProbability] = []
    for source, target in list(graph.edges):
        if position[source] > position[target]:
            probability = float(graph.edges[source, target]["probability"])
            graph.remove_edge(source, target)
            removed.append(PairProbability(source=source, target=target, probability=probability))
    return CycleResolution(removed_edges=tuple(removed), policy="eades", was_cyclic=was_cyclic)


def resolve_cycles(
    graph: nx.DiGraph, policy: str, rng: Optional[np.random.Generator] = None
) -> CycleResolution:
    """Apply the configured cycle-breaking ``policy`` to ``graph`` in place."""
    if nx.is_directed_acyclic_graph(graph):
        return CycleResolution(removed_edges=(), policy=policy, was_cyclic=False)
    if policy == "greedy":
        return break_cycles_greedy(graph)
    if policy == "stochastic":
        if rng is None:
            rng = np.random.default_rng(0)
        return break_cycles_stochastic(graph, rng)
    if policy == "eades":
        order = eades_linear_arrangement(graph)
        return remove_backward_edges(graph, order)
    raise ValueError(f"unknown cycle policy {policy!r}")
