"""Fair total order extension (paper §5, "Extension to Fair Total Order").

Tommy emits ranked batches (a fair partial order).  Some applications need a
total order on messages.  Breaking ties inside a batch arbitrarily would let
some clients systematically win, so ties are broken *uniformly at random*;
over many batches no client is preferred, which is the stochastic-fairness
property the paper suggests.  :class:`FairTotalOrder` performs the tie-break
and keeps per-client win/loss statistics so experiments (and tests) can check
the long-run fairness claim.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.network.message import SequencedBatch, TimestampedMessage
from repro.sequencers.base import SequencingResult


@dataclass(frozen=True)
class TieBreakRecord:
    """Bookkeeping for one batch's tie-break."""

    rank: int
    batch_size: int
    winner_client: str
    order: Tuple[Tuple[str, int], ...]


class FairTotalOrder:
    """Randomised tie-breaking of batches into a total message order."""

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._records: List[TieBreakRecord] = []
        self._first_counts: Dict[str, int] = defaultdict(int)
        self._appearance_counts: Dict[str, int] = defaultdict(int)

    # --------------------------------------------------------------- shuffle
    def order_batch(self, batch: SequencedBatch) -> List[TimestampedMessage]:
        """Return the batch's messages in a uniformly random order."""
        messages = list(batch.messages)
        permutation = self._rng.permutation(len(messages))
        ordered = [messages[index] for index in permutation]
        for message in messages:
            self._appearance_counts[message.client_id] += 1
        self._first_counts[ordered[0].client_id] += 1
        self._records.append(
            TieBreakRecord(
                rank=batch.rank,
                batch_size=batch.size,
                winner_client=ordered[0].client_id,
                order=tuple(message.key for message in ordered),
            )
        )
        return ordered

    def totalize(self, result: SequencingResult) -> List[TimestampedMessage]:
        """Flatten a batched sequencing result into a total order."""
        total: List[TimestampedMessage] = []
        for batch in result.batches:
            total.extend(self.order_batch(batch))
        return total

    # ------------------------------------------------------------ statistics
    @property
    def records(self) -> List[TieBreakRecord]:
        """All tie-break records so far."""
        return list(self._records)

    def first_position_share(self) -> Dict[str, float]:
        """Fraction of batches each client won the first position of.

        Only batches the client actually appeared in are counted in its
        denominator, so under uniform tie-breaking the share converges to
        ``1 / batch_size`` for symmetric workloads.
        """
        shares: Dict[str, float] = {}
        for client, appearances in self._appearance_counts.items():
            if appearances:
                shares[client] = self._first_counts.get(client, 0) / appearances
        return shares

    def win_counts(self) -> Dict[str, int]:
        """Raw first-position counts per client."""
        return dict(self._first_counts)
