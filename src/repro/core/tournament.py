"""Tournament graph construction and linear-order extraction (paper §3.4).

Every message is a node; between each pair of nodes the direction with the
higher preceding-probability is kept (the paper assumes no exact ties; we
break ties deterministically and count them).  When the probabilities are
transitive the tournament is a *transitive tournament* with a unique
Hamiltonian path / topological order.  Otherwise the graph contains cycles
and a cycle-breaking policy from :mod:`repro.core.cycles` is applied first.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import networkx as nx

from repro.core.relation import LikelyHappenedBefore, MessageKey, PairProbability


@dataclass
class TournamentGraph:
    """Directed tournament over message keys with probability edge weights."""

    graph: nx.DiGraph
    relation: LikelyHappenedBefore
    tie_count: int = 0
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------- factories
    @classmethod
    def from_relation(
        cls, relation: LikelyHappenedBefore, tie_epsilon: float = 0.0
    ) -> "TournamentGraph":
        """Keep, for every unordered pair, the direction with probability >= 0.5.

        Probabilities within ``tie_epsilon`` of 0.5 are counted as ties and
        oriented deterministically (by message key) so the result remains a
        tournament, as the paper's construction requires.
        """
        graph = nx.DiGraph()
        keys = relation.message_keys
        graph.add_nodes_from(keys)
        ties = 0
        for index_i in range(len(keys)):
            for index_j in range(index_i + 1, len(keys)):
                key_i, key_j = keys[index_i], keys[index_j]
                forward = relation.probability(key_i, key_j)
                backward = 1.0 - forward
                if abs(forward - 0.5) <= tie_epsilon:
                    ties += 1
                    source, target, weight = (
                        (key_i, key_j, forward) if key_i <= key_j else (key_j, key_i, backward)
                    )
                elif forward > backward:
                    source, target, weight = key_i, key_j, forward
                else:
                    source, target, weight = key_j, key_i, backward
                graph.add_edge(source, target, probability=float(weight))
        return cls(graph=graph, relation=relation, tie_count=ties)

    # --------------------------------------------------------------- queries
    @property
    def node_count(self) -> int:
        """Number of messages (nodes)."""
        return self.graph.number_of_nodes()

    @property
    def edge_count(self) -> int:
        """Number of kept directed edges (``n*(n-1)/2`` for a tournament)."""
        return self.graph.number_of_edges()

    def probability(self, source: MessageKey, target: MessageKey) -> float:
        """Probability annotating the kept edge ``source -> target``."""
        return float(self.graph.edges[source, target]["probability"])

    def edges(self) -> List[PairProbability]:
        """All kept edges as :class:`PairProbability` records."""
        return [
            PairProbability(source=source, target=target, probability=float(data["probability"]))
            for source, target, data in self.graph.edges(data=True)
        ]

    def is_acyclic(self) -> bool:
        """True when the kept-edge graph has no directed cycles."""
        return nx.is_directed_acyclic_graph(self.graph)

    def is_transitive_tournament(self) -> bool:
        """True when the kept-edge relation is transitive.

        For a tournament, transitivity is equivalent to acyclicity, but we
        verify the triple condition directly so the method also works on
        graphs from which cycle-breaking removed edges.
        """
        for a in self.graph.nodes:
            for b in self.graph.successors(a):
                for c in self.graph.successors(b):
                    if c != a and not self.graph.has_edge(a, c) and self.graph.has_edge(c, a):
                        return False
        return self.is_acyclic()

    def cycles(self, limit: Optional[int] = 32) -> List[List[MessageKey]]:
        """A sample of directed cycles (empty when acyclic)."""
        if self.is_acyclic():
            return []
        found = []
        for cycle in nx.simple_cycles(self.graph):
            found.append(list(cycle))
            if limit is not None and len(found) >= limit:
                break
        return found

    # --------------------------------------------------------- linear orders
    def topological_order(self) -> List[MessageKey]:
        """A topological order of the (acyclic) kept-edge graph.

        For a transitive tournament this order is unique (the Hamiltonian
        path); ties introduced by removed edges are broken by descending
        out-degree, then by message key, for determinism.
        """
        if not self.is_acyclic():
            raise ValueError("graph is cyclic; apply a cycle-breaking policy first")
        out_degree = dict(self.graph.out_degree())
        return list(
            nx.lexicographical_topological_sort(
                self.graph, key=lambda node: (-out_degree.get(node, 0), node)
            )
        )

    def hamiltonian_order(self) -> List[MessageKey]:
        """Linear order by descending out-degree (score sequence).

        For a transitive tournament this equals the unique topological order;
        it is also a reasonable heuristic arrangement for near-transitive
        tournaments and is used by tests as a cross-check.
        """
        out_degree = dict(self.graph.out_degree())
        return sorted(self.graph.nodes, key=lambda node: (-out_degree.get(node, 0), node))

    def adjacent_probabilities(self, order: Sequence[MessageKey]) -> List[float]:
        """Preceding-probabilities of adjacent pairs along ``order``.

        Uses the relation's probability (not the possibly-removed edge), so
        the batching stage sees a probability for every adjacent pair even
        after cycle-breaking.
        """
        probabilities = []
        for earlier, later in zip(order, order[1:]):
            probabilities.append(self.relation.probability(earlier, later))
        return probabilities
