"""Threshold batching of a linear message order (paper §3.4).

Given the extracted linear order and the preceding-probabilities of adjacent
messages, a batch boundary is inserted between messages ``i`` and ``j``
whenever ``P(i precedes j) > threshold``.  Messages that cannot be separated
confidently share a batch; batches receive consecutive ranks starting at 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.relation import LikelyHappenedBefore, MessageKey
from repro.network.message import SequencedBatch, TimestampedMessage


@dataclass(frozen=True)
class BatchingOutcome:
    """Batches plus the boundary decisions that produced them."""

    batches: Tuple[SequencedBatch, ...]
    boundary_probabilities: Tuple[float, ...]
    threshold: float

    @property
    def batch_count(self) -> int:
        """Number of batches."""
        return len(self.batches)

    @property
    def batch_sizes(self) -> Tuple[int, ...]:
        """Batch sizes in rank order."""
        return tuple(batch.size for batch in self.batches)

    @property
    def largest_batch(self) -> int:
        """Size of the largest batch (0 when there are no batches)."""
        return max(self.batch_sizes, default=0)

    @property
    def singleton_fraction(self) -> float:
        """Fraction of batches containing exactly one message (ideal fairness)."""
        if not self.batches:
            return 0.0
        singles = sum(1 for batch in self.batches if batch.size == 1)
        return singles / len(self.batches)


def _strict_boundary_strengths(
    order: Sequence[MessageKey], relation: LikelyHappenedBefore
) -> List[float]:
    """Strength of every potential boundary under the strict (all-pairs) rule.

    The strength of the boundary after position ``k`` is
    ``min_{i <= k < j} P(order[i] precedes order[j])`` — the least confident
    pair straddling the boundary.  Each row ``i`` is folded right-to-left so
    that ``suffix_min`` equals ``min_{j' >= j} P(order[i], order[j'])`` when
    visiting column ``j``; that value is row ``i``'s exact contribution to
    the boundary after ``j - 1``.  One O(1) update per pair — the previous
    implementation re-scanned an O(n) slice per boundary on top of the pair
    loop (src of the hot-path regression this replaced).
    """
    n = len(order)
    if n < 2:
        return []
    strengths = [float("inf")] * (n - 1)
    for i in range(n - 1):
        suffix_min = float("inf")
        for j in range(n - 1, i, -1):
            probability = relation.probability(order[i], order[j])
            if probability < suffix_min:
                suffix_min = probability
            if suffix_min < strengths[j - 1]:
                strengths[j - 1] = suffix_min
    return strengths


def form_batches(
    order: Sequence[MessageKey],
    relation: LikelyHappenedBefore,
    threshold: float,
    mode: str = "adjacent",
) -> BatchingOutcome:
    """Split ``order`` into ranked batches at confident boundaries.

    Parameters
    ----------
    order:
        Linear order of message keys (from the tournament stage).
    relation:
        The likely-happened-before relation supplying pair probabilities.
    threshold:
        Boundary confidence threshold in ``[0.5, 1)``; the paper uses 0.75.
    mode:
        ``"adjacent"`` (paper §3.4): a boundary is created between adjacent
        messages ``i, j`` whenever ``P(i precedes j) > threshold``.
        ``"strict"`` (paper Appendix C / online sequencing): a boundary is
        only created when *every* pair straddling it exceeds the threshold,
        so a single high-uncertainty message pulls otherwise-separable
        messages into its batch.
    """
    if not 0.5 <= threshold < 1.0:
        raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
    if mode not in {"adjacent", "strict"}:
        raise ValueError(f"unknown batching mode {mode!r}")
    order = list(order)
    if not order:
        return BatchingOutcome(batches=(), boundary_probabilities=(), threshold=threshold)

    if mode == "adjacent":
        boundary_strengths = [
            relation.probability(earlier_key, later_key)
            for earlier_key, later_key in zip(order, order[1:])
        ]
    else:
        boundary_strengths = _strict_boundary_strengths(order, relation)

    groups: List[List[TimestampedMessage]] = [[relation.message(order[0])]]
    for strength, later_key in zip(boundary_strengths, order[1:]):
        if strength > threshold:
            groups.append([relation.message(later_key)])
        else:
            groups[-1].append(relation.message(later_key))

    batches = tuple(
        SequencedBatch(rank=rank, messages=tuple(group)) for rank, group in enumerate(groups)
    )
    return BatchingOutcome(
        batches=batches,
        boundary_probabilities=tuple(boundary_strengths),
        threshold=threshold,
    )
