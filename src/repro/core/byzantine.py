"""Byzantine-client timestamp auditing (paper §5, "Byzantine Clients").

In auction-apps a client has an incentive to back-date its timestamps to win
trades.  A full Byzantine-ordered-consensus treatment (Pompe) is out of
scope; this module implements the mitigation direction the paper sketches:
the sequencer cross-checks every reported timestamp against the message's
arrival time.  Because ``arrival = true_time + network_delay`` and
``reported = true_time + eps``, the difference ``reported - arrival`` must lie
in ``[q_lo(eps) - max_delay, q_hi(eps) - min_delay]`` for an honest client.
Violations accumulate into a per-client suspicion score; policies can clamp
implausible timestamps or exclude repeat offenders.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.distributions.base import OffsetDistribution
from repro.network.message import TimestampedMessage


@dataclass(frozen=True)
class TimestampAuditVerdict:
    """The auditor's judgement for one message."""

    message_key: Tuple[str, int]
    client_id: str
    plausible: bool
    deviation: float
    lower_bound: float
    upper_bound: float
    clamped_timestamp: Optional[float] = None

    @property
    def suspicious(self) -> bool:
        """Convenience alias: the message failed the plausibility check."""
        return not self.plausible


class ByzantineAuditor:
    """Per-message timestamp plausibility checks with per-client scoring."""

    def __init__(
        self,
        client_distributions: Dict[str, OffsetDistribution],
        min_network_delay: float = 0.0,
        max_network_delay: float = 1.0,
        tail_probability: float = 1e-4,
        exclusion_threshold: int = 3,
    ) -> None:
        if max_network_delay < min_network_delay:
            raise ValueError("max_network_delay must be >= min_network_delay")
        if min_network_delay < 0:
            raise ValueError("min_network_delay must be non-negative")
        if not 0.0 < tail_probability < 0.5:
            raise ValueError("tail_probability must be in (0, 0.5)")
        if exclusion_threshold < 1:
            raise ValueError("exclusion_threshold must be at least 1")
        self._distributions = dict(client_distributions)
        self._min_delay = float(min_network_delay)
        self._max_delay = float(max_network_delay)
        self._tail = float(tail_probability)
        self._exclusion_threshold = int(exclusion_threshold)
        self._violations: Dict[str, int] = defaultdict(int)
        self._checks: Dict[str, int] = defaultdict(int)
        self._verdicts: List[TimestampAuditVerdict] = []

    # ------------------------------------------------------------- accessors
    @property
    def exclusion_threshold(self) -> int:
        """Number of violations after which a client is excluded."""
        return self._exclusion_threshold

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Add or replace a client's clock-error distribution."""
        self._distributions[client_id] = distribution

    def violation_count(self, client_id: str) -> int:
        """Number of implausible timestamps observed from ``client_id``."""
        return self._violations.get(client_id, 0)

    def suspicion_score(self, client_id: str) -> float:
        """Fraction of audited messages from ``client_id`` that were implausible."""
        checks = self._checks.get(client_id, 0)
        if checks == 0:
            return 0.0
        return self._violations.get(client_id, 0) / checks

    def is_excluded(self, client_id: str) -> bool:
        """True once a client's violations reach the exclusion threshold."""
        return self._violations.get(client_id, 0) >= self._exclusion_threshold

    def excluded_clients(self) -> List[str]:
        """All clients currently excluded."""
        return sorted(client for client in self._violations if self.is_excluded(client))

    @property
    def verdicts(self) -> List[TimestampAuditVerdict]:
        """All verdicts issued so far."""
        return list(self._verdicts)

    # ----------------------------------------------------------------- audit
    def plausible_bounds(self, client_id: str) -> Tuple[float, float]:
        """Plausible range of ``reported - arrival`` for an honest client."""
        if client_id not in self._distributions:
            raise KeyError(f"no clock-error distribution registered for client {client_id!r}")
        distribution = self._distributions[client_id]
        eps_lo = distribution.quantile(self._tail)
        eps_hi = distribution.quantile(1.0 - self._tail)
        return (eps_lo - self._max_delay, eps_hi - self._min_delay)

    def audit(self, message: TimestampedMessage, arrival_time: float) -> TimestampAuditVerdict:
        """Audit one message given its sequencer-clock arrival time."""
        lower, upper = self.plausible_bounds(message.client_id)
        deviation = message.timestamp - float(arrival_time)
        plausible = lower <= deviation <= upper
        clamped: Optional[float] = None
        if not plausible:
            clamped = float(arrival_time) + (lower if deviation < lower else upper)
        self._checks[message.client_id] += 1
        if not plausible:
            self._violations[message.client_id] += 1
        verdict = TimestampAuditVerdict(
            message_key=message.key,
            client_id=message.client_id,
            plausible=plausible,
            deviation=deviation,
            lower_bound=lower,
            upper_bound=upper,
            clamped_timestamp=clamped,
        )
        self._verdicts.append(verdict)
        return verdict

    def sanitize(
        self, message: TimestampedMessage, arrival_time: float
    ) -> Optional[TimestampedMessage]:
        """Audit and mitigate: clamp implausible timestamps, drop excluded clients.

        Returns ``None`` when the client is excluded, the original message
        when it is plausible, and a timestamp-clamped copy otherwise.
        """
        verdict = self.audit(message, arrival_time)
        if self.is_excluded(message.client_id):
            return None
        if verdict.plausible:
            return message
        return message.with_timestamp(verdict.clamped_timestamp)
