"""Configuration for the Tommy sequencer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TommyConfig:
    """Hyper-parameters of the Tommy sequencer.

    Attributes
    ----------
    threshold:
        Confidence threshold for inserting a batch boundary between adjacent
        messages in the extracted linear order (paper §3.4; 0.75 in the
        paper's evaluation).  Values closer to 1 create fewer, larger batches
        (more confidence, less fairness granularity); values closer to 0.5
        approach a total order.
    p_safe:
        Confidence level for the safe-emission time of a batch in online
        sequencing (paper §3.5; e.g. 0.999).
    probability_method:
        ``"auto"`` (Gaussian closed form when possible, FFT otherwise),
        ``"gaussian"``, ``"fft"`` or ``"direct"`` — forwarded to
        :func:`repro.distributions.difference_distribution`.
    convolution_points:
        Grid resolution used by the numerical convolution paths.
    cycle_policy:
        How to handle an intransitive (cyclic) tournament: ``"greedy"``
        removes minimum-probability edges until acyclic, ``"stochastic"``
        removes cycle edges randomly weighted toward low-probability edges
        (long-run stochastic fairness), ``"eades"`` uses the Eades–Lin–Smyth
        linear-arrangement heuristic.
    batching_mode:
        ``"adjacent"`` applies the paper's §3.4 rule (boundary between
        adjacent messages whose preceding probability exceeds the
        threshold); ``"strict"`` additionally requires every pair straddling
        the boundary to be confident (the Appendix C behaviour, and the rule
        the online sequencer always uses for its tentative batches).
    completeness_mode:
        Online sequencing completeness rule (Q2): ``"heartbeat"`` waits for a
        message/heartbeat with a later timestamp from every client (requires
        ordered channels); ``"bounded_delay"`` waits ``max_network_delay``
        after a message's timestamp; ``"none"`` disables the check.
    max_network_delay:
        Bound used by the ``"bounded_delay"`` completeness mode.
    max_batch_age:
        Liveness guard for online sequencing (paper §3.5 notes that an
        adverse arrival pattern or a failed client can block emission
        indefinitely; the heartbeat rule "may cost liveness").  When set, a
        candidate batch whose oldest message has been pending longer than
        this many seconds is force-emitted even if the completeness rule or
        the safe-emission wait has not been satisfied.  ``None`` (default)
        preserves the paper's blocking behaviour.
    tie_epsilon:
        Probabilities within ``tie_epsilon`` of 0.5 are treated as exact ties
        when building the tournament (the paper assumes no ties; we break
        them deterministically by message id and record the count).
    """

    threshold: float = 0.75
    p_safe: float = 0.999
    probability_method: str = "auto"
    convolution_points: int = 2048
    cycle_policy: str = "greedy"
    batching_mode: str = "adjacent"
    completeness_mode: str = "heartbeat"
    max_network_delay: float = 0.0
    max_batch_age: Optional[float] = None
    tie_epsilon: float = 0.0
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.5 <= self.threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {self.threshold!r}")
        if self.batching_mode not in {"adjacent", "strict"}:
            raise ValueError(f"unknown batching_mode {self.batching_mode!r}")
        if not 0.5 < self.p_safe < 1.0:
            raise ValueError(f"p_safe must be in (0.5, 1), got {self.p_safe!r}")
        if self.probability_method not in {"auto", "gaussian", "fft", "direct"}:
            raise ValueError(f"unknown probability_method {self.probability_method!r}")
        if self.convolution_points < 16:
            raise ValueError("convolution_points must be at least 16")
        if self.cycle_policy not in {"greedy", "stochastic", "eades"}:
            raise ValueError(f"unknown cycle_policy {self.cycle_policy!r}")
        if self.completeness_mode not in {"heartbeat", "bounded_delay", "none"}:
            raise ValueError(f"unknown completeness_mode {self.completeness_mode!r}")
        if self.max_network_delay < 0:
            raise ValueError("max_network_delay must be non-negative")
        if self.max_batch_age is not None and self.max_batch_age <= 0:
            raise ValueError("max_batch_age must be positive when given")
        if not 0.0 <= self.tie_epsilon < 0.5:
            raise ValueError("tie_epsilon must be in [0, 0.5)")

    def _replace(self, **overrides: object) -> "TommyConfig":
        fields = {
            "threshold": self.threshold,
            "p_safe": self.p_safe,
            "probability_method": self.probability_method,
            "convolution_points": self.convolution_points,
            "cycle_policy": self.cycle_policy,
            "batching_mode": self.batching_mode,
            "completeness_mode": self.completeness_mode,
            "max_network_delay": self.max_network_delay,
            "max_batch_age": self.max_batch_age,
            "tie_epsilon": self.tie_epsilon,
            "seed": self.seed,
        }
        fields.update(overrides)
        return TommyConfig(**fields)

    def with_threshold(self, threshold: float) -> "TommyConfig":
        """Copy of this configuration with a different batching threshold."""
        return self._replace(threshold=threshold)

    def with_p_safe(self, p_safe: float) -> "TommyConfig":
        """Copy of this configuration with a different safe-emission confidence."""
        return self._replace(p_safe=p_safe)
