"""Preceding-probability computation (paper §3.2 and §3.3).

Given messages ``i`` and ``j`` with reported timestamps ``T_i`` and ``T_j``
and per-client clock-error distributions ``f_i`` and ``f_j`` (of
``epsilon = reported - true``), the probability that ``i`` was truly
generated before ``j`` is::

    P(T*_i < T*_j | T_i, T_j) = P(T_i - eps_i < T_j - eps_j)
                              = P(eps_j - eps_i < T_j - T_i)
                              = CDF_{delta}(T_j - T_i),   delta = eps_j - eps_i

For independent Gaussian errors this is the closed form
``Phi((T_j - T_i - (mu_j - mu_i)) / sqrt(sigma_i^2 + sigma_j^2))``;
otherwise the difference density is obtained by (FFT) convolution of the two
error densities (:mod:`repro.distributions.difference`).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from scipy import special

from repro.distributions.base import OffsetDistribution
from repro.distributions.difference import DifferenceDistribution, difference_distribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage


def _standard_normal_cdf(x: float) -> float:
    # scipy's erf kernel (not math.erf, which can differ by 1 ulp) so that the
    # scalar path and the vectorized engine path agree bit-for-bit
    return 0.5 * (1.0 + float(special.erf(x / math.sqrt(2.0))))


def gaussian_preceding_probability(
    timestamp_i: float,
    timestamp_j: float,
    dist_i: GaussianDistribution,
    dist_j: GaussianDistribution,
) -> float:
    """Closed-form preceding probability for Gaussian clock errors.

    Matches the paper's §3.2 expression (stated there in the ``theta = -epsilon``
    convention); derived here for the ``epsilon = reported - true`` convention.
    """
    variance = dist_i.variance + dist_j.variance
    gap = timestamp_j - timestamp_i - (dist_j.mean - dist_i.mean)
    if variance <= 0:
        if gap > 0:
            return 1.0
        if gap < 0:
            return 0.0
        return 0.5
    return _standard_normal_cdf(gap / math.sqrt(variance))


class PrecedenceModel:
    """Computes preceding-probabilities from per-client error distributions.

    The model caches the pairwise difference distribution for each ordered
    client pair so that sequencing ``n`` messages from ``c`` clients costs at
    most ``c^2`` convolutions regardless of ``n`` (the optimisation paper
    §3.3 motivates with FFT).
    """

    def __init__(self, method: str = "auto", convolution_points: int = 2048) -> None:
        if method not in {"auto", "gaussian", "fft", "direct"}:
            raise ValueError(f"unknown method {method!r}")
        self._method = method
        self._points = int(convolution_points)
        self._distributions: Dict[str, OffsetDistribution] = {}
        self._pair_cache: Dict[Tuple[str, str], DifferenceDistribution] = {}
        self._versions: Dict[str, int] = {}
        self._probability_evaluations = 0

    # --------------------------------------------------------------- clients
    @property
    def method(self) -> str:
        """Probability computation method."""
        return self._method

    @property
    def client_ids(self) -> Tuple[str, ...]:
        """Registered client ids (sorted)."""
        return tuple(sorted(self._distributions))

    @property
    def probability_evaluations(self) -> int:
        """Number of pairwise probability evaluations performed."""
        return self._probability_evaluations

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register (or replace) the clock-error distribution of ``client_id``.

        Replacing a distribution invalidates the cached pairwise differences
        involving that client.
        """
        if not client_id:
            raise ValueError("client_id must be non-empty")
        self._distributions[client_id] = distribution
        self._versions[client_id] = self._versions.get(client_id, 0) + 1
        self._pair_cache = {
            pair: diff for pair, diff in self._pair_cache.items() if client_id not in pair
        }

    def client_version(self, client_id: str) -> int:
        """Monotone registration counter for ``client_id`` (0 if unknown).

        Bumped on every (re)registration; derived caches (the engine's
        pair-CDF tables) compare versions to detect distribution refreshes
        that happened through *any* registration path.
        """
        return self._versions.get(client_id, 0)

    def has_client(self, client_id: str) -> bool:
        """True when a distribution is registered for ``client_id``."""
        return client_id in self._distributions

    def distribution_for(self, client_id: str) -> OffsetDistribution:
        """The registered error distribution of ``client_id``."""
        try:
            return self._distributions[client_id]
        except KeyError:
            raise KeyError(
                f"no clock-error distribution registered for client {client_id!r}"
            ) from None

    # --------------------------------------------------------- probabilities
    def pair_difference(self, client_i: str, client_j: str) -> DifferenceDistribution:
        """Distribution of ``eps_j - eps_i`` for the ordered client pair."""
        key = (client_i, client_j)
        if key not in self._pair_cache:
            dist_i = self.distribution_for(client_i)
            dist_j = self.distribution_for(client_j)
            self._pair_cache[key] = difference_distribution(
                dist_i, dist_j, method=self._method, num_points=self._points
            )
        return self._pair_cache[key]

    def pair_cdf_table(self, client_i: str, client_j: str) -> Optional[Tuple]:
        """``(grid, cdf)`` arrays of the pair's difference CDF, when tabulated.

        This is the handle the vectorized precedence engine uses: evaluating
        ``np.interp`` against these exact arrays reproduces the scalar
        :meth:`preceding_probability` bit-for-bit for grid-backed pairs.
        Closed-form (Gaussian/Gaussian under ``auto``/``gaussian``) pairs
        return ``None`` — they are served by the closed-form kernel.
        """
        dist_i = self.distribution_for(client_i)
        dist_j = self.distribution_for(client_j)
        use_closed_form = (
            self._method in {"auto", "gaussian"}
            and isinstance(dist_i, GaussianDistribution)
            and isinstance(dist_j, GaussianDistribution)
        )
        if use_closed_form:
            return None
        return self.pair_difference(client_i, client_j).cdf_table()

    def preceding_probability(
        self, message_i: TimestampedMessage, message_j: TimestampedMessage
    ) -> float:
        """``P(message_i generated before message_j)`` from timestamps alone."""
        return self.preceding_probability_for(
            message_i.client_id, message_i.timestamp, message_j.client_id, message_j.timestamp
        )

    def preceding_probability_for(
        self,
        client_i: str,
        timestamp_i: float,
        client_j: str,
        timestamp_j: float,
    ) -> float:
        """Preceding probability given raw client ids and timestamps."""
        self._probability_evaluations += 1
        dist_i = self.distribution_for(client_i)
        dist_j = self.distribution_for(client_j)
        use_closed_form = (
            self._method in {"auto", "gaussian"}
            and isinstance(dist_i, GaussianDistribution)
            and isinstance(dist_j, GaussianDistribution)
        )
        if use_closed_form:
            return gaussian_preceding_probability(timestamp_i, timestamp_j, dist_i, dist_j)
        difference = self.pair_difference(client_i, client_j)
        return difference.preceding_probability(timestamp_i, timestamp_j)

    # ------------------------------------------------------ safe-emission T^F
    def safe_emission_time(self, message: TimestampedMessage, p_safe: float) -> float:
        """Future (sequencer-clock) time ``T^F`` with ``P(T* < T^F) > p_safe``.

        Because ``T* = T - eps``, ``P(T* < T^F) = P(eps > T - T^F)`` and the
        smallest safe ``T^F`` is ``T - Q_eps(1 - p_safe)`` where ``Q_eps`` is
        the error distribution's quantile function (paper §3.5 suggests a
        binary search; the quantile is that search done once per
        distribution).
        """
        if not 0.5 < p_safe < 1.0:
            raise ValueError(f"p_safe must be in (0.5, 1), got {p_safe!r}")
        distribution = self.distribution_for(message.client_id)
        return message.timestamp - distribution.quantile(1.0 - p_safe)
