"""Incremental, vectorized precedence engine (the online hot path).

The online sequencer must re-derive its tentative batching on every arrival.
The original implementation rebuilt the full
:class:`~repro.core.relation.LikelyHappenedBefore` relation, the kept-edge
tournament and the strict-boundary minima from scratch each time — ``O(n^2)``
scalar probability evaluations per arrival over the pending set.  This module
keeps all of that state *incremental* and evaluates it in batched numpy:

* the pairwise preceding-probability matrix gains one row/column per arrival.
  Gaussian client pairs are a single vectorized evaluation of the §3.2
  closed form; **empirical/learned/mixture pairs** are a vectorized
  ``np.interp`` against the pair's cached difference-CDF table
  (:class:`PairTableCache` — one FFT convolution per client pair, shared by
  every message of that pair), so non-Gaussian clients no longer fall back
  to per-pair scalar FFT evaluations;
* the kept-edge tournament is maintained as a boolean *direction matrix*
  plus an out-degree (score) vector — pure numpy per arrival.  Only when the
  tournament is intransitive (cyclic) is a :mod:`networkx` graph
  materialised, in exactly the node/edge insertion order the previous
  incremental graph (and :meth:`~repro.core.tournament.TournamentGraph.from_relation`)
  would have produced, so cycle detection, cycle-breaking and the
  deterministic topological tie-break replay the reference behaviour
  verbatim;
* the strict batching rule's boundary strengths are vectorized
  cumulative-minimum passes; the emission check uses
  :meth:`IncrementalPrecedenceEngine.first_tentative_group`, an ``O(k·n)``
  prefix scan (``k`` = first-batch size) that avoids materialising the full
  permuted matrix on every arrival;
* the safe-emission quantile ``Q_eps(1 - p_safe)`` is cached per
  ``(client, p_safe)`` so :meth:`safe_emission_time` is a subtraction, not a
  quantile search per message.

The engine is *behavior preserving*: for the same arrival stream it yields
byte-identical tentative groups, safe-emission times and therefore emitted
batches as the reference recompute-everything path (kept available via
``OnlineTommySequencer(..., use_engine=False)`` and property-tested against
it).  Gaussian probabilities reuse the exact floating-point expression of
:func:`~repro.core.probability.gaussian_preceding_probability`; table-backed
probabilities evaluate ``np.interp`` against the *same* grid/CDF arrays the
scalar :class:`~repro.distributions.difference.DifferenceDistribution` path
reads, so both agree bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np
from scipy import special

from repro.core.cycles import resolve_cycles
from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore, MessageKey
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage

_SQRT2 = math.sqrt(2.0)

#: Element budget per column block of the closed-form Gaussian broadcast
#: (~2 MB of float64 per temporary keeps the whole evaluation in cache).
_GAUSSIAN_BLOCK_ELEMENTS = 1 << 18


@dataclass
class EngineStats:
    """Counters describing how the engine computed its probabilities."""

    vectorized_evaluations: int = 0
    table_evaluations: int = 0
    scalar_evaluations: int = 0
    pair_tables_built: int = 0
    rows_appended: int = 0
    rows_removed: int = 0
    group_computations: int = 0
    cycle_resolutions: int = 0
    rebuilds: int = 0
    quantile_cache_hits: int = 0
    quantile_cache_misses: int = 0
    block_appends: int = 0
    pruned_pairs: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Flat dictionary view (for result metadata and benchmarks)."""
        return {
            "vectorized_evaluations": self.vectorized_evaluations,
            "table_evaluations": self.table_evaluations,
            "scalar_evaluations": self.scalar_evaluations,
            "pair_tables_built": self.pair_tables_built,
            "rows_appended": self.rows_appended,
            "rows_removed": self.rows_removed,
            "group_computations": self.group_computations,
            "cycle_resolutions": self.cycle_resolutions,
            "rebuilds": self.rebuilds,
            "quantile_cache_hits": self.quantile_cache_hits,
            "quantile_cache_misses": self.quantile_cache_misses,
            "block_appends": self.block_appends,
            "pruned_pairs": self.pruned_pairs,
        }

    def merge(self, other: "EngineStats") -> "EngineStats":
        """Element-wise sum with ``other`` (for cluster-wide aggregation)."""
        return EngineStats(
            **{key: getattr(self, key) + getattr(other, key) for key in self.as_dict()}
        )


def batched_gaussian_probabilities(
    timestamps_i: np.ndarray,
    means_i: np.ndarray,
    variances_i: np.ndarray,
    timestamp_j: float,
    mean_j: float,
    variance_j: float,
) -> np.ndarray:
    """Vectorized §3.2 closed form: ``P(i precedes j)`` for arrays of ``i``.

    Bit-for-bit identical to calling
    :func:`~repro.core.probability.gaussian_preceding_probability` per
    element — the same operation order and the same ``erf`` kernel.
    """
    variance = variances_i + variance_j
    gap = (timestamp_j - timestamps_i) - (mean_j - means_i)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = gap / np.sqrt(variance)
        phi = 0.5 * (1.0 + special.erf(z / _SQRT2))
    degenerate = np.where(gap > 0, 1.0, np.where(gap < 0, 0.0, 0.5))
    return np.where(variance > 0, phi, degenerate)


def batched_gaussian_pairs(
    timestamps_i: np.ndarray,
    means_i: np.ndarray,
    variances_i: np.ndarray,
    timestamps_j: np.ndarray,
    means_j: np.ndarray,
    variances_j: np.ndarray,
) -> np.ndarray:
    """Element-aligned §3.2 closed form: ``P(i_k precedes j_k)`` per index.

    The 1-D sibling of :func:`batched_gaussian_matrix`: both sides are
    message-parameter arrays of equal length and entry ``k`` pairs
    ``i[k]`` with ``j[k]``.  Element-wise identical to the broadcast form —
    the same operation order and the same ``erf`` kernel per entry.
    """
    variance = variances_i + variances_j
    gap = (timestamps_j - timestamps_i) - (means_j - means_i)
    with np.errstate(divide="ignore", invalid="ignore"):
        z = gap / np.sqrt(variance)
        phi = 0.5 * (1.0 + special.erf(z / _SQRT2))
    degenerate = np.where(gap > 0, 1.0, np.where(gap < 0, 0.0, 0.5))
    return np.where(variance > 0, phi, degenerate)


def batched_gaussian_matrix(
    timestamps_i: np.ndarray,
    means_i: np.ndarray,
    variances_i: np.ndarray,
    timestamps_j: np.ndarray,
    means_j: np.ndarray,
    variances_j: np.ndarray,
) -> np.ndarray:
    """2-D broadcast of the §3.2 closed form: ``M[i][j] = P(i precedes j)``.

    Element-wise identical to :func:`batched_gaussian_probabilities` called
    once per column ``j`` — the same operation order per element, broadcast
    over the outer product instead of looped.
    """
    variance = variances_i[:, None] + variances_j[None, :]
    gap = (timestamps_j[None, :] - timestamps_i[:, None]) - (
        means_j[None, :] - means_i[:, None]
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        z = gap / np.sqrt(variance)
        phi = 0.5 * (1.0 + special.erf(z / _SQRT2))
    degenerate = np.where(gap > 0, 1.0, np.where(gap < 0, 0.0, 0.5))
    return np.where(variance > 0, phi, degenerate)


def _gaussian_params(model: PrecedenceModel, client_id: str) -> Optional[Tuple[float, float]]:
    """``(mean, variance)`` when the closed form applies to ``client_id``."""
    if model.method not in {"auto", "gaussian"}:
        return None
    distribution = model.distribution_for(client_id)
    if not isinstance(distribution, GaussianDistribution):
        return None
    return (distribution.mean, distribution.variance)


def _cached_gaussian_params(
    model: PrecedenceModel,
    cache: Dict[str, Optional[Tuple[float, float]]],
    client_id: str,
) -> Optional[Tuple[float, float]]:
    """Memoized :func:`_gaussian_params` (shared by every vectorized path)."""
    if client_id not in cache:
        cache[client_id] = _gaussian_params(model, client_id)
    return cache[client_id]


class PairTableCache:
    """Per-client-pair difference-CDF tables for vectorized evaluation.

    ``table(i, j)`` returns the ``(grid, cdf)`` arrays of the pair's
    difference distribution (``None`` for closed-form Gaussian pairs, which
    the Gaussian kernel serves instead).  The table is the *exact* array pair
    the scalar model interpolates, so ``np.interp`` against it reproduces
    ``model.preceding_probability`` bit-for-bit.  The underlying FFT
    convolution runs once per ordered client pair (cached here *and* inside
    the model) regardless of how many messages the pair exchanges.
    """

    def __init__(self, model: PrecedenceModel, stats: Optional[EngineStats] = None) -> None:
        self._model = model
        self._stats = stats
        # key -> (version_i, version_j, table): the versions pin the client
        # registrations the table was derived from, so a distribution refresh
        # through *any* path (including model.register_client directly) is
        # detected on the next lookup instead of serving a stale table
        self._tables: Dict[
            Tuple[str, str], Tuple[int, int, Optional[Tuple[np.ndarray, np.ndarray]]]
        ] = {}

    @property
    def model(self) -> PrecedenceModel:
        """The model whose pair differences back the tables."""
        return self._model

    def table(self, client_i: str, client_j: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(grid, cdf)`` for the ordered pair, or ``None`` if closed form."""
        key = (client_i, client_j)
        version_i = self._model.client_version(client_i)
        version_j = self._model.client_version(client_j)
        cached = self._tables.get(key)
        if cached is not None and cached[0] == version_i and cached[1] == version_j:
            return cached[2]
        table = self._model.pair_cdf_table(client_i, client_j)
        self._tables[key] = (version_i, version_j, table)
        if table is not None and self._stats is not None:
            self._stats.pair_tables_built += 1
        return table

    def invalidate_client(self, client_id: str) -> None:
        """Drop every cached table involving ``client_id`` (distribution refresh)."""
        self._tables = {
            pair: table for pair, table in self._tables.items() if client_id not in pair
        }

    def clear(self) -> None:
        """Drop every cached table."""
        self._tables.clear()

    def __len__(self) -> int:
        return sum(1 for table in self._tables.values() if table is not None)


# np.interp's Python wrapper costs ~5us per call (asarray / iscomplexobj
# bookkeeping) — significant when the hot row loop interpolates one small
# group per client pair.  For real-valued fp the wrapper delegates verbatim
# to this compiled kernel, so calling it directly is bit-identical.  The
# kernel is a numpy internal with no stability guarantee, so it is
# feature-probed once at import (signature AND output vs np.interp) and any
# surprise falls back to the public wrapper.
def _wrapped_interp(x, xp, fp, left, right):
    return np.interp(x, xp, fp, left=left, right=right)


def _resolve_compiled_interp():
    try:  # numpy >= 2.0 layout
        from numpy._core.multiarray import interp as candidate
    except ImportError:  # pragma: no cover - numpy < 2.0 layout
        try:
            from numpy.core.multiarray import interp as candidate  # type: ignore
        except ImportError:
            return _wrapped_interp
    try:
        probe_x = np.array([-1.0, 0.25, 2.0])
        probe_xp = np.array([0.0, 0.5, 1.0])
        probe_fp = np.array([0.0, 0.25, 1.0])
        expected = np.interp(probe_x, probe_xp, probe_fp, left=0.0, right=1.0)
        if np.array_equal(candidate(probe_x, probe_xp, probe_fp, 0.0, 1.0), expected):
            return candidate
    except Exception:  # pragma: no cover - private signature drifted
        pass
    return _wrapped_interp  # pragma: no cover - private behaviour drifted


_compiled_interp = _resolve_compiled_interp()


def _interp_table(
    diffs: np.ndarray, table: Tuple[np.ndarray, np.ndarray]
) -> np.ndarray:
    """Vectorized pair-table probability: bit-equal to the scalar CDF path."""
    grid, cdf = table
    return np.clip(_compiled_interp(diffs, grid, cdf, 0.0, 1.0), 0.0, 1.0)


def cross_probability_matrix(
    messages_a: Sequence[TimestampedMessage],
    messages_b: Sequence[TimestampedMessage],
    model: PrecedenceModel,
    stats: Optional[EngineStats] = None,
    tables: Optional[PairTableCache] = None,
) -> np.ndarray:
    """Matrix ``M[i][j] = P(messages_a[i] precedes messages_b[j])``.

    Gaussian-eligible pairs are evaluated in one vectorized closed-form pass;
    grid-backed (empirical/learned/mixture) pairs are evaluated per client
    pair against the shared difference-CDF table; only pairs with no table
    (exotic difference types) fall back to the scalar model.  Pass ``tables``
    to share the pair-table cache across calls (the cross-shard merger does).
    """
    rows, cols = len(messages_a), len(messages_b)
    matrix = np.empty((rows, cols), dtype=float)
    if not rows or not cols:
        return matrix
    if tables is None:
        tables = PairTableCache(model, stats=stats)
    cache: Dict[str, Optional[Tuple[float, float]]] = {}

    def params(client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(model, cache, client_id)

    gauss_a = np.array([params(m.client_id) is not None for m in messages_a])
    gauss_b = np.array([params(m.client_id) is not None for m in messages_b])
    if gauss_a.any() and gauss_b.any():
        idx_a = np.flatnonzero(gauss_a)
        idx_b = np.flatnonzero(gauss_b)
        ts_a = np.array([messages_a[i].timestamp for i in idx_a])
        mu_a = np.array([params(messages_a[i].client_id)[0] for i in idx_a])
        var_a = np.array([params(messages_a[i].client_id)[1] for i in idx_a])
        ts_b = np.array([messages_b[j].timestamp for j in idx_b])
        mu_b = np.array([params(messages_b[j].client_id)[0] for j in idx_b])
        var_b = np.array([params(messages_b[j].client_id)[1] for j in idx_b])
        # column-blocked broadcast: one 2-D closed-form evaluation per block
        # of ~_GAUSSIAN_BLOCK_ELEMENTS entries, so the temporaries stay
        # cache-resident instead of streaming multi-hundred-MB arrays
        # through memory on wide flat merges
        step = max(1, _GAUSSIAN_BLOCK_ELEMENTS // max(idx_a.size, 1))
        full = idx_a.size == rows and idx_b.size == cols
        for lo in range(0, idx_b.size, step):
            hi = min(lo + step, idx_b.size)
            block = batched_gaussian_matrix(
                ts_a, mu_a, var_a, ts_b[lo:hi], mu_b[lo:hi], var_b[lo:hi]
            )
            if full:
                matrix[:, lo:hi] = block
            else:
                matrix[np.ix_(idx_a, idx_b[lo:hi])] = block
        if stats is not None:
            stats.vectorized_evaluations += idx_a.size * idx_b.size
    if not (gauss_a.all() and gauss_b.all()):
        timestamps_a = np.array([m.timestamp for m in messages_a])
        timestamps_b = np.array([m.timestamp for m in messages_b])
        rows_by_client: Dict[str, List[int]] = {}
        for i, message in enumerate(messages_a):
            rows_by_client.setdefault(message.client_id, []).append(i)
        cols_by_client: Dict[str, List[int]] = {}
        for j, message in enumerate(messages_b):
            cols_by_client.setdefault(message.client_id, []).append(j)
        for client_a, row_list in rows_by_client.items():
            for client_b, col_list in cols_by_client.items():
                if params(client_a) is not None and params(client_b) is not None:
                    continue  # served by the closed-form block above
                table = tables.table(client_a, client_b)
                if table is not None:
                    block = np.ix_(row_list, col_list)
                    diffs = timestamps_b[col_list][None, :] - timestamps_a[row_list][:, None]
                    matrix[block] = _interp_table(diffs, table)
                    if stats is not None:
                        stats.table_evaluations += diffs.size
                else:
                    for i in row_list:
                        for j in col_list:
                            matrix[i, j] = model.preceding_probability(
                                messages_a[i], messages_b[j]
                            )
                            if stats is not None:
                                stats.scalar_evaluations += 1
    return matrix


def build_relation(
    messages: Sequence[TimestampedMessage],
    model: PrecedenceModel,
    stats: Optional[EngineStats] = None,
    tables: Optional[PairTableCache] = None,
) -> LikelyHappenedBefore:
    """Vectorized drop-in for :meth:`LikelyHappenedBefore.from_model`.

    Produces the same probabilities (the backward direction is stored as
    ``1 - p`` of the canonical ``i < j`` pair, exactly like ``from_model``)
    without per-pair scalar evaluations: Gaussian pairs use the closed-form
    kernel, grid-backed pairs one batched ``np.interp`` per client pair.
    Only the strict upper triangle is evaluated; pairs with no table cost
    exactly one scalar model call per unordered pair, like ``from_model``.
    """
    messages = list(messages)
    n = len(messages)
    if tables is None:
        tables = PairTableCache(model, stats=stats)
    cache: Dict[str, Optional[Tuple[float, float]]] = {}

    def params(client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(model, cache, client_id)

    gaussian = np.array([params(m.client_id) is not None for m in messages], dtype=bool)
    gaussian_matrix = None
    gaussian_positions: Dict[int, int] = {}
    if gaussian.any():
        indices = np.flatnonzero(gaussian)
        gaussian_positions = {int(index): slot for slot, index in enumerate(indices)}
        timestamps = np.array([messages[i].timestamp for i in indices])
        means = np.array([params(messages[i].client_id)[0] for i in indices])
        variances = np.array([params(messages[i].client_id)[1] for i in indices])
        gaussian_matrix = np.empty((indices.size, indices.size), dtype=float)
        for slot, index in enumerate(indices):
            # one batched column per message over the rows above it: the
            # strict upper triangle, exactly the entries consumed below
            message_j = messages[index]
            mean_j, variance_j = params(message_j.client_id)
            gaussian_matrix[:slot, slot] = batched_gaussian_probabilities(
                timestamps[:slot],
                means[:slot],
                variances[:slot],
                message_j.timestamp,
                mean_j,
                variance_j,
            )
        if stats is not None:
            stats.vectorized_evaluations += indices.size * (indices.size - 1) // 2

    # bucket the non-closed-form upper-triangle pairs by ordered client pair
    # and evaluate each bucket as one batched table interpolation (skipped
    # entirely on all-Gaussian message sets)
    buckets: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    if not gaussian.all():
        all_timestamps = np.array([m.timestamp for m in messages])
        for index_i in range(n):
            client_i = messages[index_i].client_id
            for index_j in range(index_i + 1, n):
                if gaussian[index_i] and gaussian[index_j]:
                    continue
                buckets.setdefault((client_i, messages[index_j].client_id), []).append(
                    (index_i, index_j)
                )
    table_values: Dict[Tuple[int, int], float] = {}
    for (client_i, client_j), pairs in buckets.items():
        table = tables.table(client_i, client_j)
        if table is None:
            continue  # scalar fallback in the assembly loop below
        ii = np.fromiter((pair[0] for pair in pairs), dtype=np.intp, count=len(pairs))
        jj = np.fromiter((pair[1] for pair in pairs), dtype=np.intp, count=len(pairs))
        values = _interp_table(all_timestamps[jj] - all_timestamps[ii], table)
        if stats is not None:
            stats.table_evaluations += values.size
        for pair, value in zip(pairs, values):
            table_values[pair] = float(value)

    probabilities: Dict[Tuple[MessageKey, MessageKey], float] = {}
    for index_i in range(n):
        key_i = messages[index_i].key
        for index_j in range(index_i + 1, n):
            key_j = messages[index_j].key
            if gaussian[index_i] and gaussian[index_j]:
                p = float(
                    gaussian_matrix[gaussian_positions[index_i], gaussian_positions[index_j]]
                )
            elif (index_i, index_j) in table_values:
                p = table_values[(index_i, index_j)]
            else:
                p = model.preceding_probability(messages[index_i], messages[index_j])
                if stats is not None:
                    stats.scalar_evaluations += 1
            probabilities[(key_i, key_j)] = p
            probabilities[(key_j, key_i)] = 1.0 - p
    return LikelyHappenedBefore(messages, probabilities)


def strict_boundary_strengths_matrix(matrix: np.ndarray) -> np.ndarray:
    """Strict-rule boundary strengths from an order-permuted matrix.

    ``matrix[a][b]`` is ``P(order[a] precedes order[b])``; the returned
    ``strengths[k] = min_{a <= k < b} matrix[a][b]`` matches
    :func:`repro.core.batching._strict_boundary_strengths` via two
    cumulative-minimum passes (down the columns, then right-to-left along the
    rows) instead of a per-boundary scan.
    """
    n = matrix.shape[0]
    if n < 2:
        return np.empty(0, dtype=float)
    column_min = np.minimum.accumulate(matrix, axis=0)
    suffix_min = np.minimum.accumulate(column_min[:, ::-1], axis=1)[:, ::-1]
    positions = np.arange(n - 1)
    return suffix_min[positions, positions + 1]


class IncrementalPrecedenceEngine:
    """Incrementally maintained precedence state over a pending message set.

    One engine instance backs one online sequencer: :meth:`add_message` on
    arrival, :meth:`remove_messages` on emission,
    :meth:`first_tentative_group` whenever an emission check needs the next
    candidate batch (:meth:`tentative_groups` for the full batching, e.g. at
    flush), and :meth:`safe_emission_time` for the cached-quantile ``T^F``
    computation.  ``pair_tables=False`` disables the empirical fast path and
    reproduces the historical scalar fallback (the benchmark's baseline).
    """

    def __init__(
        self,
        model: PrecedenceModel,
        threshold: float,
        tie_epsilon: float = 0.0,
        cycle_policy: str = "greedy",
        rng: Optional[np.random.Generator] = None,
        pair_tables: bool = True,
    ) -> None:
        if not 0.5 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
        self._model = model
        self._threshold = float(threshold)
        self._tie_epsilon = float(tie_epsilon)
        self._cycle_policy = cycle_policy
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = EngineStats()
        self._pair_tables_enabled = bool(pair_tables)
        self._tables = PairTableCache(model, stats=self.stats)

        self._messages: List[TimestampedMessage] = []
        self._index: Dict[MessageKey, int] = {}
        self._capacity = 16
        self._matrix = np.empty((self._capacity, self._capacity), dtype=float)
        self._direction = np.zeros((self._capacity, self._capacity), dtype=bool)
        self._scores = np.zeros(self._capacity, dtype=np.int64)
        self._timestamps = np.empty(self._capacity, dtype=float)
        self._means = np.empty(self._capacity, dtype=float)
        self._variances = np.empty(self._capacity, dtype=float)
        self._gaussian = np.empty(self._capacity, dtype=bool)
        self._positions_by_client: Dict[str, List[int]] = {}
        self._client_params: Dict[str, Optional[Tuple[float, float]]] = {}
        self._quantiles: Dict[Tuple[str, float], float] = {}

    # ------------------------------------------------------------- properties
    @property
    def model(self) -> PrecedenceModel:
        """The scalar model backing quantiles and table-less pairs."""
        return self._model

    @property
    def pair_tables(self) -> PairTableCache:
        """The per-client-pair difference-CDF table cache."""
        return self._tables

    @property
    def size(self) -> int:
        """Number of messages currently tracked."""
        return len(self._messages)

    @property
    def message_keys(self) -> List[MessageKey]:
        """Keys of the tracked messages, in arrival order."""
        return [message.key for message in self._messages]

    def probability(self, key_a: MessageKey, key_b: MessageKey) -> float:
        """``P(key_a precedes key_b)`` from the maintained matrix."""
        return float(self._matrix[self._index[key_a], self._index[key_b]])

    def probability_matrix(self) -> np.ndarray:
        """Copy of the live pairwise matrix (arrival order, diagonal 0.5)."""
        n = self.size
        return self._matrix[:n, :n].copy()

    # ---------------------------------------------------------------- updates
    def _params_for(self, client_id: str) -> Optional[Tuple[float, float]]:
        return _cached_gaussian_params(self._model, self._client_params, client_id)

    def _grow(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        n = self.size
        for name in ("_matrix", "_direction"):
            old = getattr(self, name)
            fresh = (
                np.empty((capacity, capacity), dtype=old.dtype)
                if name == "_matrix"
                else np.zeros((capacity, capacity), dtype=old.dtype)
            )
            fresh[:n, :n] = old[:n, :n]
            setattr(self, name, fresh)
        for name in ("_scores", "_timestamps", "_means", "_variances", "_gaussian"):
            old = getattr(self, name)
            fresh = np.zeros(capacity, dtype=old.dtype)
            fresh[:n] = old[:n]
            setattr(self, name, fresh)
        self._capacity = capacity

    def add_message(self, message: TimestampedMessage) -> None:
        """Append one arrival: one vectorized row/column plus its edge directions."""
        key = message.key
        if key in self._index:
            raise ValueError(f"message {key!r} already tracked by the engine")
        params = self._params_for(message.client_id)
        if params is None:
            # raises KeyError for unregistered clients, mirroring the model
            self._model.distribution_for(message.client_id)
        n = self.size
        self._grow(n + 1)
        row = self._compute_row(message, params, n)
        if n:
            self._matrix[:n, n] = row
            self._matrix[n, :n] = 1.0 - row
            # kept-edge orientation, exactly like TournamentGraph.from_relation:
            # ties (within tie_epsilon of 0.5) orient by message key, the rest
            # by the larger direction probability
            wins = row > (1.0 - row)
            ties = np.abs(row - 0.5) <= self._tie_epsilon
            if ties.any():
                for position in np.flatnonzero(ties):
                    wins[position] = self._messages[position].key <= key
            self._direction[:n, n] = wins
            self._direction[n, :n] = ~wins
            self._scores[:n] += wins
            self._scores[n] = int(n - int(wins.sum()))
        else:
            self._scores[n] = 0
        self._matrix[n, n] = 0.5
        self._direction[n, n] = False
        self._timestamps[n] = message.timestamp
        if params is not None:
            self._means[n], self._variances[n] = params
            self._gaussian[n] = True
        else:
            self._means[n] = self._variances[n] = 0.0
            self._gaussian[n] = False
        self._messages.append(message)
        self._index[key] = n
        self._positions_by_client.setdefault(message.client_id, []).append(n)
        self.stats.rows_appended += 1

    def add_messages(self, messages: Sequence[TimestampedMessage]) -> None:
        """Append a simultaneity burst as one vectorized ``k x n`` block.

        Bit-identical to calling :meth:`add_message` once per message in
        order — the same kernels evaluate the same entries element-wise, the
        same tie/orientation logic runs per appended row — but the matrix
        grows once, the Gaussian closed form evaluates the whole
        existing-by-new block in a single broadcast, and each grid-backed
        client pair interpolates one batched block instead of one slice per
        arrival.  Validation happens up front, so a burst with a duplicate or
        unregistered message raises before any state mutates.
        """
        burst = list(messages)
        if not burst:
            return
        if len(burst) == 1:
            self.add_message(burst[0])
            return
        seen: Set[MessageKey] = set()
        params_list: List[Optional[Tuple[float, float]]] = []
        for message in burst:
            key = message.key
            if key in self._index or key in seen:
                raise ValueError(f"message {key!r} already tracked by the engine")
            seen.add(key)
            params = self._params_for(message.client_id)
            if params is None:
                # raises KeyError for unregistered clients, mirroring the model
                self._model.distribution_for(message.client_id)
            params_list.append(params)
        n0 = self.size
        k = len(burst)
        self._grow(n0 + k)
        # stage per-position metadata for the whole burst so the grouped
        # kernels can evaluate existing-by-new and intra-burst entries alike
        for offset, (message, params) in enumerate(zip(burst, params_list)):
            position = n0 + offset
            self._timestamps[position] = message.timestamp
            if params is not None:
                self._means[position], self._variances[position] = params
                self._gaussian[position] = True
            else:
                self._means[position] = self._variances[position] = 0.0
                self._gaussian[position] = False
        block = self._compute_block(burst, params_list, n0)
        for offset, message in enumerate(burst):
            position = n0 + offset
            key = message.key
            if position:
                row = block[:position, offset]
                self._matrix[:position, position] = row
                self._matrix[position, :position] = 1.0 - row
                wins = row > (1.0 - row)
                ties = np.abs(row - 0.5) <= self._tie_epsilon
                if ties.any():
                    for tie_position in np.flatnonzero(ties):
                        wins[tie_position] = self._messages[tie_position].key <= key
                self._direction[:position, position] = wins
                self._direction[position, :position] = ~wins
                self._scores[:position] += wins
                self._scores[position] = int(position - int(wins.sum()))
            else:
                self._scores[position] = 0
            self._matrix[position, position] = 0.5
            self._direction[position, position] = False
            self._messages.append(message)
            self._index[key] = position
            self._positions_by_client.setdefault(message.client_id, []).append(position)
        self.stats.rows_appended += k
        self.stats.block_appends += 1

    def _compute_block(
        self,
        burst: Sequence[TimestampedMessage],
        params_list: Sequence[Optional[Tuple[float, float]]],
        n0: int,
    ) -> np.ndarray:
        """``block[i][j] = P(position_i precedes burst_j)`` for ``i < n0 + j``.

        Entries outside that trapezoid (a burst message against a later burst
        message) may be computed by the vectorized kernels but are never
        read.  Only the valid trapezoid is counted in the stats, matching
        what a sequential append would have evaluated.
        """
        k = len(burst)
        total = n0 + k
        block = np.empty((total, k), dtype=float)
        gaussian_rows = self._gaussian[:total]
        new_gaussian = np.array([params is not None for params in params_list], dtype=bool)
        if gaussian_rows.any() and new_gaussian.any():
            rows = np.flatnonzero(gaussian_rows)
            cols = np.flatnonzero(new_gaussian)
            block[np.ix_(rows, cols)] = batched_gaussian_matrix(
                self._timestamps[rows],
                self._means[rows],
                self._variances[rows],
                self._timestamps[n0 + cols],
                self._means[n0 + cols],
                self._variances[n0 + cols],
            )
            self.stats.vectorized_evaluations += int(
                (rows[:, None] < (n0 + cols)[None, :]).sum()
            )
        if gaussian_rows.all() and new_gaussian.all():
            return block
        positions_by_client = {
            client: list(positions) for client, positions in self._positions_by_client.items()
        }
        cols_by_client: Dict[str, List[int]] = {}
        for offset, message in enumerate(burst):
            positions_by_client.setdefault(message.client_id, []).append(n0 + offset)
            cols_by_client.setdefault(message.client_id, []).append(offset)
        for client_i, row_positions in positions_by_client.items():
            params_i = self._params_for(client_i)
            for client_j, col_offsets in cols_by_client.items():
                if params_i is not None and self._params_for(client_j) is not None:
                    continue  # served by the closed-form block above
                table = (
                    self._tables.table(client_i, client_j)
                    if self._pair_tables_enabled
                    else None
                )
                if table is not None:
                    rows = np.asarray(row_positions, dtype=np.intp)
                    cols = np.asarray(col_offsets, dtype=np.intp)
                    diffs = self._timestamps[n0 + cols][None, :] - self._timestamps[rows][:, None]
                    # the scalar path's clip, applied at evaluation time: a
                    # no-op on every other entry kind, so the row a burst
                    # message reads is bit-equal to _compute_row's output
                    block[np.ix_(rows, cols)] = np.clip(
                        _compiled_interp(diffs, table[0], table[1], 0.0, 1.0), 0.0, 1.0
                    )
                    self.stats.table_evaluations += int(
                        (rows[:, None] < (n0 + cols)[None, :]).sum()
                    )
                else:
                    for col in col_offsets:
                        message_j = burst[col]
                        limit = n0 + col
                        for row_position in row_positions:
                            if row_position >= limit:
                                continue
                            message_i = (
                                self._messages[row_position]
                                if row_position < n0
                                else burst[row_position - n0]
                            )
                            block[row_position, col] = self._model.preceding_probability(
                                message_i, message_j
                            )
                            self.stats.scalar_evaluations += 1
        return block

    def _compute_row(
        self,
        message: TimestampedMessage,
        params: Optional[Tuple[float, float]],
        n: int,
    ) -> np.ndarray:
        """``row[i] = P(existing_i precedes message)`` over current messages."""
        row = np.empty(n, dtype=float)
        if not n:
            return row
        gauss = self._gaussian[:n] if params is not None else np.zeros(n, dtype=bool)
        if gauss.any():
            mean_j, variance_j = params
            row[gauss] = batched_gaussian_probabilities(
                self._timestamps[:n][gauss],
                self._means[:n][gauss],
                self._variances[:n][gauss],
                message.timestamp,
                mean_j,
                variance_j,
            )
            self.stats.vectorized_evaluations += int(gauss.sum())
        if gauss.all():
            return row
        client_j = message.client_id
        timestamp_j = message.timestamp
        interpolated = False
        for client_i, positions in self._positions_by_client.items():
            if params is not None and self._params_for(client_i) is not None:
                continue  # covered by the closed-form block above
            table = (
                self._tables.table(client_i, client_j)
                if self._pair_tables_enabled
                else None
            )
            if table is not None:
                pos = np.asarray(positions, dtype=np.intp)
                # raw interpolation per pair group; the scalar path's clip is
                # applied once over the whole row below (bit-equal: clipping
                # is idempotent and a no-op on the closed-form entries)
                row[pos] = _compiled_interp(
                    timestamp_j - self._timestamps[pos], table[0], table[1], 0.0, 1.0
                )
                interpolated = True
                self.stats.table_evaluations += pos.size
            else:
                for position in positions:
                    row[position] = self._model.preceding_probability(
                        self._messages[position], message
                    )
                    self.stats.scalar_evaluations += 1
        if interpolated:
            np.clip(row, 0.0, 1.0, out=row)
        return row

    def remove_messages(self, keys: Set[MessageKey]) -> None:
        """Drop emitted messages: compact the matrix and direction state."""
        drop = {key for key in keys if key in self._index}
        if not drop:
            return
        keep_positions = [
            position
            for position, message in enumerate(self._messages)
            if message.key not in drop
        ]
        n = self.size
        m = len(keep_positions)
        if m:
            keep = np.asarray(keep_positions, dtype=int)
            self._matrix[:m, :m] = self._matrix[np.ix_(keep, keep)]
            self._direction[:m, :m] = self._direction[np.ix_(keep, keep)]
            self._scores[:m] = self._direction[:m, :m].sum(axis=1)
            for name in ("_timestamps", "_means", "_variances", "_gaussian"):
                array = getattr(self, name)
                array[:m] = array[:n][keep]
        self._messages = [self._messages[position] for position in keep_positions]
        self._index = {message.key: position for position, message in enumerate(self._messages)}
        self._positions_by_client = {}
        for position, message in enumerate(self._messages):
            self._positions_by_client.setdefault(message.client_id, []).append(position)
        self.stats.rows_removed += len(drop)

    def invalidate_client(self, client_id: str) -> None:
        """React to a (re)registered client distribution (single client)."""
        self.invalidate_clients([client_id])

    def invalidate_clients(self, client_ids: Iterable[str]) -> None:
        """React to refreshed client distributions.

        Parameter, pair-table and quantile caches for the clients are
        dropped; when any of them has tracked messages, the matrix, direction
        state and scores are rebuilt once so every affected pair reflects the
        new distributions (the reference path recomputes everything per
        arrival and picks the change up implicitly).
        """
        affected = False
        for client_id in set(client_ids):
            self._client_params.pop(client_id, None)
            self._tables.invalidate_client(client_id)
            self._quantiles = {
                cache_key: value
                for cache_key, value in self._quantiles.items()
                if cache_key[0] != client_id
            }
            affected = affected or bool(self._positions_by_client.get(client_id))
        if affected:
            self._rebuild()

    def _rebuild(self) -> None:
        """Recompute all state by replaying the tracked messages in order."""
        messages = self._messages
        self._messages = []
        self._index = {}
        self._positions_by_client = {}
        for message in messages:
            self.add_message(message)
        self.stats.rebuilds += 1

    # ------------------------------------------------------------ hot queries
    def safe_emission_time(self, message: TimestampedMessage, p_safe: float) -> float:
        """Cached-quantile ``T^F = T - Q_eps(1 - p_safe)`` (paper §3.5)."""
        if not 0.5 < p_safe < 1.0:
            raise ValueError(f"p_safe must be in (0.5, 1), got {p_safe!r}")
        cache_key = (message.client_id, p_safe)
        quantile = self._quantiles.get(cache_key)
        if quantile is None:
            quantile = self._model.distribution_for(message.client_id).quantile(1.0 - p_safe)
            self._quantiles[cache_key] = quantile
            self.stats.quantile_cache_misses += 1
        else:
            self.stats.quantile_cache_hits += 1
        return message.timestamp - quantile

    def _build_graph(self) -> nx.DiGraph:
        """Materialise the kept-edge graph for cycle resolution.

        Node and edge insertion follow the per-arrival order the previous
        incrementally-maintained graph used (node ``j`` then pairs
        ``(0, j) .. (j-1, j)``), which produces the same adjacency iteration
        order as :meth:`TournamentGraph.from_relation` — cycle detection and
        cycle-breaking therefore walk the graph exactly like the reference
        rebuild.
        """
        graph = nx.DiGraph()
        keys = [message.key for message in self._messages]
        graph.add_nodes_from(keys)
        n = self.size
        direction = self._direction
        matrix = self._matrix
        for j in range(n):
            key_j = keys[j]
            for i in range(j):
                if direction[i, j]:
                    graph.add_edge(keys[i], key_j, probability=float(matrix[i, j]))
                else:
                    graph.add_edge(key_j, keys[i], probability=float(matrix[j, i]))
        return graph

    def _order_permutation(self) -> np.ndarray:
        """Message positions in linear order, matching the reference pipeline.

        A tournament is transitive exactly when its out-degree (score)
        sequence is ``{0, .., n-1}``; in that case the unique topological
        order is the score-descending order — an ``O(n)`` bucket placement
        over the maintained score vector.  Otherwise the tournament is cyclic
        and the reference behaviour is replicated verbatim on a materialised
        graph: ``resolve_cycles`` (which consumes the shared RNG identically)
        followed by the deterministic lexicographical topological sort.
        """
        n = self.size
        scores = self._scores[:n]
        counts = np.bincount(scores, minlength=n)
        if counts.size == n and bool((counts == 1).all()):
            permutation = np.empty(n, dtype=np.intp)
            permutation[n - 1 - scores] = np.arange(n, dtype=np.intp)
            return permutation
        working = self._build_graph()
        resolve_cycles(working, self._cycle_policy, rng=self._rng)
        self.stats.cycle_resolutions += 1
        resolved_degree = dict(working.out_degree())
        order = nx.lexicographical_topological_sort(
            working, key=lambda node: (-resolved_degree.get(node, 0), node)
        )
        return np.asarray([self._index[key] for key in order], dtype=np.intp)

    def first_tentative_group(self) -> Optional[List[TimestampedMessage]]:
        """The first strict-rule batch (the emission candidate), or ``None``.

        Equal to ``tentative_groups()[0]`` — same order, same boundary
        minima, same threshold comparison — but computed by an ``O(k·n)``
        prefix scan over the first ``k`` order positions instead of the full
        ``O(n^2)`` permuted-matrix pass, since the emission check only ever
        consumes the first batch.
        """
        n = self.size
        if n == 0:
            return None
        self.stats.group_computations += 1
        if n == 1:
            return [self._messages[0]]
        permutation = self._order_permutation()
        matrix = self._matrix
        threshold = self._threshold
        boundary = n - 1
        combined: Optional[np.ndarray] = None
        for k in range(n - 1):
            row = matrix[permutation[k], :n][permutation]
            # suffix minima of row k: entry c is min_{b >= c} P[order_k, order_b]
            row_suffix = np.minimum.accumulate(row[::-1])[::-1]
            if combined is None:
                combined = row_suffix
            else:
                np.minimum(combined, row_suffix, out=combined)
            # combined[k+1] = min_{a <= k < b} P[order_a, order_b]: the exact
            # strict boundary strength the full pass computes at position k
            if combined[k + 1] > threshold:
                boundary = k
                break
        return [self._messages[position] for position in permutation[: boundary + 1]]

    def tentative_groups(self) -> List[List[TimestampedMessage]]:
        """Strict-rule batching of the tracked set (online tentative groups)."""
        n = self.size
        if n == 0:
            return []
        self.stats.group_computations += 1
        if n == 1:
            return [[self._messages[0]]]
        permutation = self._order_permutation()
        permuted = self._matrix[:n, :n][np.ix_(permutation, permutation)]
        strengths = strict_boundary_strengths_matrix(permuted)
        groups: List[List[TimestampedMessage]] = [[self._messages[permutation[0]]]]
        for boundary, position in enumerate(permutation[1:]):
            message = self._messages[position]
            if strengths[boundary] > self._threshold:
                groups.append([message])
            else:
                groups[-1].append(message)
        return groups
