"""The likely-happened-before relation.

``i --p--> j`` states that message ``i`` happened before message ``j`` with
probability ``p`` (paper §1, §3).  :class:`LikelyHappenedBefore` materialises
the relation over a finite message set by querying a
:class:`~repro.core.probability.PrecedenceModel` for every unordered pair and
keeping both directed probabilities (they sum to 1 under the continuous-clock
assumption of no exact ties).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.core.probability import PrecedenceModel
from repro.network.message import TimestampedMessage

MessageKey = Tuple[str, int]


@dataclass(frozen=True)
class PairProbability:
    """Directed pair ``source --probability--> target``."""

    source: MessageKey
    target: MessageKey
    probability: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")

    @property
    def reversed_probability(self) -> float:
        """Probability of the opposite direction (``1 - probability``)."""
        return 1.0 - self.probability


class LikelyHappenedBefore:
    """All pairwise likely-happened-before probabilities for a message set."""

    def __init__(
        self,
        messages: Sequence[TimestampedMessage],
        probabilities: Dict[Tuple[MessageKey, MessageKey], float],
    ) -> None:
        self._messages: Dict[MessageKey, TimestampedMessage] = {
            message.key: message for message in messages
        }
        if len(self._messages) != len(messages):
            raise ValueError("duplicate message keys in relation")
        self._probabilities = dict(probabilities)

    # ------------------------------------------------------------- factories
    @classmethod
    def from_model(
        cls, messages: Sequence[TimestampedMessage], model: PrecedenceModel
    ) -> "LikelyHappenedBefore":
        """Evaluate the relation for every unordered message pair."""
        messages = list(messages)
        probabilities: Dict[Tuple[MessageKey, MessageKey], float] = {}
        for index_i in range(len(messages)):
            for index_j in range(index_i + 1, len(messages)):
                message_i = messages[index_i]
                message_j = messages[index_j]
                p = model.preceding_probability(message_i, message_j)
                probabilities[(message_i.key, message_j.key)] = p
                probabilities[(message_j.key, message_i.key)] = 1.0 - p
        return cls(messages, probabilities)

    @classmethod
    def from_matrix(
        cls, messages: Sequence[TimestampedMessage], matrix: Sequence[Sequence[float]]
    ) -> "LikelyHappenedBefore":
        """Build the relation from an explicit probability matrix.

        ``matrix[i][j]`` is the probability that ``messages[i]`` precedes
        ``messages[j]`` (diagonal entries ignored).  This is how the
        Appendix B worked example is expressed.
        """
        messages = list(messages)
        n = len(messages)
        if len(matrix) != n or any(len(row) != n for row in matrix):
            raise ValueError("matrix must be square and match the number of messages")
        probabilities: Dict[Tuple[MessageKey, MessageKey], float] = {}
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                p = float(matrix[i][j])
                if not 0.0 <= p <= 1.0:
                    raise ValueError(f"matrix[{i}][{j}] = {p!r} is not a probability")
                probabilities[(messages[i].key, messages[j].key)] = p
        # verify (approximate) complementarity
        for i in range(n):
            for j in range(i + 1, n):
                forward = probabilities[(messages[i].key, messages[j].key)]
                backward = probabilities[(messages[j].key, messages[i].key)]
                if abs(forward + backward - 1.0) > 1e-6:
                    raise ValueError(
                        f"matrix entries ({i},{j}) and ({j},{i}) must sum to 1, "
                        f"got {forward} + {backward}"
                    )
        return cls(messages, probabilities)

    # --------------------------------------------------------------- queries
    @property
    def message_keys(self) -> List[MessageKey]:
        """Keys of all messages in the relation."""
        return list(self._messages)

    def message(self, key: MessageKey) -> TimestampedMessage:
        """The message object for ``key``."""
        return self._messages[key]

    def messages(self) -> List[TimestampedMessage]:
        """All messages in the relation."""
        return list(self._messages.values())

    def probability(self, source: MessageKey, target: MessageKey) -> float:
        """``P(source happened before target)``."""
        return self._probabilities[(source, target)]

    def pairs(self) -> Iterator[PairProbability]:
        """Iterate over every directed pair."""
        for (source, target), probability in self._probabilities.items():
            yield PairProbability(source=source, target=target, probability=probability)

    def confident_pairs(self, threshold: float) -> List[PairProbability]:
        """Directed pairs whose probability strictly exceeds ``threshold``."""
        return [pair for pair in self.pairs() if pair.probability > threshold]

    def __len__(self) -> int:
        return len(self._messages)
