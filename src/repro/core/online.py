"""Online Tommy sequencing (paper §3.5 and Appendix C).

The online sequencer receives a stream of timestamped messages and
heartbeats and must decide *when* a batch can be emitted such that no later
arrival belongs in it or deserves a lower rank.  Two mechanisms interact:

* **Safe emission time (Q1).**  For every message ``k`` in the candidate
  batch a future time ``T^F_k`` is computed with
  ``P(T*_k < T^F_k) > p_safe``; the batch's safe emission time is
  ``T_b = max_k T^F_k``.  The batch is only emitted once the sequencer's
  clock reaches ``T_b`` and no newer pending message belongs to it.
* **Arrival completeness (Q2).**  With ordered per-client channels and a
  known client set, all messages timestamped <= ``t`` have arrived once every
  client has been heard from (message or heartbeat) with a timestamp > ``t``.
  A bounded-delay alternative waits ``max_network_delay`` instead.

Every new arrival re-runs tentative batching over the pending set, so a
high-uncertainty message automatically merges with (and thereby delays)
messages it cannot be confidently ordered against — the Appendix C scenario.
By default the re-run is served by the
:class:`~repro.core.engine.IncrementalPrecedenceEngine` (one vectorized
row/column append per arrival instead of an O(n^2) scalar recompute);
``use_engine=False`` selects the original recompute-everything path, kept as
the parity oracle for tests and benchmarks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.batching import form_batches
from repro.core.config import TommyConfig
from repro.core.cycles import resolve_cycles
from repro.core.engine import EngineStats, IncrementalPrecedenceEngine
from repro.core.probability import PrecedenceModel
from repro.core.relation import LikelyHappenedBefore
from repro.core.tournament import TournamentGraph
from repro.distributions.base import OffsetDistribution
from repro.network.message import Heartbeat, SequencedBatch, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.sequencers.base import SequencingResult
from repro.simulation.entity import Entity
from repro.simulation.event_loop import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Scheduler


@dataclass(frozen=True)
class EmittedBatch:
    """An emitted batch plus its emission bookkeeping."""

    batch: SequencedBatch
    emitted_at: float
    safe_emission_time: float

    @property
    def rank(self) -> int:
        """Rank of the emitted batch."""
        return self.batch.rank

    @property
    def size(self) -> int:
        """Number of messages in the batch."""
        return self.batch.size

    def emission_latencies(self) -> List[float]:
        """Per-message latency from ground-truth generation to emission."""
        return [
            self.emitted_at - message.true_time
            for message in self.batch.messages
            if message.true_time is not None
        ]


class OnlineTommySequencer(Entity):
    """Streaming fair sequencer with safe batch emission."""

    def __init__(
        self,
        loop: Scheduler,
        client_distributions: Dict[str, OffsetDistribution],
        config: Optional[TommyConfig] = None,
        known_clients: Optional[Sequence[str]] = None,
        name: str = "tommy-online",
        use_engine: bool = True,
        engine_pair_tables: bool = True,
        telemetry: Optional[Telemetry] = None,
        shard_index: Optional[int] = None,
    ) -> None:
        super().__init__(loop, name)
        self._config = config if config is not None else TommyConfig()
        self._obs = resolve(telemetry)
        self._shard_index = shard_index
        self._check_wall: Optional[float] = None
        self._model = PrecedenceModel(
            method=self._config.probability_method,
            convolution_points=self._config.convolution_points,
        )
        for client_id, distribution in client_distributions.items():
            self._model.register_client(client_id, distribution)
        self._rng = np.random.default_rng(self._config.seed if self._config.seed is not None else 0)
        self._engine: Optional[IncrementalPrecedenceEngine] = (
            IncrementalPrecedenceEngine(
                self._model,
                threshold=self._config.threshold,
                tie_epsilon=self._config.tie_epsilon,
                cycle_policy=self._config.cycle_policy,
                rng=self._rng,
                pair_tables=engine_pair_tables,
            )
            if use_engine
            else None
        )
        self._known_clients = (
            set(known_clients) if known_clients is not None else set(client_distributions)
        )
        self._pending: List[TimestampedMessage] = []
        self._arrival_times: Dict[Tuple[str, int], float] = {}
        self._latest_client_timestamp: Dict[str, float] = {}
        # incremental completeness horizon: known clients never heard from,
        # plus a lazily recomputed minimum over the heard clients' latest
        # timestamps, so the per-emission-check completeness test is O(1)
        # instead of a scan over every known client
        self._unheard_clients = set(self._known_clients)
        self._floor_value = float("inf")
        self._floor_client: Optional[str] = None
        self._floor_stale = False
        self._emitted: List[EmittedBatch] = []
        self._next_rank = 0
        self._check_event: Optional[Event] = None
        self._extension_count = 0
        self._forced_emissions = 0
        self._distribution_refreshes = 0
        self._on_emit: Optional[Callable[[EmittedBatch], None]] = None

    # ------------------------------------------------------------- properties
    @property
    def config(self) -> TommyConfig:
        """The sequencer configuration."""
        return self._config

    @property
    def model(self) -> PrecedenceModel:
        """Preceding-probability model."""
        return self._model

    @property
    def engine(self) -> Optional[IncrementalPrecedenceEngine]:
        """The incremental precedence engine (``None`` on the reference path)."""
        return self._engine

    def engine_stats(self) -> EngineStats:
        """Engine counters (all-zero when running the reference path)."""
        return self._engine.stats if self._engine is not None else EngineStats()

    @property
    def pending_messages(self) -> List[TimestampedMessage]:
        """Messages received but not yet emitted."""
        return list(self._pending)

    @property
    def emitted_batches(self) -> List[EmittedBatch]:
        """Batches emitted so far, in rank order."""
        return list(self._emitted)

    @property
    def extension_count(self) -> int:
        """How many times a scheduled emission was deferred by new arrivals."""
        return self._extension_count

    @property
    def forced_emissions(self) -> int:
        """Batches emitted by the ``max_batch_age`` liveness guard."""
        return self._forced_emissions

    @property
    def distribution_refreshes(self) -> int:
        """How many live distribution updates the sequencer has absorbed."""
        return self._distribution_refreshes

    def subscribe_emissions(self, callback: Optional[Callable[[EmittedBatch], None]]) -> None:
        """Register ``callback`` to be invoked with every emitted batch.

        The hook fires synchronously from :meth:`_emit` (timer-driven
        emissions and :meth:`flush` alike); the cluster uses it to feed the
        streaming cross-shard merger as batches appear instead of re-merging
        everything per drain.
        """
        self._on_emit = callback

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register a (new) client's clock-error distribution."""
        self._model.register_client(client_id, distribution)
        if self._engine is not None:
            self._engine.invalidate_client(client_id)
        if client_id not in self._known_clients:
            self._known_clients.add(client_id)
            if client_id not in self._latest_client_timestamp:
                self._unheard_clients.add(client_id)

    def update_client_distribution(
        self, client_id: str, distribution: OffsetDistribution
    ) -> None:
        """Refresh a *known* client's distribution while the sequencer runs.

        This is the adaptive-registration entry point of the learned pipeline
        (paper §3.3/§5): a client re-estimates its offset distribution from
        sync probes and ships the new estimate mid-stream.  The engine drops
        the client's cached Gaussian parameters, pair-CDF tables and
        safe-emission quantiles, and rebuilds any live matrix rows involving
        the client, so the very next tentative batching reflects the update —
        exactly like the reference path, which recomputes per arrival.
        """
        self.update_client_distributions({client_id: distribution})

    def update_client_distributions(
        self, distributions: Dict[str, OffsetDistribution]
    ) -> None:
        """Batch variant of :meth:`update_client_distribution`.

        All model registrations happen first and the engine invalidates (and
        rebuilds) once, so refreshing many clients costs one rebuild instead
        of one per client.
        """
        unknown = [
            client_id for client_id in distributions if not self._model.has_client(client_id)
        ]
        if unknown:
            raise KeyError(
                f"clients {unknown!r} are not registered; use register_client for new clients"
            )
        if not distributions:
            return
        for client_id, distribution in distributions.items():
            self._model.register_client(client_id, distribution)
        if self._engine is not None:
            self._engine.invalidate_clients(distributions)
        self._distribution_refreshes += len(distributions)
        # the refreshed distributions can change safe-emission times and
        # tentative batching of the pending set, so re-run the emission check
        if self._pending:
            self._schedule_check()

    # ---------------------------------------------------------------- intake
    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None:
        """Handle an arriving message or heartbeat.

        Designed to be wired directly into
        :meth:`repro.network.transport.SequencerEndpoint.on_arrival`.
        """
        arrival = self.now if arrival_time is None else float(arrival_time)
        if isinstance(item, Heartbeat):
            self._note_client_progress(item.client_id, item.timestamp)
        elif isinstance(item, TimestampedMessage):
            if not self._model.has_client(item.client_id):
                raise KeyError(
                    f"client {item.client_id!r} has no registered clock-error distribution"
                )
            self._pending.append(item)
            if self._engine is not None:
                self._engine.add_message(item)
            self._arrival_times[item.key] = arrival
            self._note_client_progress(item.client_id, item.timestamp)
            if self._obs.enabled:
                self._obs.stage("engine_append", item, arrival, shard=self._shard_index)
        else:
            raise TypeError(f"unsupported item type {type(item).__name__}")
        self._schedule_check()

    def receive_many(
        self,
        items: Iterable[Union[TimestampedMessage, Heartbeat]],
        arrival_time: Optional[float] = None,
    ) -> None:
        """Handle a simultaneity burst of arrivals in one pass.

        Behaviorally equivalent to calling :meth:`receive` per item at the
        same loop instant (all per-item checks collapse onto the final one
        anyway), but the pending messages enter the engine as a single
        vectorized block append and exactly one emission check is scheduled —
        the fast path coalescing transports
        (:class:`~repro.network.transport.SequencerEndpoint`) deliver into.
        """
        burst = list(items)
        if not burst:
            return
        arrival = self.now if arrival_time is None else float(arrival_time)
        messages: List[TimestampedMessage] = []
        for item in burst:
            if isinstance(item, Heartbeat):
                self._note_client_progress(item.client_id, item.timestamp)
            elif isinstance(item, TimestampedMessage):
                if not self._model.has_client(item.client_id):
                    raise KeyError(
                        f"client {item.client_id!r} has no registered clock-error distribution"
                    )
                messages.append(item)
            else:
                raise TypeError(f"unsupported item type {type(item).__name__}")
        if messages:
            self._pending.extend(messages)
            if self._engine is not None:
                self._engine.add_messages(messages)
            for message in messages:
                self._arrival_times[message.key] = arrival
                self._note_client_progress(message.client_id, message.timestamp)
            if self._obs.enabled:
                for message in messages:
                    self._obs.stage("engine_append", message, arrival, shard=self._shard_index)
        self._schedule_check()

    def _note_client_progress(self, client_id: str, timestamp: float) -> None:
        current = self._latest_client_timestamp.get(client_id)
        if current is None:
            self._latest_client_timestamp[client_id] = timestamp
            self._unheard_clients.discard(client_id)
            if timestamp < self._floor_value:
                self._floor_value = timestamp
                self._floor_client = client_id
        elif timestamp > current:
            self._latest_client_timestamp[client_id] = timestamp
            # raising any other client's latest cannot lower the minimum;
            # raising the floor client's invalidates the cached floor
            if client_id == self._floor_client:
                self._floor_stale = True
        self._known_clients.add(client_id)

    # ----------------------------------------------------- tentative batching
    def _tentative_groups(self) -> List[List[TimestampedMessage]]:
        """Batching of the current pending set.

        Always uses the *strict* batching rule: a batch boundary requires
        every straddling pair to be confident.  This is what makes a single
        high-uncertainty message pull later messages into its batch (the
        Appendix C scenario) and what makes emitting the first batch safe.
        """
        if not self._pending:
            return []
        if self._engine is not None:
            return self._engine.tentative_groups()
        return self._reference_tentative_groups()

    def _first_tentative_group(self) -> Optional[List[TimestampedMessage]]:
        """First tentative batch (the emission candidate), or ``None``.

        Identical to ``_tentative_groups()[0]`` — the engine computes it with
        a prefix scan instead of the full boundary pass, since the emission
        check never consumes the later groups.
        """
        if not self._pending:
            return None
        if self._engine is not None:
            return self._engine.first_tentative_group()
        groups = self._reference_tentative_groups()
        return groups[0] if groups else None

    def _reference_tentative_groups(self) -> List[List[TimestampedMessage]]:
        """The original recompute-everything path (parity oracle for the engine)."""
        relation = LikelyHappenedBefore.from_model(self._pending, self._model)
        tournament = TournamentGraph.from_relation(relation, tie_epsilon=self._config.tie_epsilon)
        resolve_cycles(tournament.graph, self._config.cycle_policy, rng=self._rng)
        order = tournament.topological_order()
        outcome = form_batches(order, relation, self._config.threshold, mode="strict")
        return [list(batch.messages) for batch in outcome.batches]

    def safe_emission_time(self, batch: Sequence[TimestampedMessage]) -> float:
        """``T_b = max_k T^F_k`` over the batch (paper §3.5)."""
        if not batch:
            raise ValueError("cannot compute a safe emission time for an empty batch")
        if self._engine is not None:
            return max(
                self._engine.safe_emission_time(message, self._config.p_safe)
                for message in batch
            )
        return max(
            self._model.safe_emission_time(message, self._config.p_safe) for message in batch
        )

    def _completeness_floor(self) -> float:
        """Minimum latest-heard timestamp over the known clients.

        ``-inf`` while any known client has never been heard from.  The
        minimum is cached and only recomputed when the floor-defining client
        itself advances, so the per-check cost is O(1) amortised instead of
        a scan over every known client (``_completeness_scan``, kept as the
        parity oracle).
        """
        if self._unheard_clients:
            return -float("inf")
        if self._floor_stale:
            self._floor_client, self._floor_value = min(
                self._latest_client_timestamp.items(), key=lambda entry: entry[1]
            )
            self._floor_stale = False
        return self._floor_value

    def _completeness_scan(self, batch_horizon: float) -> bool:
        """The original O(known clients) completeness scan (parity oracle)."""
        return all(
            self._latest_client_timestamp.get(client_id, -float("inf")) >= batch_horizon
            for client_id in self._known_clients
        )

    def _completeness_satisfied(self, batch: Sequence[TimestampedMessage]) -> bool:
        mode = self._config.completeness_mode
        if mode == "none":
            return True
        batch_horizon = max(message.timestamp for message in batch)
        if mode == "heartbeat":
            if not self._known_clients:
                return True
            # On an ordered channel, having heard from a client at timestamp
            # >= horizon means none of its messages timestamped below the
            # horizon are still in flight (per-client FIFO + monotone
            # per-client timestamps).  Every known client clears the horizon
            # exactly when the minimum latest-heard timestamp does.
            return self._completeness_floor() >= batch_horizon
        # bounded_delay: all messages timestamped <= batch_horizon have arrived
        # once the sequencer clock passes batch_horizon + max one-way delay.
        return self.now >= batch_horizon + self._config.max_network_delay

    # ---------------------------------------------------------------- emission
    def _schedule_check(self, at: Optional[float] = None) -> None:
        when = self.now if at is None else max(float(at), self.now)
        if self._check_event is not None and not self._check_event.cancelled:
            if self._check_event.time <= when:
                self._extension_count += 1
            self.cancel(self._check_event)
        self._check_event = self.call_at(when, self._emission_check)

    def _batch_age(self, candidate: Sequence[TimestampedMessage]) -> float:
        """Age (seconds) of the candidate's oldest arrival at the sequencer."""
        arrivals = [
            self._arrival_times.get(message.key, self.now) for message in candidate
        ]
        return self.now - min(arrivals)

    def _emission_check(self) -> None:
        if not self._obs.enabled:
            self._run_emission_check()
            return
        # stamp the check's start so emitted messages can attribute their
        # "emission_check" stage to the decision that released them
        self._check_wall = time.perf_counter()
        self._obs.count("sequencer.emission_checks")
        try:
            self._run_emission_check()
        finally:
            self._obs.observe(
                "sequencer.emission_check_wall_ms",
                (time.perf_counter() - self._check_wall) * 1e3,
            )
            self._check_wall = None

    def _run_emission_check(self) -> None:
        self._check_event = None
        emitted_any = True
        while emitted_any and self._pending:
            emitted_any = False
            candidate = self._first_tentative_group()
            if not candidate:
                return
            safe_time = self.safe_emission_time(candidate)
            max_age = self._config.max_batch_age
            # the guard must use the same float expression as the deadline it
            # schedules: ``now - oldest >= max_age`` can be false while
            # ``oldest + max_age <= now`` holds, and that disagreement used to
            # respin the check at the same instant forever (livelock)
            if max_age is not None and self.now >= self._forced_deadline(candidate, float("inf")):
                # liveness guard: a failed client or adverse arrival pattern must
                # not block the sequencer forever (paper §3.5 liveness caveat)
                self._forced_emissions += 1
                self._emit(candidate, safe_time)
                emitted_any = True
                continue
            if self.now >= safe_time and self._completeness_satisfied(candidate):
                self._emit(candidate, safe_time)
                emitted_any = True
            elif self.now < safe_time:
                self._schedule_check(min(safe_time, self._forced_deadline(candidate, safe_time)))
                return
            elif self._config.completeness_mode == "bounded_delay":
                # completeness will be satisfied by the passage of time alone
                horizon = max(message.timestamp for message in candidate)
                deadline = horizon + self._config.max_network_delay
                self._schedule_check(min(deadline, self._forced_deadline(candidate, deadline)))
                return
            else:
                # waiting on completeness; a future heartbeat/message (or the
                # liveness guard's deadline) will trigger the next check
                if max_age is not None:
                    self._schedule_check(self._forced_deadline(candidate, float("inf")))
                return

    def _forced_deadline(self, candidate: Sequence[TimestampedMessage], fallback: float) -> float:
        """Absolute time at which the liveness guard would force emission."""
        if self._config.max_batch_age is None:
            return fallback
        oldest_arrival = min(
            self._arrival_times.get(message.key, self.now) for message in candidate
        )
        return oldest_arrival + self._config.max_batch_age

    def _emit(self, candidate: List[TimestampedMessage], safe_time: float) -> None:
        batch = SequencedBatch(rank=self._next_rank, messages=tuple(candidate), emitted_at=self.now)
        emitted = EmittedBatch(batch=batch, emitted_at=self.now, safe_emission_time=safe_time)
        self._emitted.append(emitted)
        self._next_rank += 1
        emitted_keys = {message.key for message in candidate}
        self._pending = [message for message in self._pending if message.key not in emitted_keys]
        # release per-message bookkeeping: without this the arrival-time dict
        # (and the engine's matrix row) would grow for the sequencer's lifetime
        for key in emitted_keys:
            self._arrival_times.pop(key, None)
        if self._engine is not None:
            self._engine.remove_messages(emitted_keys)
        if self._obs.enabled:
            for message in candidate:
                self._obs.stage(
                    "emission_check",
                    message,
                    self.now,
                    shard=self._shard_index,
                    wall=self._check_wall,
                )
                self._obs.stage("batch_emit", message, self.now, shard=self._shard_index)
            self._obs.count("sequencer.batches_emitted")
            self._obs.observe("sequencer.batch_size", len(candidate))
        if self._on_emit is not None:
            self._on_emit(emitted)

    # ------------------------------------------------------------- durability
    def snapshot(self) -> Dict[str, object]:
        """Picklable checkpoint of the sequencer's live ordering state.

        Captures everything a replacement process needs to continue the
        emission stream bitwise-identically: the pending set with its arrival
        times, the per-client completeness horizon, the next emission rank and
        the RNG state (cycle resolution draws must continue where they left
        off).  Emitted batches are deliberately *not* captured — the durable
        history lives downstream in the merged order — so the checkpoint size
        is bounded by the pending set, not the stream length (ROADMAP
        durability item).
        """
        return {
            "pending": tuple(self._pending),
            "arrival_times": dict(self._arrival_times),
            "latest_client_timestamp": dict(self._latest_client_timestamp),
            "known_clients": tuple(sorted(self._known_clients)),
            "unheard_clients": tuple(sorted(self._unheard_clients)),
            "next_rank": self._next_rank,
            "extension_count": self._extension_count,
            "forced_emissions": self._forced_emissions,
            "distribution_refreshes": self._distribution_refreshes,
            "rng_state": self._rng.bit_generator.state,
        }

    def restore(self, state: Dict[str, object]) -> None:
        """Rehydrate a :meth:`snapshot` into this (fresh) sequencer.

        The sequencer must not have received any traffic yet: restore rebuilds
        the pending set (re-appending it into the incremental engine), the
        completeness horizon and the RNG stream, then re-arms the emission
        check so batches continue from the checkpoint's next rank.  Feeding
        the post-checkpoint arrival stream afterwards reproduces the original
        run's remaining emissions bitwise (parity-tested in ``tests/core``).
        """
        if self._pending or self._emitted or self._latest_client_timestamp:
            raise ValueError("restore() requires a fresh sequencer with no traffic received")
        self._rng.bit_generator.state = state["rng_state"]
        self._known_clients = set(state["known_clients"])
        self._latest_client_timestamp = dict(state["latest_client_timestamp"])
        self._unheard_clients = set(state["unheard_clients"])
        self._floor_value = float("inf")
        self._floor_client = None
        self._floor_stale = bool(self._latest_client_timestamp)
        pending = list(state["pending"])
        self._pending = pending
        self._arrival_times = dict(state["arrival_times"])
        if self._engine is not None and pending:
            self._engine.add_messages(pending)
        self._next_rank = int(state["next_rank"])
        self._extension_count = int(state["extension_count"])
        self._forced_emissions = int(state["forced_emissions"])
        self._distribution_refreshes = int(state["distribution_refreshes"])
        if self._pending:
            self._schedule_check()

    def halt(self) -> None:
        """Stop processing: cancel any scheduled emission check.

        Models a crashed sequencer process (used by cluster shard failover);
        pending messages stay readable so a failover controller can replay
        them elsewhere, but no further batches are emitted.
        """
        if self._check_event is not None:
            self.cancel(self._check_event)
            self._check_event = None

    def flush(self) -> List[EmittedBatch]:
        """Force-emit everything still pending (end of an experiment run).

        The remaining messages are batched exactly as the offline pipeline
        would batch them, ignoring safe-emission waits and completeness.
        """
        for group in self._tentative_groups():
            self._emit(group, safe_time=self.now)
        return self.emitted_batches

    # ------------------------------------------------------------------ views
    def arrival_time_of(self, message: TimestampedMessage) -> Optional[float]:
        """Arrival time of a still-pending ``message`` at the sequencer.

        Bookkeeping is released on emission, so emitted messages return
        ``None``.
        """
        return self._arrival_times.get(message.key)

    def result(self) -> SequencingResult:
        """The emitted batches as a :class:`SequencingResult`."""
        batches = tuple(emitted.batch for emitted in self._emitted)
        metadata = {
            "sequencer": "tommy-online",
            "p_safe": self._config.p_safe,
            "threshold": self._config.threshold,
            "completeness_mode": self._config.completeness_mode,
            "extensions": self._extension_count,
            "forced_emissions": self._forced_emissions,
            "distribution_refreshes": self._distribution_refreshes,
            "pending": len(self._pending),
        }
        if self._engine is not None:
            metadata["engine"] = self._engine.stats.as_dict()
        return SequencingResult(batches=batches, metadata=metadata)

    def emission_latencies(self) -> List[float]:
        """Per-message generation-to-emission latencies across all emitted batches."""
        latencies: List[float] = []
        for emitted in self._emitted:
            latencies.extend(emitted.emission_latencies())
        return latencies
