"""Exactly-once intake gate, shared by frozen and live ingestion paths.

:class:`IntakeDedupeGate` is the cluster-boundary dedup rule extracted from
:class:`~repro.cluster.sharded.ShardedSequencer` so that the live ingestion
edge (:mod:`repro.edge` / :class:`repro.runtime.live.LiveDispatcher`) can make
admit/reject decisions *synchronously at submit time* — an acked admission is
a promise the message will be sequenced exactly once — while the sharded
cluster keeps the same gate behind its public ``receive*`` wrappers.

Contract (identical to the pre-extraction behaviour, pinned by
``tests/cluster/test_dedupe_gauge.py``):

* a ``(client_id, message_id)`` key is admitted at most once;
* heartbeats are idempotent and always pass, but their sequence numbers
  advance the per-client delivery horizon;
* with horizon pruning enabled (the default), keys whose sequence number
  falls strictly below the per-client horizon are released from the seen
  set — on ordered (FIFO per-client) channels they can never legitimately
  recur, so re-deliveries in the pruned region are rejected by the horizon
  comparison alone and the retained set stays bounded by the in-flight
  window;
* telemetry surface: ``cluster.duplicates_suppressed`` /
  ``cluster.dedupe_keys_pruned`` counters, ``cluster.dedupe_seen_keys``
  gauge, and a ``gate``/``duplicate_suppressed`` lifecycle event per
  rejection.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs import Telemetry, resolve


class IntakeDedupeGate:
    """Exactly-once admission gate keyed on ``(client_id, message_id)``.

    The gate is transport-agnostic: the sharded cluster consults it inside
    its ``receive*`` wrappers, and the live dispatcher consults it once per
    socket-delivered frame before routing.  Internal re-routing and failover
    replay must *not* pass through the gate — a replayed pending message was
    already admitted once and must reach its new owner.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        prune_horizon: bool = True,
        telemetry: Optional[Telemetry] = None,
        clock: Optional[Callable[[], float]] = None,
        metric_prefix: str = "cluster",
    ) -> None:
        self._enabled = bool(enabled)
        self._prune = bool(prune_horizon)
        self._obs = resolve(telemetry)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._prefix = metric_prefix
        self._seen_keys: Set[Tuple[str, int]] = set()
        self._horizon: Dict[str, int] = {}
        self._retained: Dict[str, List[Tuple[int, Tuple[str, int]]]] = {}
        self._keys_pruned = 0
        self._duplicates = 0

    # ------------------------------------------------------------- properties
    @property
    def enabled(self) -> bool:
        """Whether the gate rejects anything at all (disabled gates admit everything)."""
        return self._enabled

    @property
    def duplicates_suppressed(self) -> int:
        """Messages rejected by the gate so far."""
        return self._duplicates

    @property
    def keys_pruned(self) -> int:
        """Seen keys released by the delivery-horizon pruning rule so far."""
        return self._keys_pruned

    @property
    def seen_key_count(self) -> int:
        """Current size of the retained seen-key set."""
        return len(self._seen_keys)

    # ------------------------------------------------------------------ logic
    def _note_duplicate(self, item: TimestampedMessage) -> None:
        self._duplicates += 1
        if self._obs.enabled:
            self._obs.count(f"{self._prefix}.duplicates_suppressed")
            self._obs.event(
                "gate",
                "duplicate_suppressed",
                self._clock(),
                client_id=item.client_id,
                sequence=int(item.sequence_number),
            )

    def advance_horizon(self, client_id: str, sequence: int) -> None:
        """Raise ``client_id``'s delivery horizon and prune keys below it.

        A key whose sequence number is strictly below the horizon can never
        be delivered again on an ordered channel, so its set entry is
        released; later re-deliveries in the pruned region are rejected by
        the horizon comparison alone.
        """
        current = self._horizon.get(client_id)
        if current is not None and sequence <= current:
            return
        self._horizon[client_id] = sequence
        retained = self._retained.get(client_id)
        if not retained:
            return
        keep = [entry for entry in retained if entry[0] >= sequence]
        pruned = len(retained) - len(keep)
        if pruned:
            for seq, key in retained:
                if seq < sequence:
                    self._seen_keys.discard(key)
            self._retained[client_id] = keep
            self._keys_pruned += pruned
            if self._obs.enabled:
                self._obs.count(f"{self._prefix}.dedupe_keys_pruned", pruned)
                self._obs.gauge(f"{self._prefix}.dedupe_seen_keys", len(self._seen_keys))

    def is_duplicate(self, item: Union[TimestampedMessage, Heartbeat]) -> bool:
        """Return ``True`` when ``item`` must be rejected (messages only).

        Heartbeats are idempotent and pass through (but their sequence
        numbers advance the delivery horizon — a heartbeat clearing sequence
        s proves every earlier send was delivered).
        """
        if not self._enabled:
            return False
        if isinstance(item, Heartbeat):
            if self._prune and item.sequence_number:
                self.advance_horizon(item.client_id, int(item.sequence_number))
            return False
        if not isinstance(item, TimestampedMessage):
            return False
        sequence = int(item.sequence_number)
        horizon = self._horizon.get(item.client_id)
        if self._prune and horizon is not None and sequence < horizon:
            # pruned region: every first delivery below the horizon already
            # happened (FIFO), so this can only be a re-delivery
            self._note_duplicate(item)
            return True
        if item.key in self._seen_keys:
            self._note_duplicate(item)
            return True
        self._seen_keys.add(item.key)
        if self._prune:
            self._retained.setdefault(item.client_id, []).append((sequence, item.key))
            if horizon is None or sequence > horizon:
                self.advance_horizon(item.client_id, sequence)
        if self._obs.enabled:
            self._obs.gauge(f"{self._prefix}.dedupe_seen_keys", len(self._seen_keys))
        return False

    def admit(self, item: Union[TimestampedMessage, Heartbeat]) -> bool:
        """Convenience inverse of :meth:`is_duplicate` for submit-time acks."""
        return not self.is_duplicate(item)

    def as_dict(self) -> Dict[str, int]:
        """Snapshot of the gate's counters (registry ``SnapshotSource`` shape)."""
        return {
            "enabled": int(self._enabled),
            "duplicates_suppressed": self._duplicates,
            "seen_keys": len(self._seen_keys),
            "keys_pruned": self._keys_pruned,
        }
