"""Probabilistic cross-shard merge of per-shard batch streams.

Each shard emits a totally ordered stream of fair batches over *its own*
clients.  The cluster-wide order is recovered by a batch-level instance of
the same probabilistic machinery the sequencer itself uses:

* every emitted shard batch becomes a node of a directed graph;
* within a shard, consecutive batches keep their emission order with
  probability 1 (the shard already separated them confidently);
* across shards, the likely-happened-before probability of two batches is
  the mean pairwise :class:`~repro.core.probability.PrecedenceModel`
  probability over their message cross pairs — the batch-level analogue of
  :class:`~repro.core.relation.LikelyHappenedBefore` (the mean preserves
  complementarity: ``P(A<B) + P(B<A) = 1``);
* the kept-direction graph is made acyclic with the existing
  :func:`~repro.core.cycles.resolve_cycles` policies and linearised with the
  same deterministic topological tie-break as
  :class:`~repro.core.tournament.TournamentGraph`;
* finally, adjacent batches from *different* shards whose precedence
  probability does not exceed the threshold are coalesced into one
  cluster-wide rank — the probabilistic merge: the cluster refuses to
  invent an order between shard batches it cannot justify.

The batch-level probabilities are computed by a single *flattened kernel*:
all messages across all shard batches are concatenated, the cross-client
preceding probabilities are evaluated once through the vectorized engine
kernels (Gaussian closed form / shared :class:`~repro.core.engine.PairTableCache`
difference-CDF tables), and the batch-by-batch precedence-mean matrix falls
out of two ``np.add.reduceat`` segment reductions — zero per-batch-pair
Python calls.  Batch pairs whose *certainty windows* cannot overlap
(:class:`CertaintyWindows`) resolve to exactly ``0.0``/``1.0`` without
per-pair kernel calls: the windows are sized so the kernel itself would have
saturated to the same float.  (Offline, fully pruned batches drop out of the
flattened evaluation; the streaming path goes further and never evaluates a
pruned pair's entries.)

:class:`StreamingMerger` maintains the same state *incrementally*:
``observe_batch`` appends one row/column of batch precedences (one
vectorized kernel call against all unpruned existing batches) and
``result()`` linearises the maintained matrix — byte-identical to a fresh
:meth:`CrossShardMerger.merge` over the same streams, which is kept as the
parity oracle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.core.cycles import eades_linear_arrangement
from repro.core.engine import EngineStats, PairTableCache, cross_probability_matrix
from repro.core.probability import PrecedenceModel
from repro.distributions.base import OffsetDistribution
from repro.network.message import SequencedBatch, TimestampedMessage
from repro.obs.telemetry import NO_TELEMETRY, Telemetry, resolve
from repro.sequencers.base import SequencingResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tree imports merge)
    from repro.cluster.tree import HierarchicalMerger, MergeTopology

#: A batch node: (shard index, position of the batch in that shard's stream).
BatchNode = Tuple[int, int]

#: z-score beyond which the Gaussian closed form saturates to exactly 0/1 in
#: float64 (``erf`` rounds to ±1 past ~5.9 standard deviations; 9 adds a
#: comfortable margin, verified by the pruning soundness tests).
_GAUSSIAN_SATURATION_Z = 9.0


class CertaintyWindows:
    """Per-client certainty radii for timestamp-window pruning.

    For client ``c`` the radius ``r_c`` is chosen so that for *any* ordered
    client pair ``(a, b)`` served by the engine kernels, a timestamp gap
    ``T_b - T_a > r_a + r_b`` makes the preceding probability exactly
    ``1.0`` (and ``< -(r_a + r_b)`` exactly ``0.0``) in float64:

    * Gaussian closed form: ``r = 9*std + |mean|`` gives
      ``z = (gap - Δmu)/sqrt(var_a + var_b) > 9`` (since
      ``sqrt(var_a + var_b) <= std_a + std_b``), deep inside ``erf``
      saturation;
    * difference-CDF tables: the convolution grid spans at most
      ``max(hi) - min(lo)`` of the two supports, and ``r = 2*max(|lo|, |hi|)``
      bounds that from above, so the gap lands past the grid end where
      ``np.interp`` returns its exact 0/1 fill values.

    The radius is the max of both bounds (a pair's serving kernel depends on
    the model method and the *other* client), cached per client and
    version-checked against the model so distribution refreshes are picked
    up.  Clients whose distribution has no finite support report an infinite
    radius — pairs involving them are never pruned.
    """

    def __init__(self, model: PrecedenceModel) -> None:
        self._model = model
        self._radii: Dict[str, Tuple[int, float]] = {}

    def radius(self, client_id: str) -> float:
        """Certainty radius of ``client_id`` (``inf`` when not prunable)."""
        version = self._model.client_version(client_id)
        cached = self._radii.get(client_id)
        if cached is not None and cached[0] == version:
            return cached[1]
        radius = self._compute(client_id)
        self._radii[client_id] = (version, radius)
        return radius

    def _compute(self, client_id: str) -> float:
        distribution = self._model.distribution_for(client_id)
        try:
            lo, hi = distribution.support()
            std = distribution.std
            mean = distribution.mean
        except Exception:
            return float("inf")
        bounds = (lo, hi, std, mean)
        if not all(np.isfinite(value) for value in bounds):
            return float("inf")
        gaussian_radius = _GAUSSIAN_SATURATION_Z * std + abs(mean)
        table_radius = 2.0 * max(abs(lo), abs(hi))
        return float(max(gaussian_radius, table_radius))

    def batch_window(self, batch: SequencedBatch) -> Tuple[float, float]:
        """``(earliest, latest)`` certainty window over the batch's messages."""
        earliest = float("inf")
        latest = -float("inf")
        for message in batch.messages:
            radius = self.radius(message.client_id)
            earliest = min(earliest, message.timestamp - radius)
            latest = max(latest, message.timestamp + radius)
        return earliest, latest

    def invalidate_client(self, client_id: str) -> None:
        """Drop the cached radius of ``client_id`` (distribution refresh)."""
        self._radii.pop(client_id, None)


@dataclass(frozen=True)
class MergeOutcome:
    """Result of one cross-shard merge pass."""

    result: SequencingResult
    merged_cross_shard: int
    cross_pairs_evaluated: int
    cycles_broken: int
    wall_seconds: float
    cross_pairs_pruned: int = 0

    @property
    def batch_count(self) -> int:
        """Number of cluster-wide batches after merging."""
        return self.result.batch_count


def merge_fingerprint(outcome: MergeOutcome) -> List[Tuple[int, Tuple[Tuple[str, int], ...]]]:
    """Rank + message keys per merged batch — the canonical parity comparison.

    Two merge outcomes are considered byte-identical (streaming vs offline,
    fast vs reference) exactly when their fingerprints are equal.
    """
    return [
        (batch.rank, tuple(message.key for message in batch.messages))
        for batch in outcome.result.batches
    ]


def _pair_block_forward(
    messages_a: Sequence[TimestampedMessage],
    messages_b: Sequence[TimestampedMessage],
    model: PrecedenceModel,
    stats: Optional[EngineStats],
    tables: Optional[PairTableCache],
) -> float:
    """Mean of ``P(a precedes b)`` over the message cross pairs of one pair.

    The reduction is the exact float sequence the flattened kernel's segment
    reductions perform (sequential column sums per row, then a sequential
    sum over the row totals), so single-pair recomputations — the streaming
    merger's distribution-refresh path — stay bit-identical to the batch
    kernels.
    """
    matrix = cross_probability_matrix(messages_a, messages_b, model, stats=stats, tables=tables)
    if matrix.size == 0:
        return 0.5
    row_totals = np.add.reduceat(matrix, [0], axis=1)
    total = np.add.reduceat(row_totals, [0], axis=0)[0, 0]
    return float(total / (matrix.shape[0] * matrix.shape[1]))


def _empty_outcome(start: float) -> MergeOutcome:
    empty = SequencingResult(batches=(), metadata={"sequencer": "cluster-merge"})
    return MergeOutcome(
        result=empty,
        merged_cross_shard=0,
        cross_pairs_evaluated=0,
        cycles_broken=0,
        wall_seconds=time.perf_counter() - start,
        cross_pairs_pruned=0,
    )


class _NodeLayout:
    """Shard-major node enumeration shared by the kernel and linearisation.

    One construction per merge: the node list, its id/shard lookup arrays and
    the cross-shard upper-triangle mask (the canonical pair orientation).
    """

    def __init__(self, streams: Sequence[Sequence[SequencedBatch]]) -> None:
        self.nodes: List[BatchNode] = [
            (shard, index) for shard, stream in enumerate(streams) for index in range(len(stream))
        ]
        self.node_ids: Dict[BatchNode, int] = {
            node: node_id for node_id, node in enumerate(self.nodes)
        }
        self.node_shard = np.asarray([shard for shard, _ in self.nodes], dtype=np.int64)
        self.shard_lengths = [len(stream) for stream in streams]
        n = len(self.nodes)
        cross = self.node_shard[:, None] != self.node_shard[None, :]
        self.cross_upper = cross & np.triu(np.ones((n, n), dtype=bool), k=1)


def _lexicographic_order(
    node_shard: np.ndarray,
    shard_lengths: Sequence[int],
    nodes: Sequence[BatchNode],
    edge: np.ndarray,
    out_degree: np.ndarray,
) -> Optional[List[int]]:
    """Kahn's algorithm with the reference lexicographical tie-break.

    ``edge[u][v]`` holds the directed cross-shard kept edges; the
    within-shard emission chains are modelled implicitly: only the earliest
    unplaced batch of each shard is ever a candidate.  Returns node ids in
    order, or ``None`` when the graph is cyclic (the caller falls back to
    the materialised-graph reference path).  The candidate choice minimises
    ``(-out_degree, node)`` — exactly the key
    :func:`networkx.lexicographical_topological_sort` uses in
    :meth:`CrossShardMerger.merge`, which is unique per node, so both
    orders agree node for node.
    """
    num_shards = len(shard_lengths)
    bases: List[int] = []
    base = 0
    for length in shard_lengths:
        bases.append(base)
        base += length
    next_index = [0] * num_shards
    indegree = edge.sum(axis=0).astype(np.int64)
    order: List[int] = []
    total = len(nodes)
    for _ in range(total):
        best_id = -1
        best_key: Optional[Tuple[int, BatchNode]] = None
        for shard in range(num_shards):
            if next_index[shard] >= shard_lengths[shard]:
                continue
            head = bases[shard] + next_index[shard]
            if indegree[head]:
                continue
            key = (-int(out_degree[head]), nodes[head])
            if best_key is None or key < best_key:
                best_key = key
                best_id = head
        if best_id < 0:
            return None  # cyclic: some unplaced head still has predecessors
        order.append(best_id)
        next_index[node_shard[best_id]] += 1
        indegree[edge[best_id]] -= 1
    return order


def _resolve_cycles_protected(
    graph: nx.DiGraph,
    cycle_policy: str,
    rng: np.random.Generator,
    protected: frozenset,
) -> int:
    """Break cycles like :func:`resolve_cycles`, never removing protected edges.

    The within-shard chain edges encode order the shard already *committed*
    by emitting; a cycle may never be resolved by inverting them.  Each
    policy replays the unprotected implementation's choice (including its
    RNG consumption) and only deviates when the original victim would have
    been a protected edge — a case that previously produced an invalid
    linearisation.  Every cycle contains at least one cross-shard edge (the
    chains themselves are acyclic), so a removable candidate always exists.

    Returns the number of removed edges; mutates ``graph`` in place.
    """
    if nx.is_directed_acyclic_graph(graph):
        return 0
    removed = 0
    if cycle_policy == "eades":
        order = eades_linear_arrangement(graph)
        position = {node: index for index, node in enumerate(order)}
        for source, target in list(graph.edges):
            if position[source] > position[target] and (source, target) not in protected:
                graph.remove_edge(source, target)
                removed += 1
        # a protected backward edge can leave residual cycles: fall through
        # to the protected greedy loop below to finish the job
    while True:
        try:
            cycle = [
                (source, target)
                for source, target, _direction in nx.find_cycle(graph, orientation="original")
            ]
        except nx.NetworkXNoCycle:
            break
        if cycle_policy == "stochastic":
            weights = np.asarray(
                [1.0 - float(graph.edges[edge]["probability"]) + 1e-6 for edge in cycle],
                dtype=float,
            )
            weights = weights / weights.sum()
            victim = cycle[int(rng.choice(len(cycle), p=weights))]
        else:
            victim = min(cycle, key=lambda edge: graph.edges[edge]["probability"])
        if victim in protected:
            candidates = [edge for edge in cycle if edge not in protected]
            victim = min(candidates, key=lambda edge: graph.edges[edge]["probability"])
        graph.remove_edge(*victim)
        removed += 1
    return removed


def _resolve_order_via_graph(
    streams: Sequence[Sequence[SequencedBatch]],
    nodes: Sequence[BatchNode],
    node_ids: Dict[BatchNode, int],
    forward_matrix: np.ndarray,
    cycle_policy: str,
    rng: np.random.Generator,
) -> Tuple[List[BatchNode], int]:
    """Reference path for cyclic tournaments: materialise and resolve.

    Node and edge insertion replays the original pairwise merger verbatim
    (within-shard chains first, then cross pairs in shard-major order), so
    cycle detection, cycle-breaking and the topological tie-break walk the
    graph exactly like the frozen reference implementation — except that
    within-shard chain edges are protected from cycle breaking (the frozen
    path could invert a shard's committed emission order when a saturated
    cycle made a chain edge the removal victim, which the coalescing stage
    rejects as an invariant violation).
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    chain_edges = []
    for shard, stream in enumerate(streams):
        for index in range(len(stream) - 1):
            graph.add_edge((shard, index), (shard, index + 1), probability=1.0)
            chain_edges.append(((shard, index), (shard, index + 1)))
    num_shards = len(streams)
    for shard_a in range(num_shards):
        for shard_b in range(shard_a + 1, num_shards):
            for index_a in range(len(streams[shard_a])):
                node_a: BatchNode = (shard_a, index_a)
                id_a = node_ids[node_a]
                for index_b in range(len(streams[shard_b])):
                    node_b: BatchNode = (shard_b, index_b)
                    forward = forward_matrix[id_a, node_ids[node_b]]
                    if forward >= 0.5:
                        graph.add_edge(node_a, node_b, probability=float(forward))
                    else:
                        graph.add_edge(node_b, node_a, probability=float(1.0 - forward))
    cycles_broken = _resolve_cycles_protected(
        graph, cycle_policy, rng, frozenset(chain_edges)
    )
    out_degree = dict(graph.out_degree())
    order = list(
        nx.lexicographical_topological_sort(
            graph, key=lambda node: (-out_degree.get(node, 0), node)
        )
    )
    return order, cycles_broken


def _merge_from_matrix(
    streams: Sequence[Sequence[SequencedBatch]],
    forward_matrix: np.ndarray,
    threshold: float,
    cycle_policy: str,
    rng: np.random.Generator,
    cross_pairs_evaluated: int,
    cross_pairs_pruned: int,
    start: float,
    stats: Optional[EngineStats] = None,
    layout: Optional[_NodeLayout] = None,
    obs=NO_TELEMETRY,
) -> MergeOutcome:
    """Linearise + coalesce a node-level forward-probability matrix.

    Shared by the offline flattened merge and the streaming merger, so both
    produce byte-identical output from byte-identical matrices.
    """
    if layout is None:
        layout = _NodeLayout(streams)
    nodes = layout.nodes
    node_ids = layout.node_ids
    node_shard = layout.node_shard
    shard_lengths = layout.shard_lengths
    cross_upper = layout.cross_upper
    n = len(nodes)

    # kept-edge directions, exactly the reference comparison (forward >= 0.5
    # orients lower-shard -> higher-shard)
    wins = cross_upper & (forward_matrix >= 0.5)
    edge = wins | (cross_upper & ~wins).T
    chain_out = np.zeros(n, dtype=np.int64)
    base = 0
    for length in shard_lengths:
        if length > 1:
            chain_out[base : base + length - 1] = 1
        base += length
    out_degree = edge.sum(axis=1).astype(np.int64) + chain_out

    order_ids = _lexicographic_order(node_shard, shard_lengths, nodes, edge, out_degree)
    if order_ids is not None:
        order = [nodes[node_id] for node_id in order_ids]
        cycles_broken = 0
    else:
        order, cycles_broken = _resolve_order_via_graph(
            streams, nodes, node_ids, forward_matrix, cycle_policy, rng
        )
        if stats is not None:
            stats.cycle_resolutions += 1

    # probabilistic coalescing: a cross-shard boundary needs confidence.
    # Within-shard adjacency is rank-certain *by construction* (the shard
    # emitted the batches in order and the chain edges enforce it), so it is
    # made explicit here instead of hiding behind a dict-lookup default; a
    # cross-shard pair missing from the matrix is a hard error.
    groups: List[List[BatchNode]] = []
    merged_cross_shard = 0
    for node in order:
        if groups:
            previous = groups[-1][-1]
            if previous[0] != node[0]:
                forward = float(forward_matrix[node_ids[previous], node_ids[node]])
                if np.isnan(forward):
                    raise AssertionError(
                        f"no precedence recorded for cross-shard pair {previous} -> {node}"
                    )
                if not forward > threshold:
                    groups[-1].append(node)
                    merged_cross_shard += 1
                    continue
            elif previous[1] >= node[1]:
                raise AssertionError(
                    f"within-shard emission order violated: {previous} placed before {node}"
                )
        groups.append([node])

    batches: List[SequencedBatch] = []
    for rank, group in enumerate(groups):
        messages = tuple(
            message
            for shard, index in group
            for message in streams[shard][index].messages
        )
        emitted = [
            streams[shard][index].emitted_at
            for shard, index in group
            if streams[shard][index].emitted_at is not None
        ]
        commit_time = max(emitted) if emitted else None
        batches.append(
            SequencedBatch(
                rank=rank,
                messages=messages,
                emitted_at=commit_time,
            )
        )
        if obs.enabled:
            # a message's commit time is when its merged batch became final:
            # the latest source-batch emission inside the group (sim time, so
            # reruns with the same seed stamp identical commits)
            for shard, index in group:
                for message in streams[shard][index].messages:
                    obs.stage(
                        "merge_commit",
                        message,
                        commit_time if commit_time is not None else 0.0,
                        shard=shard,
                    )

    wall = time.perf_counter() - start
    result = SequencingResult(
        batches=tuple(batches),
        metadata={
            "sequencer": "cluster-merge",
            "shards": len(streams),
            "threshold": threshold,
            "cycle_policy": cycle_policy,
            "merged_cross_shard": merged_cross_shard,
            "cross_pairs_evaluated": cross_pairs_evaluated,
            "cross_pairs_pruned": cross_pairs_pruned,
            "cycles_broken": cycles_broken,
            "merge_wall_seconds": wall,
        },
    )
    return MergeOutcome(
        result=result,
        merged_cross_shard=merged_cross_shard,
        cross_pairs_evaluated=cross_pairs_evaluated,
        cycles_broken=cycles_broken,
        wall_seconds=wall,
        cross_pairs_pruned=cross_pairs_pruned,
    )


class CrossShardMerger:
    """Merges per-shard emitted batches into one cluster-wide fair order."""

    def __init__(
        self,
        model: PrecedenceModel,
        threshold: float = 0.75,
        cycle_policy: str = "greedy",
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        if not 0.5 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
        self._model = model
        self._threshold = float(threshold)
        self._cycle_policy = cycle_policy
        self._seed = int(seed)
        self._telemetry = telemetry
        self._obs = resolve(telemetry)
        self._rng = np.random.default_rng(seed)
        self._engine_stats = EngineStats()
        # difference-CDF tables shared across every batch_precedence call, so
        # empirical/learned client pairs convolve once per pair, not per batch
        self._tables = PairTableCache(model, stats=self._engine_stats)
        self._windows = CertaintyWindows(model)

    @property
    def threshold(self) -> float:
        """Cross-shard boundary confidence threshold."""
        return self._threshold

    @property
    def cycle_policy(self) -> str:
        """Cycle-resolution policy of the linearisation stage."""
        return self._cycle_policy

    @property
    def seed(self) -> int:
        """RNG seed shared by every merge path built from this merger."""
        return self._seed

    @property
    def observer(self) -> Telemetry:
        """The resolved telemetry hub (``NO_TELEMETRY`` when disabled)."""
        return self._obs

    @property
    def model(self) -> PrecedenceModel:
        """The cluster-wide precedence model (all clients registered)."""
        return self._model

    @property
    def pair_tables(self) -> PairTableCache:
        """The shared per-client-pair difference-CDF table cache."""
        return self._tables

    @property
    def certainty_windows(self) -> CertaintyWindows:
        """The per-client certainty radii used for window pruning."""
        return self._windows

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register or refresh a client's distribution on the merge model.

        Drops the cached difference-CDF tables involving the client so the
        next merge prices its cross-shard pairs with the new distribution.
        """
        self._model.register_client(client_id, distribution)
        self._tables.invalidate_client(client_id)
        self._windows.invalidate_client(client_id)

    def streaming_merger(
        self, num_shards: Optional[int] = None, topology: Optional["MergeTopology"] = None
    ) -> "StreamingMerger":
        """A :class:`StreamingMerger` sharing this merger's model and caches.

        Its :meth:`StreamingMerger.result` is byte-identical to the first
        :meth:`merge` of a fresh merger constructed with the same arguments.
        ``topology`` (a :class:`~repro.cluster.tree.MergeTopology`) switches
        the merger into its tree-aware incremental mode: new batches are
        priced only along the owning leaf's ancestor path, with whole-subtree
        window pruning at each level.
        """
        return StreamingMerger(
            self._model,
            threshold=self._threshold,
            cycle_policy=self._cycle_policy,
            seed=self._seed,
            tables=self._tables,
            stats=self._engine_stats,
            windows=self._windows,
            num_shards=num_shards,
            telemetry=self._telemetry,
            topology=topology,
        )

    def tree_merger(self, topology: "MergeTopology") -> "HierarchicalMerger":
        """A :class:`~repro.cluster.tree.HierarchicalMerger` over this merger.

        Shares the model, pair-table cache, certainty windows and engine
        counters; its ``merge()`` is byte-identical to :meth:`merge` over the
        same streams while evaluating only each tree node's unpruned band.
        """
        from repro.cluster.tree import HierarchicalMerger

        return HierarchicalMerger(self, topology)

    # ---------------------------------------------------------- probabilities
    @property
    def engine_stats(self) -> EngineStats:
        """Counters for the vectorized cross-pair computations performed."""
        return self._engine_stats

    def batch_precedence(self, batch_a: SequencedBatch, batch_b: SequencedBatch) -> float:
        """``P(batch_a generated before batch_b)`` at batch granularity.

        The mean over message cross pairs of the pairwise preceding
        probability (one vectorized engine evaluation of the cross matrix).
        The mean (rather than min or max) keeps the batch-level relation
        complementary, which the tournament construction requires.
        """
        matrix = cross_probability_matrix(
            batch_a.messages,
            batch_b.messages,
            self._model,
            stats=self._engine_stats,
            tables=self._tables,
        )
        if matrix.size == 0:
            return 0.5
        return float(matrix.mean())

    def _forward_matrix(
        self, streams: Sequence[Sequence[SequencedBatch]], layout: Optional[_NodeLayout] = None
    ) -> Tuple[np.ndarray, int, int]:
        """Node-level forward probabilities via the flattened kernel.

        Returns ``(matrix, cross_pairs_evaluated, cross_pairs_pruned)``.
        ``matrix[a][b]`` is the batch-precedence mean for every cross-shard
        node pair (both directions, ``P(b<a)`` stored as ``1 - P(a<b)``
        exactly like the pairwise reference); within-shard entries stay NaN.

        Pruned pairs are resolved without per-pair work; the flattened
        kernel still evaluates the full active-message square (nodes with at
        least one unpruned partner), so its element count only shrinks when
        whole batches prune against everything — the streaming path is the
        one that skips pruned pairs' kernel entries entirely.
        """
        if layout is None:
            layout = _NodeLayout(streams)
        nodes = layout.nodes
        n = len(nodes)
        batches = [streams[shard][index] for shard, index in nodes]
        sizes = np.asarray([batch.size for batch in batches], dtype=np.int64)
        window_bounds = [self._windows.batch_window(batch) for batch in batches]
        earliest = np.asarray([bounds[0] for bounds in window_bounds], dtype=float)
        latest = np.asarray([bounds[1] for bounds in window_bounds], dtype=float)

        cross_upper = layout.cross_upper
        # window pruning: certainty windows that cannot overlap resolve the
        # batch pair to the exact 0/1 the kernel would have saturated to
        prune_after = cross_upper & (earliest[None, :] > latest[:, None])  # a wholly before b
        prune_before = cross_upper & (earliest[:, None] > latest[None, :])  # a wholly after b
        needs_kernel = cross_upper & ~prune_after & ~prune_before
        pruned = int(prune_after.sum() + prune_before.sum())

        matrix = np.full((n, n), np.nan)
        if needs_kernel.any():
            active = needs_kernel.any(axis=1) | needs_kernel.any(axis=0)
            active_ids = np.flatnonzero(active)
            flat_messages: List[TimestampedMessage] = []
            starts: List[int] = []
            for node_id in active_ids:
                starts.append(len(flat_messages))
                flat_messages.extend(batches[node_id].messages)
            probabilities = cross_probability_matrix(
                flat_messages,
                flat_messages,
                self._model,
                stats=self._engine_stats,
                tables=self._tables,
            )
            column_sums = np.add.reduceat(probabilities, starts, axis=1)
            pair_sums = np.add.reduceat(column_sums, starts, axis=0)
            active_sizes = sizes[active_ids]
            means = pair_sums / np.outer(active_sizes, active_sizes)
            position = np.full(n, -1, dtype=np.int64)
            position[active_ids] = np.arange(active_ids.size)
            rows, cols = np.nonzero(needs_kernel)
            matrix[rows, cols] = means[position[rows], position[cols]]
        matrix[prune_after] = 1.0
        matrix[prune_before] = 0.0
        rows, cols = np.nonzero(cross_upper)
        matrix[cols, rows] = 1.0 - matrix[rows, cols]
        self._engine_stats.pruned_pairs += pruned
        return matrix, int(needs_kernel.sum()), pruned

    # ----------------------------------------------------------------- merge
    def merge(self, shard_batches: Sequence[Sequence[SequencedBatch]]) -> MergeOutcome:
        """Merge per-shard batch streams into one cluster-wide order.

        ``shard_batches[s]`` is shard ``s``'s emitted batches in rank order.
        Deterministic for fixed inputs and seed.
        """
        start = time.perf_counter()
        streams = [list(batches) for batches in shard_batches]
        if not any(streams):
            return _empty_outcome(start)
        layout = _NodeLayout(streams)
        matrix, evaluated, pruned = self._forward_matrix(streams, layout)
        return _merge_from_matrix(
            streams,
            matrix,
            self._threshold,
            self._cycle_policy,
            self._rng,
            evaluated,
            pruned,
            start,
            stats=self._engine_stats,
            layout=layout,
            obs=self._obs,
        )


class StreamingMerger:
    """Incrementally maintained cross-shard merge.

    ``observe_batch(shard, batch)`` appends one node and prices it against
    every existing cross-shard node in two vectorized kernel calls (one per
    orientation); window-pruned pairs resolve to exact 0/1 without touching
    the kernel at all, so time-localised streams only ever evaluate a band
    of recent batches.  ``result()`` linearises the maintained matrix through
    the same code path as :meth:`CrossShardMerger.merge` — for the same
    observed streams the output is byte-identical to the first ``merge()``
    of a fresh :class:`CrossShardMerger` built with the same arguments (the
    parity oracle), regardless of the order batches were observed in.

    Pairs are priced at observation time; a mid-stream distribution refresh
    must be propagated with :meth:`refresh_client`, which reprices every
    maintained pair involving the client.

    With a :class:`~repro.cluster.tree.MergeTopology` the merger runs in
    *tree-aware* mode: a new batch is priced ancestor by ancestor along its
    owning leaf's root path, and at each level a sibling subtree whose
    aggregate certainty window cannot overlap the new batch resolves *all*
    its pairs in one vectorized assignment — no per-member work at all.
    Every pair is still classified by the exact per-batch window condition
    the flat mode uses (the subtree check only short-circuits pairs it
    implies), and kernel means go through the same segment reductions, so
    tree-aware results stay byte-identical to flat streaming and to the
    offline oracle; the per-interior-node pruned/kernel counters it
    maintains feed :meth:`node_report`.
    """

    def __init__(
        self,
        model: PrecedenceModel,
        threshold: float = 0.75,
        cycle_policy: str = "greedy",
        seed: int = 0,
        tables: Optional[PairTableCache] = None,
        stats: Optional[EngineStats] = None,
        windows: Optional[CertaintyWindows] = None,
        num_shards: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        topology: Optional["MergeTopology"] = None,
    ) -> None:
        if not 0.5 <= threshold < 1.0:
            raise ValueError(f"threshold must be in [0.5, 1), got {threshold!r}")
        if topology is not None:
            if num_shards is None:
                num_shards = topology.num_shards
            elif num_shards != topology.num_shards:
                raise ValueError(
                    f"num_shards={num_shards} does not match the "
                    f"{topology.num_shards}-leaf topology"
                )
        self._model = model
        self._threshold = float(threshold)
        self._cycle_policy = cycle_policy
        self._seed = int(seed)
        self._obs = resolve(telemetry)
        self._stats = stats if stats is not None else EngineStats()
        self._tables = tables if tables is not None else PairTableCache(model, stats=self._stats)
        self._windows = windows if windows is not None else CertaintyWindows(model)
        # pre-creating the shard streams keeps result() metadata identical to
        # an offline merge over a fixed-size cluster even when trailing
        # shards have not emitted anything yet
        self._streams: List[List[SequencedBatch]] = [
            [] for _ in range(num_shards if num_shards is not None else 0)
        ]
        self._nodes: List[BatchNode] = []  # observation order
        self._node_position: Dict[BatchNode, int] = {}
        self._node_messages: List[Tuple[TimestampedMessage, ...]] = []
        self._node_shard: List[int] = []
        self._earliest: List[float] = []
        self._latest: List[float] = []
        self._capacity = 16
        self._matrix = np.full((self._capacity, self._capacity), np.nan)
        # per-pair classification (True = resolved by window pruning), so a
        # refresh_client repricing *replaces* a pair's contribution to the
        # evaluated/pruned counters instead of counting it twice — keeping
        # result() metadata equal to the offline parity oracle's
        self._pruned_pair = np.zeros((self._capacity, self._capacity), dtype=bool)
        self._cross_pairs_evaluated = 0
        self._cross_pairs_pruned = 0
        self._refresh_pairs_skipped = 0
        # tree-aware mode: per-subtree membership + aggregate certainty
        # windows (for whole-subtree pruning) and per-interior-node counters
        self._topology = topology
        self._node_members: Dict[int, List[int]] = {}
        self._subtree_earliest: Dict[int, float] = {}
        self._subtree_latest: Dict[int, float] = {}
        self._node_pruned_pairs: Dict[int, int] = {}
        self._node_kernel_pairs: Dict[int, int] = {}
        if topology is not None:
            for tree_node in topology.nodes:
                self._node_members[tree_node.node_id] = []
                self._subtree_earliest[tree_node.node_id] = float("inf")
                self._subtree_latest[tree_node.node_id] = -float("inf")
                if not tree_node.is_leaf:
                    self._node_pruned_pairs[tree_node.node_id] = 0
                    self._node_kernel_pairs[tree_node.node_id] = 0

    # ------------------------------------------------------------- properties
    @property
    def node_count(self) -> int:
        """Number of shard batches observed so far."""
        return len(self._nodes)

    @property
    def cross_pairs_evaluated(self) -> int:
        """Cross-shard batch pairs priced through the kernel so far."""
        return self._cross_pairs_evaluated

    @property
    def cross_pairs_pruned(self) -> int:
        """Cross-shard batch pairs resolved by window pruning so far."""
        return self._cross_pairs_pruned

    @property
    def stats(self) -> EngineStats:
        """Engine counters for the kernel work performed."""
        return self._stats

    @property
    def topology(self) -> Optional["MergeTopology"]:
        """The merge topology (``None`` in flat mode)."""
        return self._topology

    def node_report(self) -> List[Dict[str, object]]:
        """Per-merge-node pruned/kernel pair counts (one pseudo-node flat)."""
        if self._topology is None:
            return [
                {
                    "node": 0,
                    "label": "flat",
                    "level": 1,
                    "shards": len(self._streams),
                    "pruned_pairs": self._cross_pairs_pruned,
                    "kernel_pairs": self._cross_pairs_evaluated,
                }
            ]
        return [
            {
                "node": tree_node.node_id,
                "label": tree_node.label,
                "level": tree_node.level,
                "shards": len(tree_node.shards),
                "pruned_pairs": self._node_pruned_pairs[tree_node.node_id],
                "kernel_pairs": self._node_kernel_pairs[tree_node.node_id],
            }
            for tree_node in self._topology.interior_nodes
        ]

    def _grow(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        fresh = np.full((capacity, capacity), np.nan)
        count = len(self._nodes)
        fresh[:count, :count] = self._matrix[:count, :count]
        self._matrix = fresh
        fresh_pruned = np.zeros((capacity, capacity), dtype=bool)
        fresh_pruned[:count, :count] = self._pruned_pair[:count, :count]
        self._pruned_pair = fresh_pruned
        self._capacity = capacity

    # ----------------------------------------------------------------- intake
    def observation_cursor(self, shard: int) -> int:
        """Number of batches observed from ``shard`` so far.

        Per-shard emission ranks are consecutive from zero, so this cursor is
        also the rank of the *next* batch the merger expects from the shard.
        Recovery coordinators (:class:`~repro.runtime.procs.ProcBackend`) use
        it as a bounded exactly-once gate: a restarted shard replays its
        frozen slice from the start, and every re-streamed batch whose rank
        is below the cursor was already observed and is dropped — one integer
        per shard instead of a per-batch seen-set.
        """
        if shard < 0:
            raise ValueError(f"shard index must be non-negative, got {shard!r}")
        if shard < len(self._streams):
            return len(self._streams[shard])
        return 0

    def observe_batch(self, shard: int, batch: SequencedBatch) -> BatchNode:
        """Append the next emitted batch of ``shard`` and price its pairs."""
        if shard < 0:
            raise ValueError(f"shard index must be non-negative, got {shard!r}")
        if self._topology is not None and shard >= self._topology.num_shards:
            raise ValueError(
                f"shard {shard} outside the {self._topology.num_shards}-leaf topology"
            )
        while len(self._streams) <= shard:
            self._streams.append([])
        node: BatchNode = (shard, len(self._streams[shard]))
        self._streams[shard].append(batch)
        position = len(self._nodes)
        self._grow(position + 1)
        earliest, latest = self._windows.batch_window(batch)
        if self._topology is not None:
            self._price_tree(shard, position, batch, earliest, latest)
        else:
            self._price_flat(shard, position, batch, earliest, latest)

        self._nodes.append(node)
        self._node_position[node] = position
        self._node_messages.append(tuple(batch.messages))
        self._node_shard.append(shard)
        self._earliest.append(earliest)
        self._latest.append(latest)
        if self._obs.enabled:
            observed_at = batch.emitted_at if batch.emitted_at is not None else 0.0
            for message in batch.messages:
                self._obs.stage("merge_observe", message, observed_at, shard=shard)
            self._obs.count("merge.batches_observed")
        return node

    def _price_flat(
        self, shard: int, position: int, batch: SequencedBatch, earliest: float, latest: float
    ) -> None:
        """Price the new node against every existing cross-shard node.

        Pruned pairs resolve instantly; the rest go through two flattened
        kernel calls (existing-before-new and new-before-existing
        orientations).
        """
        lower_kernel: List[int] = []  # existing node positions, canonical a-side
        higher_kernel: List[int] = []  # existing node positions, canonical b-side
        for other in range(position):
            other_shard = self._node_shard[other]
            if other_shard == shard:
                continue
            self._classify_pair(
                shard, position, other, earliest, latest, lower_kernel, higher_kernel
            )
        self._apply_kernel_rows(position, batch, lower_kernel, higher_kernel)
        self._cross_pairs_evaluated += len(lower_kernel) + len(higher_kernel)

    def _price_tree(
        self, shard: int, position: int, batch: SequencedBatch, earliest: float, latest: float
    ) -> None:
        """Price the new node level by level along its leaf's ancestor path.

        At each ancestor, sibling subtrees whose aggregate window cannot
        overlap the new batch resolve wholesale (one vectorized assignment
        per subtree); remaining members fall back to the exact per-pair
        classification :meth:`_price_flat` uses, so every pair lands on the
        same 0/1 or kernel mean either way.
        """
        topology = self._topology
        assert topology is not None
        path = topology.path(shard)
        observed_at = batch.emitted_at if batch.emitted_at is not None else 0.0
        child_on_path = path[0]
        for ancestor_id in path[1:]:
            ancestor = topology.nodes[ancestor_id]
            node_pruned = 0
            lower_kernel: List[int] = []
            higher_kernel: List[int] = []
            for child_id in ancestor.children:
                if child_id == child_on_path:
                    continue
                members = self._node_members[child_id]
                if not members:
                    continue
                if earliest > self._subtree_latest[child_id]:
                    # every member's window closed before the new batch's
                    # opened: the whole subtree precedes the new node
                    idx = np.asarray(members, dtype=np.int64)
                    self._matrix[idx, position] = 1.0
                    self._matrix[position, idx] = 0.0
                    self._pruned_pair[idx, position] = True
                    self._pruned_pair[position, idx] = True
                    node_pruned += idx.size
                    self._cross_pairs_pruned += idx.size
                    self._stats.pruned_pairs += idx.size
                    continue
                if latest < self._subtree_earliest[child_id]:
                    idx = np.asarray(members, dtype=np.int64)
                    self._matrix[position, idx] = 1.0
                    self._matrix[idx, position] = 0.0
                    self._pruned_pair[idx, position] = True
                    self._pruned_pair[position, idx] = True
                    node_pruned += idx.size
                    self._cross_pairs_pruned += idx.size
                    self._stats.pruned_pairs += idx.size
                    continue
                for other in members:
                    before = len(lower_kernel) + len(higher_kernel)
                    self._classify_pair(
                        shard, position, other, earliest, latest, lower_kernel, higher_kernel
                    )
                    if len(lower_kernel) + len(higher_kernel) == before:
                        node_pruned += 1
            self._apply_kernel_rows(position, batch, lower_kernel, higher_kernel)
            node_kernel = len(lower_kernel) + len(higher_kernel)
            self._cross_pairs_evaluated += node_kernel
            self._node_pruned_pairs[ancestor_id] += node_pruned
            self._node_kernel_pairs[ancestor_id] += node_kernel
            if self._obs.enabled and (node_pruned or node_kernel):
                self._obs.event(
                    "merge_tree",
                    ancestor.label,
                    observed_at,
                    client_id=f"level-{ancestor.level}",
                    shard=shard,
                    node=ancestor_id,
                    level=ancestor.level,
                    pruned_pairs=node_pruned,
                    kernel_pairs=node_kernel,
                )
                self._obs.count(f"merge.tree.level{ancestor.level}.pruned_pairs", node_pruned)
                self._obs.count(f"merge.tree.level{ancestor.level}.kernel_pairs", node_kernel)
            child_on_path = ancestor_id
        for node_id in path:
            self._node_members[node_id].append(position)
            if earliest < self._subtree_earliest[node_id]:
                self._subtree_earliest[node_id] = earliest
            if latest > self._subtree_latest[node_id]:
                self._subtree_latest[node_id] = latest

    def _classify_pair(
        self,
        shard: int,
        position: int,
        other: int,
        earliest: float,
        latest: float,
        lower_kernel: List[int],
        higher_kernel: List[int],
    ) -> None:
        """Window-classify one (existing, new) pair in canonical orientation.

        Pruned pairs get their exact 0/1 entries immediately; unpruned ones
        are queued on the caller's kernel lists.
        """
        other_shard = self._node_shard[other]
        if other_shard < shard:
            a, b = other, position
            a_earliest, a_latest = self._earliest[other], self._latest[other]
            b_earliest, b_latest = earliest, latest
        else:
            a, b = position, other
            a_earliest, a_latest = earliest, latest
            b_earliest, b_latest = self._earliest[other], self._latest[other]
        if b_earliest > a_latest:
            forward = 1.0
        elif a_earliest > b_latest:
            forward = 0.0
        else:
            (lower_kernel if other_shard < shard else higher_kernel).append(other)
            return
        self._matrix[a, b] = forward
        self._matrix[b, a] = 1.0 - forward
        self._pruned_pair[a, b] = self._pruned_pair[b, a] = True
        self._cross_pairs_pruned += 1
        self._stats.pruned_pairs += 1

    def _apply_kernel_rows(
        self,
        position: int,
        batch: SequencedBatch,
        lower_kernel: Sequence[int],
        higher_kernel: Sequence[int],
    ) -> None:
        """Price queued kernel pairs (one flattened call per orientation)."""
        if lower_kernel:
            # canonical orientation: existing (lower-shard) messages precede
            forwards = self._kernel_row(
                [self._node_messages[other] for other in lower_kernel],
                batch.messages,
                rows_first=True,
            )
            for other, forward in zip(lower_kernel, forwards):
                self._matrix[other, position] = forward
                self._matrix[position, other] = 1.0 - forward
        if higher_kernel:
            forwards = self._kernel_row(
                [self._node_messages[other] for other in higher_kernel],
                batch.messages,
                rows_first=False,
            )
            for other, forward in zip(higher_kernel, forwards):
                self._matrix[position, other] = forward
                self._matrix[other, position] = 1.0 - forward

    def _kernel_row(
        self,
        partner_messages: Sequence[Tuple[TimestampedMessage, ...]],
        new_messages: Sequence[TimestampedMessage],
        rows_first: bool,
    ) -> np.ndarray:
        """Batch-precedence means of the new batch against partner nodes.

        ``rows_first=True`` computes ``P(partner precedes new)`` (partners
        are the canonical a-side), ``False`` the transposed orientation.
        One flattened kernel call; the segment reductions replay the exact
        float sequence of the offline kernel, so every mean is bit-identical
        to the one :meth:`CrossShardMerger.merge` computes for the pair.
        """
        flat: List[TimestampedMessage] = []
        starts: List[int] = []
        for messages in partner_messages:
            starts.append(len(flat))
            flat.extend(messages)
        new_list = list(new_messages)
        if rows_first:
            matrix = cross_probability_matrix(
                flat, new_list, self._model, stats=self._stats, tables=self._tables
            )
            row_totals = np.add.reduceat(matrix, [0], axis=1)
            sums = np.add.reduceat(row_totals, starts, axis=0)[:, 0]
        else:
            matrix = cross_probability_matrix(
                new_list, flat, self._model, stats=self._stats, tables=self._tables
            )
            column_sums = np.add.reduceat(matrix, starts, axis=1)
            sums = np.add.reduceat(column_sums, [0], axis=0)[0]
        sizes = np.asarray([len(messages) for messages in partner_messages], dtype=np.int64)
        return sums / (sizes * len(new_list))

    @property
    def refresh_pairs_skipped(self) -> int:
        """Pairs left untouched by window pruning across every refresh."""
        return self._refresh_pairs_skipped

    def refresh_client(self, client_id: str, full: bool = False) -> int:
        """Reprice maintained pairs involving ``client_id``.

        Call after the client's distribution was re-registered on the model
        (the shared table cache and certainty windows detect the new version
        themselves).  Only pairs the refresh can actually change are
        repriced: a pair that was window-pruned before and remains
        window-pruned in the same direction keeps its exact 0/1 entry, so
        the kernel (and even the cheap 0/1 rewrite) is skipped — with
        time-localised streams the bulk of a long run's history prunes
        against the refreshed batches, turning the refresh from O(history)
        kernel work into O(overlapping window).  ``full=True`` forces the
        pre-pruning behaviour of repricing every pair (the parity oracle
        for tests).  Returns the number of repriced node pairs.
        """
        self._windows.invalidate_client(client_id)
        affected = [
            position
            for position, messages in enumerate(self._node_messages)
            if any(message.client_id == client_id for message in messages)
        ]
        if not affected:
            return 0
        for position in affected:
            batch = self._streams[self._nodes[position][0]][self._nodes[position][1]]
            self._earliest[position], self._latest[position] = self._windows.batch_window(batch)
        if self._topology is not None:
            self._recompute_subtree_windows()
        repriced = 0
        affected_set = set(affected)
        for position in affected:
            for other in range(len(self._nodes)):
                if other == position or self._node_shard[other] == self._node_shard[position]:
                    continue
                if other in affected_set and other < position:
                    continue  # already repriced from the other side
                if self._node_shard[position] < self._node_shard[other]:
                    a, b = position, other
                else:
                    a, b = other, position
                if self._earliest[b] > self._latest[a]:
                    forward = 1.0
                    now_pruned = True
                elif self._earliest[a] > self._latest[b]:
                    forward = 0.0
                    now_pruned = True
                else:
                    forward = None
                    now_pruned = False
                if (
                    not full
                    and now_pruned
                    and self._pruned_pair[a, b]
                    and self._matrix[a, b] == forward
                ):
                    # window-overlap status unchanged and the stored entry is
                    # already the exact saturated float: nothing can move
                    self._refresh_pairs_skipped += 1
                    continue
                # replace, don't double-count: retract the pair's previous
                # classification before repricing it
                lca_id = (
                    self._topology.lca(self._node_shard[a], self._node_shard[b])
                    if self._topology is not None
                    else None
                )
                if self._pruned_pair[a, b]:
                    self._cross_pairs_pruned -= 1
                    if lca_id is not None:
                        self._node_pruned_pairs[lca_id] -= 1
                else:
                    self._cross_pairs_evaluated -= 1
                    if lca_id is not None:
                        self._node_kernel_pairs[lca_id] -= 1
                if forward is None:
                    forward = _pair_block_forward(
                        self._node_messages[a],
                        self._node_messages[b],
                        self._model,
                        self._stats,
                        self._tables,
                    )
                if now_pruned:
                    self._cross_pairs_pruned += 1
                    self._stats.pruned_pairs += 1
                    if lca_id is not None:
                        self._node_pruned_pairs[lca_id] += 1
                else:
                    self._cross_pairs_evaluated += 1
                    if lca_id is not None:
                        self._node_kernel_pairs[lca_id] += 1
                self._pruned_pair[a, b] = self._pruned_pair[b, a] = now_pruned
                self._matrix[a, b] = forward
                self._matrix[b, a] = 1.0 - forward
                repriced += 1
        return repriced

    def _recompute_subtree_windows(self) -> None:
        """Rebuild subtree aggregate windows after a distribution refresh."""
        for node_id, members in self._node_members.items():
            if members:
                self._subtree_earliest[node_id] = min(self._earliest[m] for m in members)
                self._subtree_latest[node_id] = max(self._latest[m] for m in members)
            else:
                self._subtree_earliest[node_id] = float("inf")
                self._subtree_latest[node_id] = -float("inf")

    # ---------------------------------------------------------------- results
    def result(self) -> MergeOutcome:
        """Linearise the maintained state into the cluster-wide order.

        Uses a fresh RNG seeded like the parity oracle, so repeated calls
        are deterministic and each equals the first ``merge()`` of a fresh
        :class:`CrossShardMerger` over the observed streams.
        """
        start = time.perf_counter()
        if not self._nodes:
            return _empty_outcome(start)
        streams = [list(stream) for stream in self._streams]
        nodes_shard_major: List[BatchNode] = [
            (shard, index) for shard, stream in enumerate(streams) for index in range(len(stream))
        ]
        permutation = [self._node_position[node] for node in nodes_shard_major]
        matrix = self._matrix[np.ix_(permutation, permutation)]
        return _merge_from_matrix(
            streams,
            matrix,
            self._threshold,
            self._cycle_policy,
            np.random.default_rng(self._seed),
            self._cross_pairs_evaluated,
            self._cross_pairs_pruned,
            start,
            stats=self._stats,
            obs=self._obs,
        )
